#!/usr/bin/env python3
"""Serve a provenance store over TCP and query it through ``repro://``.

The in-process session answers queries where the store file lives; the
network service moves that boundary: an asyncio daemon fronts the store
with a length-prefixed binary protocol, and a blocking client exposes
the same store/session surface over the connection.  This example walks
the whole loop in one process:

1. **serve** — a sharded store behind :class:`~repro.server.ServerThread`
   (the same daemon ``repro-provenance serve`` runs in the foreground);
2. **query** — a :class:`~repro.server.RemoteStore` client runs point,
   batch, sweep and cross-run queries; every answer is bit-identical to
   an in-process session because the real session lives server-side,
   pinned to the connection;
3. **replay** — a handle-native batch ships as one pair-workload blob
   (the same bytes ``pack-workload`` writes), which the server replays
   with zero parsing;
4. **ingest** — a new labeled run travels the other way and is queryable
   the moment the ingest call returns.

Everything is loopback here, but nothing in the client cares: point it
at ``repro://any-host:port/`` and the code below runs unchanged.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    BatchQuery,
    CrossRunQuery,
    DownstreamQuery,
    PointQuery,
    SkeletonLabeler,
)
from repro.datasets import SyntheticSpecConfig, generate_specification
from repro.server import RemoteStore, ServerThread
from repro.storage import ShardedProvenanceStore
from repro.workflow import generate_run_with_size


def main() -> None:
    spec = generate_specification(
        SyntheticSpecConfig(
            n_modules=30,
            n_edges=55,
            hierarchy_size=5,
            hierarchy_depth=3,
            name="served-pipeline",
            seed=7,
        )
    )
    labeler = SkeletonLabeler(spec, "tcm")
    runs = [
        generate_run_with_size(spec, 200, seed=seed, name=f"night-{seed}").run
        for seed in range(3)
    ]

    directory = Path(tempfile.mkdtemp()) / "served-shards"
    with ShardedProvenanceStore(directory, shards=2) as store:
        run_ids = store.add_labeled_runs([labeler.label_run(run) for run in runs[:2]])

        # -- 1. the daemon on a background thread -----------------------
        with ServerThread(store) as server:
            print(f"serving {store.shard_count}-shard store at {server.url}")

            # -- 2. the client is store-shaped --------------------------
            with RemoteStore(server.url) as client:
                print(
                    f"connected: protocol v{client.server_protocol}, "
                    f"{len(client.list_runs())} runs stored"
                )
                session = client.session()
                vertices = runs[0].vertices()
                anchor = vertices[0]
                answer = session.run(
                    PointQuery(anchor, vertices[-1], run_id=run_ids[0])
                )
                print(
                    f"point query on run {run_ids[0]}: {anchor} -> "
                    f"{vertices[-1]}: {'reachable' if answer else 'not reachable'}"
                )
                downstream = session.run(DownstreamQuery(anchor, run_id=run_ids[0]))
                print(f"sweep: {len(downstream)} executions downstream of {anchor}")

                # -- 3. the zero-parse batch lane -----------------------
                pairs = [(anchor, v) for v in vertices]
                engine = store.query_engine(run_ids[0])
                source_ids, target_ids = engine.intern_pairs(
                    [((u.module, u.instance), (v.module, v.instance)) for u, v in pairs]
                )
                answers = session.run(
                    BatchQuery(
                        source_ids=source_ids,
                        target_ids=target_ids,
                        run_id=run_ids[0],
                    )
                )
                print(
                    f"handle-native batch: {sum(answers)}/{len(answers)} pairs "
                    "reachable (shipped as one pair-workload blob)"
                )

                # -- 4. ingest over the wire ----------------------------
                new_id = client.add_labeled_run(labeler.label_run(runs[2]))
                sweep = session.run(CrossRunQuery(spec.name, anchor, "downstream"))
                print(
                    f"ingested run {new_id} over the wire; cross-run sweep "
                    f"now covers {sweep.run_count} runs, "
                    f"{sweep.affected_count} affected executions"
                )
                stats = client.cache_stats()["server"]
                print(
                    f"server: {stats['connections']} connection(s), "
                    f"inflight bound {stats['max_inflight']}, "
                    f"ingest buffer threshold {stats['ingest_flush_after']}"
                )
        print("server stopped; inflight requests drained before the sockets closed")


if __name__ == "__main__":
    main()
