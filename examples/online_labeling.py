#!/usr/bin/env python3
"""Online labeling: query provenance while the workflow is still running.

The paper's future-work section asks for exactly this: label data as soon as
it is produced so that provenance queries work on intermediate results before
the workflow completes.  ``OnlineRun`` consumes the event stream a workflow
engine produces (module finished, fork copy started, loop iteration started,
data channel established) and keeps the skeleton labels up to date
incrementally — no relabeling of the whole run, ever.

The scenario below executes the paper's example workflow step by step and
interleaves provenance queries with execution events.
"""

from __future__ import annotations

from repro import SkeletonLabeler, WorkflowSpecification
from repro.skeleton.online import OnlineRun


def build_specification() -> WorkflowSpecification:
    return WorkflowSpecification.from_edges(
        edges=[
            ("a", "b"), ("b", "c"), ("c", "h"),
            ("a", "d"), ("d", "e"), ("e", "f"), ("f", "g"), ("g", "h"),
        ],
        forks=[("F1", {"b", "c"}), ("F2", {"f"})],
        loops=[("L1", {"e", "f", "g"}), ("L2", {"b", "c"})],
        name="online-demo",
    )


def main() -> None:
    spec = build_specification()
    labeler = SkeletonLabeler(spec, "tcm")          # skeleton labels built once
    online = OnlineRun(labeler, name="monitored-run")
    root = online.root_scope

    print("workflow started")
    a1 = root.execute("a")
    d1 = root.execute("d")
    online.connect(a1, d1)

    # The engine enters the fork F1 and starts two parallel branches.
    fork = root.begin_execution("F1")
    branch_one = fork.new_copy()
    branch_two = fork.new_copy()

    loop_one = branch_one.begin_execution("L2")
    iteration = loop_one.new_copy()
    b1 = iteration.execute("b")
    online.connect(a1, b1)
    c1 = iteration.execute("c")
    online.connect(b1, c1)

    loop_two = branch_two.begin_execution("L2")
    other_iteration = loop_two.new_copy()
    b2 = other_iteration.execute("b")
    online.connect(a1, b2)

    print(f"\nafter {online.vertex_count} of ~16 module executions:")
    print(f"  does {c1} depend on {a1}?   {online.reaches(a1, c1)}")
    print(f"  does {b2} depend on {b1}?   {online.reaches(b1, b2)}  (parallel branches)")

    # The first branch decides to iterate its loop once more.
    second_iteration = loop_one.new_copy()
    b3 = second_iteration.execute("b")
    online.connect(c1, b3)
    c2 = second_iteration.execute("c")
    online.connect(b3, c2)
    print(f"\nloop L2 iterated again in branch one:")
    print(f"  does {b3} depend on {b1}?   {online.reaches(b1, b3)}  (successive iterations)")
    print(f"  does {b3} depend on {b2}?   {online.reaches(b2, b3)}  (still parallel)")

    # Finish the second branch and the d-e-f-g spine, then close the run.
    c3 = other_iteration.execute("c")
    online.connect(b2, c3)
    loop = root.begin_execution("L1")
    spine = loop.new_copy()
    e1 = spine.execute("e")
    online.connect(d1, e1)
    inner_fork = spine.begin_execution("F2")
    f_copy = inner_fork.new_copy()
    f1 = f_copy.execute("f")
    online.connect(e1, f1)
    g1 = spine.execute("g")
    online.connect(f1, g1)
    h1 = root.execute("h")
    online.connect(c2, h1)
    online.connect(c3, h1)
    online.connect(g1, h1)

    labeled = online.finalize()
    print(f"\nworkflow finished: {labeled.run.vertex_count} executions, "
          f"{labeled.run.edge_count} channels")
    print(f"final labels use at most {labeled.max_label_length_bits()} bits; "
          f"the incremental labeler re-encoded {online.relabel_count} times "
          f"(once per query burst, not per event)")
    print(f"  does {h1} depend on {b1}? {labeled.reaches(b1, h1)}")
    print(f"  does {g1} depend on {b1}? {labeled.reaches(b1, g1)}")


if __name__ == "__main__":
    main()
