#!/usr/bin/env python3
"""Compare SKL against the direct TCM and BFS baselines (Section 8.2).

Sweeps run sizes on the synthetic workflow of the paper (nG=100, mG=200,
|TG|=10, [TG]=4) and prints label length, construction time and query time
for TCM+SKL, BFS+SKL and the direct TCM / BFS baselines — the data behind
Figures 15, 16 and 17.  Pass ``--scale paper`` for the full 0.1K-102.4K sweep.
"""

from __future__ import annotations

import argparse

from repro.bench import (
    figure_15_label_length_comparison,
    figure_16_construction_comparison,
    figure_17_query_comparison,
    scheme_comparison,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "default", "paper"), default="default")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    shared = scheme_comparison(args.scale, seed=args.seed)
    for result in (
        figure_15_label_length_comparison(args.scale, shared=shared),
        figure_16_construction_comparison(args.scale, shared=shared),
        figure_17_query_comparison(args.scale, shared=shared),
    ):
        print(result.to_text())
        print()

    print("Reading guide (expected shapes, cf. the paper):")
    print("  * Figure 15: TCM+SKL labels shrink as the spec cost is amortized over more")
    print("    runs and converge to BFS+SKL for large runs.")
    print("  * Figure 16: both SKL variants grow linearly; direct TCM grows polynomially.")
    print("  * Figure 17: TCM+SKL is flat; BFS+SKL slowly improves with run size because")
    print("    more queries are answered by the context encoding alone; direct BFS is")
    print("    orders of magnitude slower.")


if __name__ == "__main__":
    main()
