#!/usr/bin/env python3
"""Reproduce the paper's running example end to end (Figures 2-10).

The script rebuilds the exact run of Figure 3, reconstructs the execution
plan of Figure 7 and the context assignment of Figure 8 from the bare run
graph, prints the three-dimensional context encoding of Figure 9, and answers
the provenance queries discussed in the introduction and in Example 6.
"""

from __future__ import annotations

from repro import RunVertex, SkeletonLabeler, WorkflowRun, WorkflowSpecification, construct_plan


def build_specification() -> WorkflowSpecification:
    """Figure 2."""
    return WorkflowSpecification.from_edges(
        edges=[
            ("a", "b"), ("b", "c"), ("c", "h"),
            ("a", "d"), ("d", "e"), ("e", "f"), ("f", "g"), ("g", "h"),
        ],
        forks=[("F1", {"b", "c"}), ("F2", {"f"})],
        loops=[("L1", {"e", "f", "g"}), ("L2", {"b", "c"})],
        name="figure-2",
    )


def build_run(spec: WorkflowSpecification) -> WorkflowRun:
    """Figure 3."""
    edges = [
        (("a", 1), ("b", 1)), (("b", 1), ("c", 1)), (("c", 1), ("b", 2)),
        (("b", 2), ("c", 2)), (("c", 2), ("h", 1)),
        (("a", 1), ("b", 3)), (("b", 3), ("c", 3)), (("c", 3), ("h", 1)),
        (("a", 1), ("d", 1)), (("d", 1), ("e", 1)), (("e", 1), ("f", 1)),
        (("f", 1), ("g", 1)), (("g", 1), ("e", 2)), (("e", 2), ("f", 2)),
        (("e", 2), ("f", 3)), (("f", 2), ("g", 2)), (("f", 3), ("g", 2)),
        (("g", 2), ("h", 1)),
    ]
    return WorkflowRun.from_edges(spec, edges, name="figure-3")


def main() -> None:
    spec = build_specification()
    run = build_run(spec)
    print(f"Figure 2 specification: {spec.vertex_count} modules, {spec.edge_count} edges")
    print(f"Fork/loop hierarchy TG (Figure 6): size {spec.hierarchy.size}, "
          f"depth {spec.hierarchy.depth}")
    for node in spec.hierarchy.iter_preorder():
        label = "G" if node.is_root else node.name
        print(f"  {'  ' * (node.depth - 1)}{label}")

    print(f"\nFigure 3 run: {run.vertex_count} module executions, {run.edge_count} edges")

    # Execution plan and context (Figures 7 and 8), reconstructed from the graph.
    result = construct_plan(spec, run)
    plan, context = result.plan, result.context
    print(f"\nExecution plan TR (Figure 7): {len(plan)} nodes "
          f"({len(plan.plus_nodes())} '+' nodes, {len(plan.minus_nodes())} '-' nodes)")
    print(f"copies per region: {plan.copies_per_region()}")

    grouped: dict[int, list[str]] = {}
    for vertex, node in sorted(context.items()):
        grouped.setdefault(node, []).append(str(vertex))
    print("\nContext assignment (Figure 8):")
    for node_id, vertices in sorted(grouped.items()):
        node = plan.node(node_id)
        kind = "G+" if node.region is None else f"{node.region}{'+' if node.is_plus else '-'}"
        print(f"  {kind:4s} (node {node_id}): {{{', '.join(vertices)}}}")

    # Labels (Figures 9 and 10) and the queries of the introduction.
    labeler = SkeletonLabeler(spec, "tcm")
    labeled = labeler.label_run(run, plan=plan, context=context)
    print("\nRun labels (Figure 10), showing the three context coordinates:")
    for vertex in sorted(run.vertices()):
        label = labeled.label_of(vertex)
        print(f"  {str(vertex):4s}: (q1={label.q1}, q2={label.q2}, q3={label.q3}, "
              f"skeleton=phi({vertex.module}))")

    print("\nProvenance queries from the introduction:")
    examples = [
        ("does x8 (output of c3) depend on x1 (input of b1)?", ("b", 1), ("c", 3)),
        ("does x4 (output of b2) depend on x2 (input of c1)?", ("c", 1), ("b", 2)),
        ("does x3 (output of c1) depend on x1 (input of b1)?", ("b", 1), ("c", 1)),
    ]
    for question, source, target in examples:
        reachable = labeled.reaches(RunVertex(*source), RunVertex(*target))
        rule = labeled.query_path(RunVertex(*source), RunVertex(*target))
        print(f"  {question} -> {'yes' if reachable else 'no'} (via the {rule} rule)")


if __name__ == "__main__":
    main()
