#!/usr/bin/env python3
"""Shard the provenance store and ingest runs through the parallel write path.

A single-file store funnels every labeled run through one SQLite writer.
This example builds a :class:`~repro.storage.ShardedProvenanceStore` — N
WAL-mode shard files, every specification routed to one shard by a stable
hash of its name — and walks the write-to-read life cycle:

1. **ingest** — runs of several specifications, batched through
   ``add_labeled_runs``: the batch is grouped per shard and each shard's
   sub-batch commits as one transaction, concurrently on the store's
   persistent worker pool;
2. **sweep** — a cross-run dependency sweep through the same declarative
   session any store offers; the parallel executor's workers each open a
   read-only connection to exactly the shard file their runs live in;
3. **reuse** — the compiled plan re-executes on the already-running pool,
   and ``cache_stats()`` shows the per-shard caches plus pool counters.

Everything the single-file store answers, the sharded store answers
bit-identically — only the write path scales differently.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CrossRunBatchQuery, CrossRunQuery, PointQuery, SkeletonLabeler
from repro.datasets import SyntheticSpecConfig, generate_specification
from repro.storage import ShardedProvenanceStore
from repro.workflow import generate_run_with_size


def main() -> None:
    # Three small synthetic workflows: distinct names spread them (and all
    # of their runs) across the shard files.
    specs = [
        generate_specification(
            SyntheticSpecConfig(
                n_modules=30,
                n_edges=55,
                hierarchy_size=5,
                hierarchy_depth=3,
                name=f"pipeline-{index}",
                seed=10 + index,
            )
        )
        for index in range(3)
    ]
    labelers = {spec.name: SkeletonLabeler(spec, "tcm") for spec in specs}

    directory = Path(tempfile.mkdtemp()) / "provenance-shards"
    with ShardedProvenanceStore(directory, shards=4) as store:
        print(f"sharded store: {directory} ({store.shard_count} shards)")

        # -- 1. batched parallel ingest --------------------------------
        labeled = []
        for round_index in range(3):
            for spec in specs:
                generated = generate_run_with_size(
                    spec, 200, seed=round_index, name=f"night-{round_index}"
                )
                labeled.append(labelers[spec.name].label_run(generated.run))
        run_ids = store.add_labeled_runs(labeled)
        print(f"ingested {len(run_ids)} runs of {len(specs)} specifications")
        for spec in specs:
            rows = store.list_runs(spec.name)
            shard = store.shard_path_of(rows[0]["run_id"]).name
            print(f"  {spec.name}: {len(rows)} runs in {shard}")

        # -- 2. the same declarative queries as any store ---------------
        session = store.session()
        anchor_module = min(
            v for v in specs[0].graph.vertices()
            if not specs[0].graph.predecessors(v)
        )
        anchor = (anchor_module, 1)
        sweep = session.run(CrossRunQuery(specs[0].name, anchor, "downstream"))
        print(
            f"\nsweep over {specs[0].name!r}: {sweep.run_count} runs, "
            f"{sweep.affected_count} executions downstream of "
            f"{anchor_module}:1"
        )
        first_run = store.get_run(run_ids[0])
        some_vertex = first_run.vertices()[-1]
        answer = session.run(PointQuery(anchor, some_vertex, run_id=run_ids[0]))
        print(
            f"point query on run {run_ids[0]}: {anchor_module}:1 -> "
            f"{some_vertex}: {'reachable' if answer else 'not reachable'}"
        )

        # -- 3. compiled plans reuse the persistent pool ----------------
        pairs = [(anchor, (v.module, v.instance)) for v in first_run.vertices()[:8]]
        plan = session.compile(
            CrossRunBatchQuery(specs[0].name, pairs, workers=2)
        )
        for repetition in range(3):
            matrix = plan.execute().matrix()
        print(
            f"\ncross-run batch re-executed 3x: {len(matrix)} runs x "
            f"{len(pairs)} pairs per execution"
        )
        stats = store.cache_stats()
        print("cache stats:", {
            key: stats[key]
            for key in ("shards", "engines_cached", "spec_kernels_cached")
        })
        for mode, pool in stats.get("pools", {}).items():
            print(
                f"  {mode} pool: started={pool['started']} "
                f"starts={pool['starts']} tasks={pool['tasks_submitted']}"
            )


if __name__ == "__main__":
    main()
