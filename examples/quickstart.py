#!/usr/bin/env python3
"""Quickstart: label a workflow run and answer provenance queries.

This walks through the paper's running example (Figures 1-3):

1. define a workflow specification with forks and loops;
2. simulate a run (forks replicated in parallel, loops in series);
3. label the run with the skeleton-based scheme (SKL);
4. open a :class:`~repro.api.ProvenanceSession` over the labeled run and
   answer reachability and dependency queries declaratively — the same
   query objects run unchanged against an online run or a provenance
   store.
"""

from __future__ import annotations

from repro import (
    BatchQuery,
    DownstreamQuery,
    PerRegionProfile,
    PointQuery,
    ProvenanceSession,
    RunVertex,
    SkeletonLabeler,
    UpstreamQuery,
    WorkflowSpecification,
    generate_run,
)


def main() -> None:
    # 1. The specification of Figure 2: two chains a-b-c-h and a-d-e-f-g-h,
    #    a fork around {b, c}, a fork around {f}, a loop over {b, c} and a
    #    loop over {e, f, g}.
    spec = WorkflowSpecification.from_edges(
        edges=[
            ("a", "b"), ("b", "c"), ("c", "h"),
            ("a", "d"), ("d", "e"), ("e", "f"), ("f", "g"), ("g", "h"),
        ],
        forks=[("F1", {"b", "c"}), ("F2", {"f"})],
        loops=[("L1", {"e", "f", "g"}), ("L2", {"b", "c"})],
        name="quickstart",
    )
    print(f"specification: nG={spec.vertex_count}, mG={spec.edge_count}, "
          f"|TG|={spec.hierarchy.size}, [TG]={spec.hierarchy.depth}")

    # 2. Simulate a run: execute the fork F1 twice, the loop L2 twice inside
    #    each fork copy, the loop L1 three times, the fork F2 twice.
    generated = generate_run(
        spec,
        PerRegionProfile({"F1": 2, "L2": 2, "L1": 3, "F2": 2}),
        seed=7,
        name="quickstart-run",
    )
    run = generated.run
    print(f"run: nR={run.vertex_count}, mR={run.edge_count}")

    # 3. Label the specification once (TCM skeleton labels), then the run.
    labeler = SkeletonLabeler(spec, "tcm")
    labeled = labeler.label_run(run)
    print(f"labels: max {labeled.max_label_length_bits()} bits, "
          f"average {labeled.average_label_length_bits():.1f} bits, "
          f"built in {labeled.timings.total_seconds * 1e3:.2f} ms")

    # 4. One declarative session over the labeled run.  PointQuery answers
    #    in constant time from the labels alone; the same session (and the
    #    same query objects) would front an OnlineRun or a ProvenanceStore.
    session = ProvenanceSession.for_index(labeled)
    queries = [
        (RunVertex("b", 1), RunVertex("c", 1)),   # same fork copy -> skeleton labels decide
        (RunVertex("c", 1), RunVertex("b", 2)),   # successive loop iterations -> reachable
        (RunVertex("b", 1), RunVertex("c", 3)),   # parallel fork copies -> unreachable
        (RunVertex("a", 1), RunVertex("h", 1)),   # source to sink
    ]
    for source, target in queries:
        answer = session.run(PointQuery(source, target))
        rule = labeled.query_path(source, target)
        print(f"  {source} -> {target}: {'reachable' if answer else 'not reachable'} "
              f"(decided by the {rule} rule)")

    # A whole workload is one BatchQuery (answered by the compiled kernel),
    # and dependency sweeps are first-class queries too.
    answers = session.run(BatchQuery(pairs=queries))
    print(f"batch: {sum(map(bool, answers))} of {len(queries)} pairs reachable")
    affected = session.run(DownstreamQuery(RunVertex("b", 1)))
    inputs = session.run(UpstreamQuery(RunVertex("h", 1)))
    print(f"downstream of b1: {len(affected)} executions; "
          f"upstream of h1: {len(inputs)} executions")


if __name__ == "__main__":
    main()
