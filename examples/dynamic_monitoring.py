#!/usr/bin/env python3
"""Dynamic updates: a workflow edits its own DAG while being monitored.

Long-running workflows reroute mid-flight — a branch is cancelled, a retry
wires a fresh upstream, a data channel moves.  Rebuilding the reachability
index after every such edit throws away almost all of the labeling work, so
every built-in scheme is *mutable*: ``index.insert_edge`` / ``index.delete_edge``
mutate the graph and repair only the affected labels through the per-scheme
delta strategies in ``repro.dynamic``.  Every cached query layer re-checks the
graph's ``update_version``, so answers are always post-update.

The script monitors a small processing forest through live edits, shows which
delta strategy served each update (``index.update_log``), and then persists a
repaired label set into a store with ``store.update_run_labels`` — targeted
row updates, not a re-insert.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import PointQuery, RunVertex, SkeletonLabeler
from repro.engine.query import QueryEngine
from repro.graphs.digraph import DiGraph
from repro.labeling import build_index
from repro.storage import ProvenanceStore
from repro.workflow import WorkflowRun, WorkflowSpecification


def build_monitored_forest() -> DiGraph:
    """Two independent processing trees feeding sinks."""
    graph = DiGraph(
        vertices=["ingest", "clean", "train", "eval", "report", "etl", "archive"]
    )
    graph.add_edges(
        [
            ("ingest", "clean"),
            ("clean", "train"),
            ("train", "eval"),
            ("train", "report"),
            ("etl", "archive"),
        ]
    )
    return graph


def live_monitoring() -> None:
    graph = build_monitored_forest()
    index = build_index("tree-cover", graph)
    engine = QueryEngine(index)

    print("live monitoring (tree-cover index over the running DAG)")
    print(f"  ingest -> report?   {engine.reaches('ingest', 'report')}")
    print(f"  ingest -> archive?  {engine.reaches('ingest', 'archive')}")

    # The engine reroutes: the archive branch now consumes cleaned data.
    index.insert_edge("clean", "etl")
    print("\nedit 1: insert clean -> etl (archive branch rewired onto the pipeline)")
    print(f"  ingest -> archive?  {engine.reaches('ingest', 'archive')}")

    # A failing training stage is detached for a retry elsewhere.
    index.delete_edge("clean", "train")
    print("edit 2: delete clean -> train (training subtree detached)")
    print(f"  ingest -> report?   {engine.reaches('ingest', 'report')}")

    # The retry reattaches the whole training subtree under the ETL stage.
    index.insert_edge("etl", "train")
    print("edit 3: insert etl -> train (subtree reattached downstream)")
    print(f"  ingest -> report?   {engine.reaches('ingest', 'report')}")

    print("\nupdate log (which delta strategy served each edit):")
    for record in index.update_log:
        print(
            f"  {record.op:6s} {record.tail!s:>6s} -> {record.head!s:<7s} "
            f"via {record.strategy} ({record.touched} labels touched)"
        )


def build_paper_run() -> tuple[WorkflowSpecification, WorkflowRun]:
    spec = WorkflowSpecification.from_edges(
        edges=[
            ("a", "b"), ("b", "c"), ("c", "h"),
            ("a", "d"), ("d", "e"), ("e", "f"), ("f", "g"), ("g", "h"),
        ],
        forks=[("F1", {"b", "c"}), ("F2", {"f"})],
        loops=[("L1", {"e", "f", "g"}), ("L2", {"b", "c"})],
        name="figure-2",
    )
    edges = [
        (("a", 1), ("b", 1)), (("b", 1), ("c", 1)), (("c", 1), ("b", 2)),
        (("b", 2), ("c", 2)), (("c", 2), ("h", 1)),
        (("a", 1), ("b", 3)), (("b", 3), ("c", 3)), (("c", 3), ("h", 1)),
        (("a", 1), ("d", 1)), (("d", 1), ("e", 1)), (("e", 1), ("f", 1)),
        (("f", 1), ("g", 1)), (("g", 1), ("e", 2)), (("e", 2), ("f", 2)),
        (("e", 2), ("f", 3)), (("f", 2), ("g", 2)), (("f", 3), ("g", 2)),
        (("g", 2), ("h", 1)),
    ]
    return spec, WorkflowRun.from_edges(spec, edges, name="figure-3")


def persisted_repair() -> None:
    spec, run = build_paper_run()
    labeler = SkeletonLabeler(spec, "tcm")
    database = Path(tempfile.mkdtemp()) / "provenance.db"

    with ProvenanceStore(database) as store:
        run_id = store.add_labeled_run(labeler.label_run(run))
        session = store.session()
        print("\npersisted repair (the paper's Figure-3 run, stored)")
        print(
            "  b1 -> b2 before the edit: "
            f"{session.run(PointQuery(('b', 1), ('b', 2), run_id=run_id))}"
        )

        # The engine swaps the two F1 branches: b1's chain now feeds h
        # directly and b3's chain feeds the second L2 iteration.
        graph = run.graph
        graph.remove_edge(RunVertex("c", 1), RunVertex("b", 2))
        graph.remove_edge(RunVertex("c", 3), RunVertex("h", 1))
        graph.add_edge(RunVertex("c", 3), RunVertex("b", 2))
        graph.add_edge(RunVertex("c", 1), RunVertex("h", 1))

        changed = store.update_run_labels(run_id, labeler.label_run(run))
        print(f"  update_run_labels rewrote {changed} of {run.vertex_count} label rows")
        print(
            "  b1 -> b2 after the edit:  "
            f"{session.run(PointQuery(('b', 1), ('b', 2), run_id=run_id))}"
        )
        print(
            "  b3 -> b2 after the edit:  "
            f"{session.run(PointQuery(('b', 3), ('b', 2), run_id=run_id))}"
        )


def main() -> None:
    live_monitoring()
    persisted_repair()


if __name__ == "__main__":
    main()
