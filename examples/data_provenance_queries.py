#!/usr/bin/env python3
"""Data-level provenance on a scientific workflow run (Section 6 of the paper).

The scenario mirrors the paper's motivation: a scientist runs the QBLAST-like
pipeline many times, notices a suspicious final result, and asks which inputs
it depends on — and, conversely, which downstream results were contaminated
by a bad intermediate data product.  All answers come from the reachability
labels; the run graph is never traversed at query time.
"""

from __future__ import annotations

import random

from repro import SkeletonLabeler
from repro.datasets import load_real_workflow
from repro.provenance import ProvenanceIndex, generate_dataflow
from repro.workflow import generate_run_with_size


def main() -> None:
    # A catalog workflow (Table 1 characteristics) and a moderately large run.
    spec = load_real_workflow("QBLAST")
    generated = generate_run_with_size(spec, 3_000, seed=21, name="qblast-run")
    run = generated.run
    print(f"workflow {spec.name}: nG={spec.vertex_count}; run nR={run.vertex_count}")

    # Attach data items to every data channel of the run (one fresh item per
    # edge plus some shared outputs, as in Figure 11).
    rng = random.Random(2)
    dataflow = generate_dataflow(run, items_per_edge=1, shared_fraction=0.3, rng=rng)
    print(f"data items: {len(dataflow)}; largest fan-out k = {dataflow.max_fanout}")

    # Label the run once, then build the data-level provenance index.
    labeled = SkeletonLabeler(spec, "tcm").label_run(
        run, plan=generated.plan, context=generated.context
    )
    provenance = ProvenanceIndex(labeled, dataflow)

    # Pick the "final result": a data item produced right before the sink.
    final_items = [
        item for item in dataflow.items()
        if dataflow.output_of(item) in run.graph.predecessors(run.sink)
    ]
    final = final_items[0]
    upstream = provenance.upstream_items(final)
    print(f"\nfinal result {final} depends on {len(upstream)} earlier data items")
    print("  a few of them:", ", ".join(str(i) for i in upstream[:8]))

    # Now the reverse question: a bad intermediate result near the source.
    early_items = [
        item for item in dataflow.items()
        if dataflow.output_of(item) == run.source
    ]
    bad = early_items[0]
    downstream = provenance.downstream_items(bad)
    print(f"\nbad input {bad} contaminates {len(downstream)} downstream data items "
          f"({len(downstream) / len(dataflow):.0%} of all items)")

    # Data-to-module dependencies: which module executions must be re-run?
    affected_modules = [
        vertex for vertex in run.vertices()
        if provenance.module_depends_on_data(vertex, bad)
    ]
    print(f"module executions affected by {bad}: {len(affected_modules)} of {run.vertex_count}")


if __name__ == "__main__":
    main()
