#!/usr/bin/env python3
"""Answer provenance query workloads in batches with the QueryEngine.

The per-pair API (``labeled.reaches(u, v)``) is the right tool for a
handful of interactive queries, but replaying a large stored workload pays
Python dispatch per pair.  This walkthrough shows the batch path introduced
by :mod:`repro.engine`:

1. label a run once with the skeleton scheme;
2. wrap the labeled run in a :class:`~repro.engine.QueryEngine` (the engine
   compiles a per-scheme kernel — vectorized when numpy is available);
3. answer a whole workload with one ``reaches_batch`` call and compare the
   throughput with the per-pair loop;
4. intern the workload **once** (``engine.intern_pairs``) and replay it
   through the handle-native ``reaches_many_ids`` — the object -> id
   resolution that dominates step 3 disappears from the hot path;
5. do the same against a :class:`~repro.storage.ProvenanceStore`, where the
   batched path additionally collapses per-query SQL round trips into one
   and ``store.query_engine(run_id)`` exposes the cached kernel.

The CLI mirrors step 4: ``repro-provenance query-batch --database prov.db
--run-id 1 --pairs queries.txt``.
"""

from __future__ import annotations

import random
import tempfile
import time
from pathlib import Path

from repro import QueryEngine, SkeletonLabeler
from repro.datasets import load_real_workflow
from repro.storage import ProvenanceStore
from repro.workflow import generate_run_with_size


def main() -> None:
    spec = load_real_workflow("QBLAST")
    labeler = SkeletonLabeler(spec, "bfs")  # zero-cost spec labels (Section 7)
    generated = generate_run_with_size(spec, 4_000, seed=7, name="qblast-4k")
    labeled = labeler.label_run(
        generated.run, plan=generated.plan, context=generated.context
    )
    print(f"labeled run: {labeled.run.vertex_count} executions, "
          f"spec scheme {labeled.spec_index.scheme_name!r}")

    # A workload: 50,000 random (source, target) reachability queries.
    rng = random.Random(0)
    vertices = labeled.run.vertices()
    workload = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(50_000)]

    # The classical per-pair loop ...
    started = time.perf_counter()
    single_answers = [labeled.reaches(source, target) for source, target in workload]
    single_seconds = time.perf_counter() - started

    # ... versus one batched call through the engine.
    engine = QueryEngine(labeled)
    started = time.perf_counter()
    batch_answers = engine.reaches_batch(workload)
    batch_seconds = time.perf_counter() - started

    assert batch_answers == single_answers
    print(f"engine kernel : {engine.kernel_name}")
    print(f"per-pair loop : {len(workload) / single_seconds:>12,.0f} queries/s")
    print(f"batched engine: {len(workload) / batch_seconds:>12,.0f} queries/s "
          f"({single_seconds / batch_seconds:.1f}x)")

    # The handle-native path: intern the workload once at the boundary, then
    # replay pure integer-handle arrays — no per-call vertex resolution.
    source_ids, target_ids = engine.intern_pairs(workload)
    started = time.perf_counter()
    handle_answers = engine.reaches_many_ids(source_ids, target_ids)
    handle_seconds = time.perf_counter() - started
    assert [bool(a) for a in handle_answers] == single_answers
    print(f"handle replay : {len(workload) / handle_seconds:>12,.0f} queries/s "
          f"({single_seconds / handle_seconds:.1f}x; interned once, replayed free)")

    # Hot point queries go through the engine's LRU cache.
    engine.stats.reset()
    hot = (vertices[0], vertices[-1])
    for _ in range(1_000):
        engine.reaches(*hot)
    print(f"point-query cache hit rate: {engine.stats.cache_hit_rate:.3f}")

    # The same batch API on a stored run: labels for the whole query set are
    # fetched in a single SQL round trip instead of two SELECTs per pair.
    database = Path(tempfile.mkdtemp()) / "provenance.db"
    with ProvenanceStore(database) as store:
        run_id = store.add_labeled_run(labeled)
        sample = workload[:500]
        stored_answers = store.reaches_batch(run_id, sample)
        assert stored_answers == single_answers[:500]
        print(f"store batch: {len(sample)} stored-label queries answered, "
              f"{sum(stored_answers)} reachable")

        # Batched dependency sweep: everything downstream of one execution.
        anchor = vertices[1]
        affected = store.downstream_of(run_id, (anchor.module, anchor.instance))
        print(f"downstream of {anchor}: {len(affected)} executions "
              f"(one SQL round trip)")

        # Replay against the store's cached engine: the labels were loaded
        # (and the kernel compiled) at most once, and the persisted interner
        # hands out the same handles the in-memory run assigned.
        stored_engine = store.query_engine(run_id)
        stored_sources, stored_targets = stored_engine.intern_pairs(sample)
        replayed = stored_engine.reaches_many_ids(stored_sources, stored_targets)
        assert [bool(a) for a in replayed] == stored_answers
        print(f"store replay: {len(sample)} queries re-answered from the "
              f"cached {stored_engine.kernel_name} kernel, zero SQL")


if __name__ == "__main__":
    main()
