#!/usr/bin/env python3
"""Answer provenance query workloads through the declarative session API.

The per-pair API (``labeled.reaches(u, v)``) is the right tool for a
handful of interactive queries, but replaying a large stored workload pays
Python dispatch per pair.  This walkthrough shows the one documented way
in — :class:`repro.api.ProvenanceSession` — and what its planner compiles
each query to:

1. label a run once with the skeleton scheme and open a session over it;
2. answer a whole workload with one :class:`~repro.api.BatchQuery` (the
   planner compiles a per-scheme kernel — vectorized when numpy is
   available) and compare the throughput with the per-pair loop;
3. replay the workload handle-natively: intern it **once**, then pass the
   integer arrays back through a ``BatchQuery`` — the object -> id
   resolution disappears from the hot path;
4. open the same session API over a :class:`~repro.storage.ProvenanceStore`
   and answer point, batch and sweep queries from stored labels (one SQL
   round trip, cached kernels, and **adaptive promotion**: after a few
   point queries on one run the session switches it from per-pair SQL to
   the compiled kernel — see ``session.cache_stats()``);
5. sweep **all** runs of the specification at once with a
   :class:`~repro.api.CrossRunQuery` — the spec-side kernel is compiled
   once and every run's label columns stream through it;
6. ask the **same pair workload of every run** with a
   :class:`~repro.api.CrossRunBatchQuery` (a runs x pairs matrix) and fan
   the independent per-run payloads across workers (``workers=``, also on
   ``CrossRunQuery`` — the executor falls back to the sequential path for
   small sweeps, single-core hosts and in-memory stores).

The CLI mirrors steps 3-6: ``repro-provenance query-batch --format bin``,
``pack-workload``, ``sweep --workers`` and ``cross-batch``.
"""

from __future__ import annotations

import random
import tempfile
import time
from pathlib import Path

from repro import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunQuery,
    DownstreamQuery,
    PointQuery,
    ProvenanceSession,
    SkeletonLabeler,
)
from repro.datasets import load_real_workflow
from repro.storage import ProvenanceStore
from repro.workflow import generate_run_with_size


def main() -> None:
    spec = load_real_workflow("QBLAST")
    labeler = SkeletonLabeler(spec, "bfs")  # zero-cost spec labels (Section 7)
    generated = generate_run_with_size(spec, 4_000, seed=7, name="qblast-4k")
    labeled = labeler.label_run(
        generated.run, plan=generated.plan, context=generated.context
    )
    session = ProvenanceSession.for_index(labeled)
    print(f"labeled run: {labeled.run.vertex_count} executions, "
          f"spec scheme {labeled.spec_index.scheme_name!r}")

    # A workload: 50,000 random (source, target) reachability queries.
    rng = random.Random(0)
    vertices = labeled.run.vertices()
    workload = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(50_000)]

    # The classical per-pair loop ...
    started = time.perf_counter()
    single_answers = [labeled.reaches(source, target) for source, target in workload]
    single_seconds = time.perf_counter() - started

    # ... versus one declarative BatchQuery through the session.
    batch_plan = session.compile(BatchQuery(pairs=workload))
    started = time.perf_counter()
    batch_answers = batch_plan.execute()
    batch_seconds = time.perf_counter() - started

    assert list(map(bool, batch_answers)) == single_answers
    print(f"per-pair loop : {len(workload) / single_seconds:>12,.0f} queries/s")
    print(f"session batch : {len(workload) / batch_seconds:>12,.0f} queries/s "
          f"({single_seconds / batch_seconds:.1f}x)")

    # The handle-native replay: intern the workload once at the boundary
    # (the labeled run's public handle API), then the same BatchQuery shape
    # carries pure integer-handle arrays.
    source_ids, target_ids = labeled.intern_pairs(workload)
    started = time.perf_counter()
    handle_answers = session.run(
        BatchQuery(source_ids=source_ids, target_ids=target_ids)
    )
    handle_seconds = time.perf_counter() - started
    assert [bool(a) for a in handle_answers] == single_answers
    print(f"handle replay : {len(workload) / handle_seconds:>12,.0f} queries/s "
          f"({single_seconds / handle_seconds:.1f}x; interned once, replayed free)")

    # The same session API over a provenance store: one declarative surface
    # whether the labels live in memory or in SQLite.
    database = Path(tempfile.mkdtemp()) / "provenance.db"
    with ProvenanceStore(database) as store:
        run_id = store.add_labeled_run(labeled)
        for seed in (1, 2):
            extra = generate_run_with_size(
                spec, 2_000, seed=seed, name=f"qblast-2k-{seed}"
            )
            store.add_labeled_run(labeler.label_run(
                extra.run, plan=extra.plan, context=extra.context
            ))
        stored = store.session()

        sample = workload[:500]
        stored_answers = stored.run(BatchQuery(pairs=sample, run_id=run_id))
        assert list(map(bool, stored_answers)) == single_answers[:500]
        print(f"store batch: {len(sample)} stored-label queries answered, "
              f"{sum(map(bool, stored_answers))} reachable")

        anchor = vertices[1]
        assert stored.run(PointQuery(anchor, anchor, run_id=run_id))
        affected = stored.run(
            DownstreamQuery((anchor.module, anchor.instance), run_id=run_id)
        )
        print(f"downstream of {anchor}: {len(affected)} executions "
              f"(one SQL round trip)")

        # The scaling query: one dependency sweep across EVERY stored run of
        # the specification.  The spec kernel is compiled once; each run
        # streams its raw label columns through it.  The per-run payloads
        # are independent, so `workers=` fans them across a pool — the
        # executor auto-selects the sequential path when a pool cannot pay
        # for itself (few runs, one core, in-memory store), so `None` is
        # always a safe default.
        started = time.perf_counter()
        sweep = stored.run(
            CrossRunQuery(spec.name, (anchor.module, anchor.instance), workers=None)
        )
        sweep_seconds = time.perf_counter() - started
        print(f"cross-run sweep: {sweep.affected_count} affected executions "
              f"across {sweep.run_count} runs in {sweep_seconds * 1e3:.1f} ms")
        assert sorted(sweep.per_run[run_id]) == sorted(
            (v.module, v.instance) for v in affected
        )

        # The generalized form: the SAME pair workload asked of every run,
        # answered as a runs x pairs boolean matrix — without building a
        # per-run engine per run.  Runs missing a queried endpoint are
        # skipped whole, so every matrix row is a complete answer vector.
        monitored = [
            ((anchor.module, anchor.instance), (v.module, v.instance))
            for v in vertices[:32]
        ]
        started = time.perf_counter()
        cross = stored.run(CrossRunBatchQuery(spec.name, monitored))
        cross_seconds = time.perf_counter() - started
        matrix = cross.matrix()
        print(f"cross-run batch: {len(monitored)} pairs x {cross.run_count} "
              f"runs in {cross_seconds * 1e3:.1f} ms "
              f"(matrix rows in run order {cross.run_ids}, "
              f"{len(cross.skipped_runs)} runs skipped)")
        assert list(map(bool, matrix[cross.run_ids.index(run_id)])) == [
            bool(a) for a in stored.run(BatchQuery(pairs=monitored, run_id=run_id))
        ]

        # Adaptive promotion: the first few point queries on a run pay
        # per-pair SQL; once the run is hot the session promotes it to the
        # compiled kernel and later point queries replay with zero SQL.
        for _ in range(10):
            stored.run(PointQuery(anchor, vertices[2], run_id=run_id))
        stats = stored.cache_stats()
        print(f"session cache: promoted runs {stats['promoted_runs']} "
              f"(threshold {stats['promote_after']}), "
              f"{stats['evictions']} evictions")


if __name__ == "__main__":
    main()
