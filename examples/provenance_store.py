#!/usr/bin/env python3
"""Persist labeled runs in SQLite and query provenance without the run graph.

Workflow engines typically execute the same specification many times and keep
provenance in a database.  This example labels several runs of one catalog
workflow, stores the labels (not the transitive closure, not the graph) in a
SQLite file, and then answers reachability and data-dependency queries purely
from the stored labels — the deployment scenario the paper's amortization
argument is about.  Queries go through the store's declarative session
(:class:`~repro.api.ProvenanceSession`), the one documented query surface.
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro import DataDependencyQuery, PointQuery, SkeletonLabeler
from repro.datasets import load_real_workflow
from repro.provenance import generate_dataflow
from repro.storage import ProvenanceStore
from repro.workflow import generate_run_with_size


def main() -> None:
    spec = load_real_workflow("BioAID")
    labeler = SkeletonLabeler(spec, "tcm")

    database = Path(tempfile.mkdtemp()) / "provenance.db"
    print(f"provenance database: {database}")

    with ProvenanceStore(database) as store:
        # Label and store three runs of increasing size (the spec labels are
        # built once by the labeler and shared by all of them).
        run_ids = []
        for index, size in enumerate((500, 1_000, 2_000)):
            generated = generate_run_with_size(spec, size, seed=index, name=f"bioaid-{size}")
            labeled = labeler.label_run(
                generated.run, plan=generated.plan, context=generated.context
            )
            run_id = store.add_labeled_run(labeled)
            run_ids.append(run_id)
            dataflow = generate_dataflow(generated.run, rng=random.Random(index))
            store.add_dataflow(run_id, dataflow)
            print(f"stored run {generated.run.name!r}: {generated.run.vertex_count} vertices "
                  f"as run_id={run_id}")

        print("\nstore statistics:", store.statistics())

        # Reachability straight from the stored labels, through the session.
        session = store.session()
        run = store.get_run(run_ids[-1])
        vertices = run.vertices()
        rng = random.Random(42)
        print("\nsample reachability answers from the stored labels:")
        for _ in range(5):
            source, target = rng.choice(vertices), rng.choice(vertices)
            answer = session.run(PointQuery(source, target, run_id=run_ids[-1]))
            print(f"  {source} -> {target}: {'reachable' if answer else 'not reachable'}")

        # Data dependencies from the stored data items.
        items = store.list_data_items(run_ids[-1])
        first, last = items[0], items[-1]
        forwards = session.run(
            DataDependencyQuery(last, on_item=first, run_id=run_ids[-1])
        )
        backwards = session.run(
            DataDependencyQuery(first, on_item=last, run_id=run_ids[-1])
        )
        print(f"\n  {last} depends on {first}: {forwards}")
        print(f"  {first} depends on {last}: {backwards}")


if __name__ == "__main__":
    main()
