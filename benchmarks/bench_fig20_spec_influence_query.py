"""Figure 20: influence of the specification size on BFS+SKL query time.

Benchmarked operation: a batch of BFS+SKL queries on a run of the nG=100
specification.  Printed series: BFS+SKL query time per run size for
specifications with nG in {50, 100, 200}, plus the context-encoding fast-path
fraction.  Expected shape: bigger specifications cost more per query (the
skeleton fallback searches a bigger graph), and the influence weakens as runs
grow because more queries never reach the skeleton labels.
"""

from __future__ import annotations

import random

from repro.bench.experiments import (
    comparison_specification,
    figure_20_spec_influence_query,
    spec_influence,
)
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size


def test_fig20_spec_influence_query(benchmark, bench_scale, report_sink, shared_influence):
    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "bfs")
    run = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0).run
    labeled = labeler.label_run(run)
    rng = random.Random(0)
    vertices = run.vertices()
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(32)]
    benchmark(lambda: [labeled.reaches(s, t) for s, t in pairs])

    shared = shared_influence
    result = report_sink(figure_20_spec_influence_query(bench_scale, shared=shared))

    largest = max(row["run_size"] for row in result.rows if row["spec_size"] == 50)

    def query_us(spec_size: int, run_size_selector) -> float:
        rows = sorted(
            (row for row in result.rows if row["spec_size"] == spec_size),
            key=lambda row: row["run_size"],
        )
        return run_size_selector(rows)

    smallest_run_50 = query_us(50, lambda rows: rows[0]["bfs_skl_query_us"])
    smallest_run_200 = query_us(200, lambda rows: rows[0]["bfs_skl_query_us"])
    # on small runs, the bigger specification is noticeably slower to query
    assert smallest_run_200 > smallest_run_50
    # the fast-path fraction grows with the run for every specification
    for spec_size in (50, 100, 200):
        rows = sorted(
            (row for row in result.rows if row["spec_size"] == spec_size),
            key=lambda row: row["run_size"],
        )
        assert rows[-1]["bfs_skl_fast_path"] >= rows[0]["bfs_skl_fast_path"]
