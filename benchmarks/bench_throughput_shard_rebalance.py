"""Hot-spec sweeps before vs after ``rebalance`` + read replicas.

Benchmarked operation: one :meth:`ShardedProvenanceStore.rebalance` call
(copy the spec's rows under the shard write locks, flip the routing
catalog in one transaction, delete the source rows, checkpoint both
shards).  Printed series: cross-run sweep latency of a hot specification
that owns ~80% of the stored runs, measured against the shard it shares
with a churning cold spec (pre) and again after the maintenance path
moves it to a dedicated shard and attaches two read replicas (post).

Acceptance bars: on hosts with >= 2 real cores the post-rebalance sweeps
must reach >= 2x the pre-rebalance throughput at default scale and
>= 1.2x at smoke scale (replica fan-out spreads the workers over
journal-less snapshot files).  Answers are verified bit-identical to a
never-rebalanced single-file store before the migration, after a
crash-injected migration attempt (the ``routing.migrate`` fault point)
and after the real rebalance, inside the experiment, before any number
is reported.  Single-core hosts cannot parallelise the fan-out and keep
only the checkpointed-shard and clustering wins, which at RAM scale are
thin; they gate only against pathological slowdown.
"""

from __future__ import annotations

import os

from repro.bench.experiments import throughput_shard_rebalance
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.sharded import ShardedProvenanceStore, shard_of_spec
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size


def test_throughput_shard_rebalance(benchmark, bench_scale, report_sink, tmp_path):
    from repro.bench.experiments import comparison_specification

    shards = 4
    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "tcm")
    labeled = [
        labeler.label_run(
            generate_run_with_size(
                spec, bench_scale.run_sizes[0], seed=seed, name=f"bench-{seed}"
            ).run
        )
        for seed in range(4)
    ]
    store = ShardedProvenanceStore(tmp_path / "bench-rebalance", shards)
    store.add_labeled_runs(labeled)
    home = shard_of_spec(spec.name, shards)
    counters = {"moves": 0}

    def move_spec():
        # ping-pong the spec between its home shard and the next one: every
        # call exercises the full copy -> flip -> delete -> checkpoint path
        counters["moves"] += 1
        target = (home + 1) % shards if counters["moves"] % 2 else home
        return store.rebalance(spec.name, target)

    summary = benchmark(move_spec)
    assert summary["moved_runs"] == len(labeled)

    # wherever the ping-pong left the spec, answers must match a plain
    # single-file store built from the same runs
    single = ProvenanceStore(tmp_path / "bench-single.db")
    for item in labeled:
        single.add_labeled_run(item)
    single_runs = single.list_runs(spec.name)
    moved_runs = store.list_runs(spec.name)
    assert len(single_runs) == len(moved_runs) == len(labeled)
    for single_row, moved_row in zip(single_runs, moved_runs):
        assert single_row["name"] == moved_row["name"]
        assert single.all_labels_of(single_row["run_id"]) == store.all_labels_of(
            moved_row["run_id"]
        )
    single.close()
    store.close()

    result = report_sink(throughput_shard_rebalance(bench_scale))
    rows = {(row["workload"], row["mode"]): row for row in result.rows}

    # Every measured row carries a real ratio; correctness (sharded sweep ==
    # never-rebalanced single-file sweep, including across the crash-injected
    # migration attempt) is enforced inside the experiment before any number
    # is reported.
    for row in result.rows:
        assert row["speedup"] is not None and row["speedup"] > 0, row

    sweep = rows[("sweep-hot-spec", "thread")]
    assert sweep["rebalanced"] is True
    assert sweep["replicas"] == 2
    assert sweep["moved_runs"] == sweep["hot_runs"]

    default_scale = sweep["vertices_per_run"] >= 1_000
    cores = os.cpu_count() or 1
    if default_scale and cores >= 2:
        # The headline claim: with real cores, a dedicated checkpointed
        # shard plus two replica files the executor fans its workers over
        # must at least double the hot spec's sweep throughput.
        assert sweep["speedup"] >= 2.0, sweep
    elif cores >= 2:
        assert sweep["speedup"] >= 1.2, sweep
    else:
        # Single-core hosts cannot parallelise the replica fan-out, and
        # rotating reads over three snapshot files dilutes the one core's
        # page cache, so honest ratios here straddle break-even; gate only
        # against pathological slowdown.
        assert sweep["speedup"] >= 0.6, sweep
