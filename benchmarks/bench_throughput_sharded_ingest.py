"""Sharded parallel ingest vs the single-file store's write path.

Benchmarked operation: one :meth:`ShardedProvenanceStore.add_labeled_runs`
batch (pre-labeled runs of several specifications, grouped per shard and
committed concurrently over the store's persistent worker pool).  Printed
series: the single-file per-run ``add_labeled_run`` loop vs the sharded
batched ingest, plus the pool-reuse rows (one compiled cross-run sweep
re-executed with a fresh worker pool per execution vs the store-owned
persistent pool).

Acceptance bars: on hosts with >= 2 real cores at default scale the
sharded ingest must reach >= 2x the single-file write throughput (shards
commit concurrently *and* batch their transactions); answers over the
sharded store are verified bit-identical to the single-file store inside
the experiment before any number is reported.  Single-core hosts keep only
the batched-transaction win, so smoke runs gate with wide margins only.
"""

from __future__ import annotations

import os

from repro.bench.experiments import throughput_sharded_ingest
from repro.engine.kernels import HAS_NUMPY
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.sharded import ShardedProvenanceStore
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size


def test_throughput_sharded_ingest(benchmark, bench_scale, report_sink, tmp_path):
    from repro.bench.experiments import comparison_specification

    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "tcm")
    labeled = [
        labeler.label_run(
            generate_run_with_size(
                spec, bench_scale.run_sizes[0], seed=seed, name=f"bench-{seed}"
            ).run
        )
        for seed in range(4)
    ]

    counters = {"batch": 0}

    def ingest_batch():
        counters["batch"] += 1
        store = ShardedProvenanceStore(
            tmp_path / f"bench-shards-{counters['batch']}", 4
        )
        try:
            return store.add_labeled_runs(labeled)
        finally:
            store.close()

    run_ids = benchmark(ingest_batch)
    assert len(run_ids) == len(labeled)

    # the sharded store must answer exactly like a single-file store built
    # from the same runs (the experiment re-verifies this per spec)
    single = ProvenanceStore(tmp_path / "bench-single.db")
    sharded = ShardedProvenanceStore(tmp_path / "bench-verify", 4)
    for item in labeled:
        single.add_labeled_run(item)
    sharded.add_labeled_runs(labeled)
    single_runs = single.list_runs(spec.name)
    sharded_runs = sharded.list_runs(spec.name)
    assert len(single_runs) == len(sharded_runs) == len(labeled)
    for single_row, sharded_row in zip(single_runs, sharded_runs):
        assert single_row["name"] == sharded_row["name"]
        single_labels = single.all_labels_of(single_row["run_id"])
        sharded_labels = sharded.all_labels_of(sharded_row["run_id"])
        assert single_labels == sharded_labels
    single.close()
    sharded.close()

    result = report_sink(throughput_sharded_ingest(bench_scale))
    rows = {(row["workload"], row["mode"]): row for row in result.rows}

    # Every measured row carries a real ratio; correctness (sharded sweep ==
    # single-file sweep per specification) is enforced inside the
    # experiment before any number is reported.
    for row in result.rows:
        assert row["speedup"] is not None and row["speedup"] > 0, row

    ingest = rows[("ingest", "thread")]
    default_scale = ingest["vertices_per_run"] >= 1_000
    cores = os.cpu_count() or 1
    if default_scale and cores >= 2:
        # The headline claim: with real cores, batched per-shard commits on
        # the persistent pool must at least double the single-file write
        # throughput.
        assert ingest["speedup"] >= 2.0, ingest
    else:
        # Single-core hosts (and smoke runs) keep only the structural
        # batched-transaction win; gate only against pathological slowdown.
        assert ingest["speedup"] >= 0.7, ingest

    # Pool persistence must never lose to re-spawning pools; the process
    # row (which also skips re-pickling the dense spec matrices) shows the
    # larger structural win wherever numpy is installed.
    assert rows[("sweep-pool-reuse", "thread")]["speedup"] >= 0.7
    if HAS_NUMPY and ("sweep-pool-reuse", "process") in rows:
        assert rows[("sweep-pool-reuse", "process")]["speedup"] >= 1.1
