"""The provenance network daemon: batch replay and sustained mixed QPS.

Benchmarked operation: one handle-native batch frame answered over a
loopback TCP connection (the request body is the binary pair workload,
so the server replays it with zero parsing).  Printed series: the
point-round-trips-vs-one-batch-frame replay ratio, plus the sustained
mixed workload (concurrent reader clients verifying every answer while a
writer client ingests through the buffered ingest op).

Acceptance bars: collapsing N point round trips into one batch frame
must win by a wide structural margin (>= 4x at any scale — each point
query pays a full round trip that the batch pays once); the sustained
row must complete with every answer bit-identical to the in-process
session (enforced inside the experiment) and a sane p99; the retry
machinery must cost < 5% on the fault-free path (retry-overhead row);
and the lossy row — 1% of response reads dropped by a seeded FaultPlan —
must sustain verified throughput with at least one real retry.  Absolute
QPS is hardware-bound and only gated by the regression checker under
``--strict-qps``.
"""

from __future__ import annotations

from repro.api.queries import BatchQuery
from repro.bench.experiments import throughput_server
from repro.server import RemoteStore, ServerThread
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.sharded import ShardedProvenanceStore
from repro.workflow.execution import generate_run_with_size


def test_throughput_server(benchmark, bench_scale, report_sink, tmp_path):
    from repro.bench.experiments import comparison_specification

    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "tcm")
    labeled = labeler.label_run(
        generate_run_with_size(
            spec, bench_scale.run_sizes[0], seed=0, name="bench-served"
        ).run
    )
    store = ShardedProvenanceStore(tmp_path / "bench-store", 2)
    (run_id,) = store.add_labeled_runs([labeled])
    vertices = labeled.run.vertices()
    pairs = [
        (
            (vertices[index % len(vertices)].module, vertices[index % len(vertices)].instance),
            (vertices[-1 - index % len(vertices)].module, vertices[-1 - index % len(vertices)].instance),
        )
        for index in range(64)
    ]
    source_ids, target_ids = store.query_engine(run_id).intern_pairs(pairs)
    expected = store.session().run(BatchQuery(pairs=pairs, run_id=run_id))

    with ServerThread(store) as server:
        with RemoteStore(server.url) as client:
            session = client.session()

            def replay_batch():
                return session.run(
                    BatchQuery(
                        source_ids=source_ids, target_ids=target_ids, run_id=run_id
                    )
                )

            answers = benchmark(replay_batch)
            assert answers == expected
    store.close()

    result = report_sink(throughput_server(bench_scale))
    rows = {row["workload"]: row for row in result.rows}

    replay = rows["batch-replay"]
    # one batch frame vs one round trip per pair: the structural win must
    # be wide on any hardware (the gated baseline tracks the exact ratio)
    assert replay["speedup"] is not None and replay["speedup"] >= 4.0, replay

    sustained = rows["mixed-sustained"]
    # every reader answer was verified bit-identical inside the experiment
    # while the writer was ingesting; here we gate only on sanity
    assert sustained["answers_qps"] is not None and sustained["answers_qps"] > 0
    assert sustained["ingested_runs"] >= 1
    assert sustained["p99_ms"] is not None and sustained["p99_ms"] > 0

    overhead = rows["retry-overhead"]
    # the fault-tolerance machinery must be free when nothing fails: the
    # guarded client may cost at most 5% over the bare one — or 20us per
    # exchange, whichever is larger, because 5% of a ~0.2 ms loopback
    # frame sits below scheduler noise on a shared runner
    assert overhead["faults"] == "none"
    assert overhead["overhead_pct"] is not None, overhead
    delta_ms = overhead["optimized_ms"] - overhead["baseline_ms"]
    assert delta_ms < max(0.05 * overhead["baseline_ms"], 0.02), overhead

    lossy = rows["lossy-sustained"]
    # 1% of response reads were dropped by a seeded FaultPlan; the client
    # must have actually retried through them while every answer stayed
    # bit-identical (verified inside the experiment)
    assert lossy["faults"] == "drop-1pct"
    assert lossy["injected_faults"] >= 1
    assert lossy["client_retries"] >= lossy["injected_faults"]
    assert lossy["answers_qps"] is not None and lossy["answers_qps"] > 0
