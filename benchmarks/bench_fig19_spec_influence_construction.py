"""Figure 19: influence of the specification size on TCM+SKL construction time.

Benchmarked operation: plan construction + labeling of a run of the nG=50
specification.  Printed series: amortized (k=2) construction time per run
size for specifications with nG in {50, 100, 200}; the curves converge as the
runs grow because the run-side linear work dominates the amortized spec cost.
"""

from __future__ import annotations

from repro.bench.experiments import (
    figure_19_spec_influence_construction,
    spec_influence,
)
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size


def test_fig19_spec_influence_construction(benchmark, bench_scale, report_sink, shared_influence):
    spec = generate_specification(
        SyntheticSpecConfig(50, 100, 10, 4, name="synthetic-50", seed=92)
    )
    labeler = SkeletonLabeler(spec, "tcm")
    run = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0).run
    benchmark(labeler.label_run, run)

    shared = shared_influence
    result = report_sink(figure_19_spec_influence_construction(bench_scale, shared=shared))

    # construction time grows with run size for every specification (linear
    # trend); millisecond-level noise makes this meaningful only once the sweep
    # spans at least an order of magnitude in run size
    for spec_size in (50, 100, 200):
        rows = sorted(
            (row for row in result.rows if row["spec_size"] == spec_size),
            key=lambda row: row["run_size"],
        )
        assert rows, f"no rows for spec_size={spec_size}"
        if rows[-1]["run_size"] >= 10 * rows[0]["run_size"]:
            assert (
                rows[-1]["tcm_skl_construction_ms_k2"]
                >= rows[0]["tcm_skl_construction_ms_k2"]
            )
