"""Figure 16: amortized construction time — TCM+SKL vs BFS+SKL vs direct TCM.

Benchmarked operation: TCM+SKL labeling of the largest run of the sweep.
Printed series: construction time per run size and scheme.  Expected shape:
both SKL variants grow linearly and label runs orders of magnitude faster
than building a transitive closure matrix on the run itself.
"""

from __future__ import annotations

from repro.bench.experiments import (
    comparison_specification,
    figure_16_construction_comparison,
    scheme_comparison,
)
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size


def test_fig16_construction_comparison(benchmark, bench_scale, report_sink, shared_comparison):
    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "tcm")
    run = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0).run
    benchmark(labeler.label_run, run)

    shared = shared_comparison
    result = report_sink(figure_16_construction_comparison(bench_scale, shared=shared))

    direct_tcm = {
        row["run_size"]: row["construction_ms"]
        for row in result.rows
        if row["scheme"] == "tcm"
    }
    skl = {
        row["run_size"]: row["construction_ms"]
        for row in result.rows
        if row["scheme"] == "tcm+skl" and row["amortized_runs"] == 10
    }
    assert direct_tcm and skl
    # SKL labels every run of the sweep, including sizes where the quadratic
    # transitive-closure baseline is no longer attempted (memory blow-up).
    assert max(skl) >= max(direct_tcm)
    # Shape claim (Figure 16): the direct transitive closure grows super-linearly
    # with the run while SKL stays linear.  Check TCM's own growth against the
    # size ratio, using a baseline point large enough (>= 1 ms) for timing noise
    # not to matter.  Absolute times differ from the paper because our TCM
    # baseline uses word-parallel bitsets (see EXPERIMENTS.md).
    largest_direct = max(direct_tcm)
    baselines = sorted(size for size, ms in direct_tcm.items() if ms >= 1.0)
    if baselines and largest_direct >= 4 * baselines[0]:
        baseline = baselines[0]
        size_ratio = largest_direct / baseline
        time_ratio = direct_tcm[largest_direct] / direct_tcm[baseline]
        assert time_ratio > 1.2 * size_ratio
