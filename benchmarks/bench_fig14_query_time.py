"""Figure 14: SKL query time vs run size on QBLAST (constant time expected).

Benchmarked operation: a single reachability query on the largest run of the
sweep (the paper's claim is that this is O(1)).  Printed series: average
query time per run size, which must stay flat.
"""

from __future__ import annotations

import random

from repro.bench.experiments import figure_14_query_time
from repro.datasets.reallife import load_real_workflow
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size


def test_fig14_query_time(benchmark, bench_scale, report_sink):
    spec = load_real_workflow("QBLAST")
    labeler = SkeletonLabeler(spec, "tcm")
    run = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0).run
    labeled = labeler.label_run(run)
    rng = random.Random(0)
    vertices = run.vertices()
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(64)]

    def query_batch() -> int:
        return sum(1 for source, target in pairs if labeled.reaches(source, target))

    benchmark(query_batch)

    result = report_sink(figure_14_query_time(bench_scale))
    times = [row["query_us"] for row in result.rows]
    # constant query time: largest and smallest run differ by a small factor only
    assert max(times) <= 20 * min(times)
