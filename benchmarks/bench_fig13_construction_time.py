"""Figure 13: SKL construction time vs run size on QBLAST.

Benchmarked operation: the default-setting labeling (plan reconstructed from
the run graph) of the largest run in the sweep.  Printed series: construction
time per run size for both settings — the default one and the "run given with
its execution plan & context" one, which must be cheaper.
"""

from __future__ import annotations

from repro.bench.experiments import figure_13_construction_time
from repro.datasets.reallife import load_real_workflow
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size


def test_fig13_construction_time(benchmark, bench_scale, report_sink):
    spec = load_real_workflow("QBLAST")
    labeler = SkeletonLabeler(spec, "tcm")
    generated = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0)
    benchmark(labeler.label_run, generated.run)

    result = report_sink(figure_13_construction_time(bench_scale))
    rows = result.rows
    for row in rows:
        assert row["with_plan_ms"] <= row["default_ms"]
    # linear growth: construction increases with run size and the per-vertex
    # cost stays within an absolute budget (observed ~0.02 ms/vertex; allow a
    # generous margin so one noisy measurement cannot fail the suite)
    assert rows[-1]["default_ms"] >= rows[0]["default_ms"]
    assert rows[-1]["default_ms"] <= 0.25 * rows[-1]["run_size"]
    per_vertex = sorted(row["default_ms"] / row["run_size"] for row in rows[1:])
    median = per_vertex[len(per_vertex) // 2]
    assert per_vertex[-1] <= 20 * median
