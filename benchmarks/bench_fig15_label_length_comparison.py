"""Figure 15: amortized label length — TCM+SKL (1/2/10 runs) vs BFS+SKL.

Benchmarked operation: BFS+SKL labeling of the largest run of the sweep.
Printed series: maximum label length per run size and scheme, with the
specification cost amortized over 1, 2 and 10 runs for TCM+SKL.  Expected
shape: the TCM+SKL curves start above BFS+SKL for small runs (the nG²/(k·nR)
term dominates) and converge to it for large runs.
"""

from __future__ import annotations

from repro.bench.experiments import (
    comparison_specification,
    figure_15_label_length_comparison,
    scheme_comparison,
)
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size


def test_fig15_label_length_comparison(benchmark, bench_scale, report_sink, shared_comparison):
    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "bfs")
    run = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0).run
    benchmark(labeler.label_run, run)

    shared = shared_comparison
    result = report_sink(figure_15_label_length_comparison(bench_scale, shared=shared))

    tcm_rows = [row for row in result.rows if row["scheme"] == "tcm+skl"]
    bfs_rows = {row["run_size"]: row for row in result.rows if row["scheme"] == "bfs+skl"}
    largest = max(row["run_size"] for row in tcm_rows)
    smallest = min(row["run_size"] for row in tcm_rows)

    def bits(size: int, runs: int) -> float:
        return next(
            row["max_label_bits"]
            for row in tcm_rows
            if row["run_size"] == size and row["amortized_runs"] == runs
        )

    # amortizing over more runs always shrinks the TCM+SKL labels
    assert bits(smallest, 10) < bits(smallest, 1)
    # for small runs the spec cost dominates: TCM+SKL (k=1) is far above BFS+SKL
    assert bits(smallest, 1) > bfs_rows[smallest]["max_label_bits"] * 2
    # for large runs the gap closes to a small factor
    assert bits(largest, 10) <= bfs_rows[largest]["max_label_bits"] * 2
