"""Table 1: characteristics of the real-life scientific workflows.

The benchmarked operation is loading (synthesizing + validating) the whole
catalog; the printed table reports nG, mG, |TG| and [TG] per workflow, which
must match the published Table 1 exactly.
"""

from __future__ import annotations

from repro.bench.experiments import table_1_real_workflows
from repro.datasets.reallife import load_all_real_workflows


def test_table1_catalog(benchmark, report_sink):
    catalog = benchmark(load_all_real_workflows)
    assert len(catalog) == 6

    result = report_sink(table_1_real_workflows())
    published = {
        "EBI": (29, 31, 4, 2),
        "PubMed": (35, 45, 3, 3),
        "QBLAST": (58, 72, 6, 3),
        "BioAID": (71, 87, 10, 4),
        "ProScan": (89, 119, 9, 4),
        "ProDisc": (111, 158, 9, 3),
    }
    for row in result.rows:
        assert (row["nG"], row["mG"], row["|TG|"], row["[TG]"]) == published[row["workflow"]]
