"""Figure 18: influence of the specification size on TCM+SKL label length.

Benchmarked operation: TCM+SKL labeling of a run of the nG=200 specification.
Printed series: amortized (k=2) maximum label length per run size for
specifications with nG in {50, 100, 200}.  Expected shape: smaller
specifications win for small runs (smaller skeleton cost) and the curves
converge for large runs.
"""

from __future__ import annotations

from repro.bench.experiments import (
    figure_18_spec_influence_label_length,
    spec_influence,
)
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size


def test_fig18_spec_influence_label_length(benchmark, bench_scale, report_sink, shared_influence):
    spec = generate_specification(
        SyntheticSpecConfig(200, 400, 10, 4, name="synthetic-200", seed=242)
    )
    labeler = SkeletonLabeler(spec, "tcm")
    run = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0).run
    benchmark(labeler.label_run, run)

    shared = shared_influence
    result = report_sink(figure_18_spec_influence_label_length(bench_scale, shared=shared))

    sizes = sorted({row["run_size"] for row in result.rows if row["spec_size"] == 50})

    def bits(spec_size: int, which: int) -> float:
        matching = [row for row in result.rows if row["spec_size"] == spec_size]
        matching.sort(key=lambda row: row["run_size"])
        return matching[which]["tcm_skl_max_label_bits_k2"]

    # small runs: the nG=50 spec yields much shorter labels than nG=200
    assert bits(50, 0) < bits(200, 0)
    # large runs: the gap shrinks to a small factor (only observable once the
    # sweep reaches a few thousand vertices, where nG^2/(2 nR) fades away)
    if sizes[-1] >= 5_000:
        assert bits(200, len(sizes) - 1) <= 2.0 * bits(50, len(sizes) - 1)
