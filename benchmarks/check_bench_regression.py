#!/usr/bin/env python3
"""Diff fresh BENCH_*.json results against the committed baselines.

Usage::

    python benchmarks/check_bench_regression.py \
        [--results-dir benchmarks/results] \
        [--baseline-dir benchmarks/baselines] \
        [--threshold 0.30] [--strict-qps]

For every experiment present in **both** directories, rows are matched on
their identity columns (scheme / workload / kernel / run counts) and the
throughput metrics are compared.  By default only the ``speedup`` columns
are gated — speedups are ratios of two timings taken on the same machine
in the same process, so they transfer across hardware, which absolute
queries/second numbers (committed from a different machine) do not.  Pass
``--strict-qps`` to additionally gate every ``*_qps``/``*_vps`` column,
e.g. when regenerating baselines on the same host.

Exit status is 1 when any gated metric fell more than ``threshold``
(default 30%) below its baseline.  Small speedups (baseline < 3x) are
short cold-store timing ratios where scheduler noise alone can eat 30%,
so they get a wider 50% margin — floored at 1.0x, because a batched path
that stops beating its per-pair baseline at all is a real regression on
any hardware.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: row keys that identify a row rather than measure it
_IDENTITY_KEYS = (
    "scheme",
    "spec_scheme",
    "workload",
    "kernel",
    "mode",
    "runs",
    "vertices_per_run",
    "run_size",
    "pairs",
    "appends",
    "workers",
    "shards",
    "pool",
    "clients",
    "op_mix",
    "pushdown",
    "vertices",
    "updates",
    "faults",
    "hot_runs",
    "replicas",
    "rebalanced",
)


def _row_identity(row: dict) -> tuple:
    return tuple((key, row[key]) for key in _IDENTITY_KEYS if key in row)


def _gated_metrics(row: dict, strict_qps: bool) -> dict:
    metrics = {}
    for key, value in row.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if key == "speedup":
            metrics[key] = float(value)
        elif strict_qps and (key.endswith("_qps") or key.endswith("_vps")):
            metrics[key] = float(value)
    return metrics


def check(results_dir: Path, baseline_dir: Path, threshold: float, strict_qps: bool) -> int:
    baselines = {path.name: path for path in sorted(baseline_dir.glob("BENCH_*.json"))}
    if not baselines:
        print(f"no baselines under {baseline_dir}; nothing to gate")
        return 0
    failures: list[str] = []
    compared = 0
    for name, baseline_path in baselines.items():
        result_path = results_dir / name
        if not result_path.exists():
            print(f"SKIP {name}: no fresh result (experiment not run)")
            continue
        baseline = json.loads(baseline_path.read_text())
        result = json.loads(result_path.read_text())
        fresh_rows = {_row_identity(row): row for row in result.get("rows", [])}
        for baseline_row in baseline.get("rows", []):
            identity = _row_identity(baseline_row)
            fresh_row = fresh_rows.get(identity)
            if fresh_row is None:
                failures.append(f"{name}: row {dict(identity)} disappeared")
                continue
            for metric, old in _gated_metrics(baseline_row, strict_qps).items():
                new = fresh_row.get(metric)
                if not isinstance(new, (int, float)):
                    failures.append(
                        f"{name}: {dict(identity)} lost metric {metric!r}"
                    )
                    continue
                compared += 1
                if metric == "speedup" and old < 3.0:
                    # thin ratios wobble on shared runners: wide margin,
                    # but never accept dropping below break-even — unless
                    # the baseline itself was below break-even (the forced
                    # worker-pool rows on few-core hosts record honest
                    # sub-1x ratios; those gate at half their baseline)
                    floor = max(old * 0.5, 1.0) if old >= 1.0 else old * 0.5
                else:
                    floor = old * (1.0 - threshold)
                status = "FAIL" if new < floor else "ok"
                print(
                    f"{status:4s} {name} {dict(identity)} {metric}: "
                    f"{old:g} -> {new:g} (floor {floor:g})"
                )
                if new < floor:
                    failures.append(
                        f"{name}: {dict(identity)} {metric} regressed "
                        f"{old:g} -> {new:g} (> {threshold:.0%} drop)"
                    )
    print(f"compared {compared} gated metrics against {len(baselines)} baselines")
    if failures:
        print(f"\n{len(failures)} throughput regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    here = Path(__file__).resolve().parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results-dir", type=Path, default=here / "results")
    parser.add_argument("--baseline-dir", type=Path, default=here / "baselines")
    parser.add_argument("--threshold", type=float, default=0.30)
    parser.add_argument("--strict-qps", action="store_true")
    args = parser.parse_args(argv)
    return check(args.results_dir, args.baseline_dir, args.threshold, args.strict_qps)


if __name__ == "__main__":
    sys.exit(main())
