"""Figure 12: SKL label length (maximum and average) vs run size on QBLAST.

Benchmarked operation: labeling a mid-size QBLAST run with TCM+SKL.
Printed series: max / average label bits per run size, against the
``3 log2 nR`` asymptote — both must grow logarithmically (Lemma 4.7).
"""

from __future__ import annotations

from repro.bench.experiments import figure_12_label_length
from repro.datasets.reallife import load_real_workflow
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size


def test_fig12_label_length(benchmark, bench_scale, report_sink):
    spec = load_real_workflow("QBLAST")
    labeler = SkeletonLabeler(spec, "tcm")
    run = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0).run
    labeled = benchmark(labeler.label_run, run)
    assert labeled.max_label_length_bits() > 0

    result = report_sink(figure_12_label_length(bench_scale))
    rows = result.rows
    # logarithmic growth: doubling the run size adds a few bits, never doubles them
    assert rows[-1]["max_label_bits"] <= rows[0]["max_label_bits"] + 3 * len(rows)
    for row in rows:
        assert row["avg_label_bits"] <= row["max_label_bits"] <= row["bound_3log_nR"] + 9
