"""Edge updates: incremental label repair vs relabel-from-scratch.

Benchmarked operation: one leaf-edge delete/insert cycle plus a fixed
point-query workload against a live mutable index, repaired in place by the
:mod:`repro.dynamic` delta strategies.  Printed series: per-scheme wall
time of the incremental leg vs relabeling the whole graph from scratch
after every mutation (the only option before dynamic updates existed).
The acceptance bar is a >= 3x update+query speedup at default scale on
subtree-local updates for every mutable tree-shaped scheme (interval,
tree-cover, chain): the repair touches one tree / chain segment / dirty
region while the rebuild pays the full graph each time.  Answer equality
between the two legs is verified inside the experiment before any number
is reported.
"""

from __future__ import annotations

import random

from repro.bench.experiments import throughput_incremental_updates
from repro.graphs.digraph import DiGraph
from repro.labeling.registry import build_index


def test_throughput_incremental_updates(benchmark, bench_scale, report_sink):
    rng = random.Random(17)
    forest = DiGraph()
    tree_size = 100
    for vertex in range(10 * tree_size):
        forest.add_vertex(vertex)
        root = vertex - vertex % tree_size
        if vertex > root:
            forest.add_edge(rng.randrange(root, vertex), vertex)
    index = build_index("tree-cover", forest)
    leaf = max(v for v in range(10 * tree_size) if forest.out_degree(v) == 0)
    parent = forest.predecessors(leaf)[0]
    pairs = [(root, leaf) for root in range(0, 10 * tree_size, tree_size)]

    def update_cycle():
        index.delete_edge(parent, leaf)
        index.insert_edge(parent, leaf)
        return [index.reaches(source, target) for source, target in pairs]

    benchmark(update_cycle)

    result = report_sink(throughput_incremental_updates(bench_scale))
    by_scheme = {row["scheme"]: row for row in result.rows}

    # Answer equality of the incremental and rebuild legs is verified inside
    # the experiment before any number is reported; here we gate the
    # performance claim.
    for row in by_scheme.values():
        assert row["speedup"] is not None, row

    if by_scheme["interval"]["vertices"] >= 3_000:
        # The headline claim at default scale and above: a subtree-local
        # update plus the query workload beats relabel-from-scratch >= 3x
        # on every mutable tree-shaped scheme (measured ~70-120x).
        assert by_scheme["interval"]["speedup"] >= 3.0
        assert by_scheme["tree-cover"]["speedup"] >= 3.0
        assert by_scheme["chain"]["speedup"] >= 3.0
    else:
        # Smoke graphs are small enough that a full rebuild is itself cheap;
        # just require a real win (measured ~2.3-20x).
        for row in by_scheme.values():
            assert row["speedup"] >= 1.2, row
