"""Batch query engine throughput: queries/s of single vs batched answering.

Benchmarked operation: one full batched workload (uniform random pairs on
the largest run of the sweep) through :class:`repro.engine.QueryEngine`.
Printed series: per-scheme queries/second for the per-pair loop and the
batched engine, with the speedup factor.  The acceptance bar is a >= 3x
speedup on the schemes whose per-pair path pays per-query traversals
(bfs+skl, direct bfs), with the packed-bit direct-tcm kernel close behind.
"""

from __future__ import annotations

import random

from repro.bench.experiments import comparison_specification, throughput_query_engine
from repro.engine import QueryEngine
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size


def test_throughput_query_engine(benchmark, bench_scale, report_sink):
    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "bfs")
    run = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0).run
    labeled = labeler.label_run(run)
    engine = QueryEngine(labeled)
    rng = random.Random(0)
    vertices = run.vertices()
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(10_000)]

    benchmark(lambda: engine.reaches_batch(pairs))

    result = report_sink(throughput_query_engine(bench_scale))
    by_scheme = {row["scheme"]: row for row in result.rows}

    # The headline claim: batching beats the per-pair loop >= 3x on the
    # schemes whose per-pair path does real per-query work (a spec-graph
    # traversal per fall-through for bfs+skl, a full run-graph traversal
    # per query for direct bfs).
    assert by_scheme["bfs+skl"]["speedup"] >= 3.0
    assert by_scheme["bfs"]["speedup"] >= 3.0
    # direct tcm pays a big-integer shift per query; the packed-bit kernel
    # beats it by ~3x at default scale (kept at 2x for timing headroom).
    # On the tiny smoke runs the shifts are cheap, so only gate the real
    # (>= 100k pair) workloads and require no-regression otherwise.
    if by_scheme["tcm"]["pairs"] >= 100_000:
        assert by_scheme["tcm"]["speedup"] >= 2.0
    else:
        assert by_scheme["tcm"]["speedup"] >= 1.0
    # tcm+skl queries are already a few integer comparisons; the batch
    # path must still not be slower.
    assert by_scheme["tcm+skl"]["speedup"] >= 1.0
