"""Batch query engine throughput: queries/s of single vs batched answering.

Benchmarked operation: one full batched workload (uniform random pairs on
the largest run of the sweep) through :class:`repro.engine.QueryEngine`.
Printed series: per-scheme queries/second for the per-pair loop and the
batched engine, with the speedup factor.  The acceptance bar is a >= 3x
speedup on the schemes whose per-pair path pays per-query traversals
(bfs+skl, direct bfs), with the packed-bit direct-tcm kernel close behind.
"""

from __future__ import annotations

import random

from repro.bench.experiments import (
    comparison_specification,
    throughput_handle_path,
    throughput_query_engine,
)
from repro.engine import QueryEngine
from repro.engine.kernels import HAS_NUMPY
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size


def test_throughput_query_engine(benchmark, bench_scale, report_sink):
    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "bfs")
    run = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0).run
    labeled = labeler.label_run(run)
    engine = QueryEngine(labeled)
    rng = random.Random(0)
    vertices = run.vertices()
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(10_000)]

    benchmark(lambda: engine.reaches_batch(pairs))

    result = report_sink(throughput_query_engine(bench_scale))
    by_scheme = {row["scheme"]: row for row in result.rows}

    # The headline claim: batching beats the per-pair loop >= 3x on the
    # schemes whose per-pair path does real per-query work (a spec-graph
    # traversal per fall-through for bfs+skl, a full run-graph traversal
    # per query for direct bfs).
    assert by_scheme["bfs+skl"]["speedup"] >= 3.0
    assert by_scheme["bfs"]["speedup"] >= 3.0
    # direct tcm pays a big-integer shift per query; the packed-bit kernel
    # beats it by ~3x at default scale (kept at 2x for timing headroom).
    # On the tiny smoke runs the shifts are cheap, so only gate the real
    # (>= 100k pair) workloads and require no-regression otherwise.
    if by_scheme["tcm"]["pairs"] >= 100_000:
        assert by_scheme["tcm"]["speedup"] >= 2.0
    else:
        assert by_scheme["tcm"]["speedup"] >= 1.0
    # tcm+skl queries are already a few integer comparisons; the batch
    # path must still not be slower.
    assert by_scheme["tcm+skl"]["speedup"] >= 1.0


def test_throughput_handle_path(benchmark, bench_scale, report_sink):
    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "tcm")
    run = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0).run
    engine = QueryEngine(labeler.label_run(run))
    rng = random.Random(0)
    vertices = run.vertices()
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(10_000)]
    # the one-time boundary conversion, then a pure handle replay
    source_ids, target_ids = engine.intern_pairs(pairs)

    benchmark(lambda: engine.reaches_many_ids(source_ids, target_ids))

    result = report_sink(throughput_handle_path(bench_scale))
    by_scheme = {row["scheme"]: row for row in result.rows}

    # Every row must at least break even: replaying pre-interned handles can
    # never be slower than re-resolving the same pairs per call.
    for row in result.rows:
        assert row["speedup"] is not None and row["speedup"] >= 1.0, row

    if HAS_NUMPY:
        # The headline claim of the interned-handle refactor: on kernels
        # that are pure array arithmetic, the object path spent most of its
        # time resolving vertices to ids, so interning once buys >= 3x
        # (measured ~8-16x at smoke and default scales).
        assert by_scheme["tcm+skl"]["speedup"] >= 3.0
        assert by_scheme["tcm"]["speedup"] >= 3.0
        # The schemes that used to fall back to the pure-python generic
        # kernel now compile flattened offset-array kernels.
        assert by_scheme["tree-cover"]["kernel"] == "numpy-tree-cover"
        assert by_scheme["chain"]["kernel"] == "numpy-chain"
        assert by_scheme["2-hop"]["kernel"] == "numpy-2hop"
