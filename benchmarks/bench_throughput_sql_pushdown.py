"""Cross-run reachability sweeps: SQL pushdown vs the streamed kernel.

Benchmarked operation: one :class:`repro.api.CrossRunQuery` sweep answered
entirely inside the shard's SQLite (``pushdown="always"``) — the anchored
range predicate compiled to a parameterized ``SELECT`` riding the
schema-v3 covering indexes.  Printed series: per-scheme wall time of the
pushdown leg vs the streamed-kernel leg (``pushdown="never"``), both
cold-store, with the speedup.  The acceptance bar is a >= 2x speedup at
default scale on the range-labeled schemes (interval, tree-cover): the
kernel leg always streams every label row out of SQLite before it can
evaluate anything, while the pushdown leg returns only the matching rows.
Without numpy the gap widens — the pushdown is then the only path that
does not pay a pure-Python predicate loop per row.
"""

from __future__ import annotations

from repro.api.queries import CrossRunQuery
from repro.api.session import ProvenanceSession
from repro.bench.experiments import _pushdown_specification, throughput_sql_pushdown
from repro.engine.kernels import HAS_NUMPY
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size


def test_throughput_sql_pushdown(benchmark, bench_scale, report_sink):
    spec = _pushdown_specification()
    labeler = SkeletonLabeler(spec, "interval")
    store = ProvenanceStore()
    for seed in range(3):
        generated = generate_run_with_size(
            spec, bench_scale.run_sizes[0], seed=seed, name=f"bench-run-{seed}"
        )
        store.add_labeled_run(labeler.label_run(generated.run))
    session = ProvenanceSession(store)
    anchor_module = min(
        v for v in spec.graph.vertices() if not spec.graph.predecessors(v)
    )
    query = CrossRunQuery(spec.name, (anchor_module, 1), "downstream", pushdown="always")

    benchmark(lambda: session.run(query))

    result = report_sink(throughput_sql_pushdown(bench_scale))
    by_scheme = {
        row["spec_scheme"]: row for row in result.rows if row["pushdown"] == "always"
    }

    # Equality of both legs' result sets is verified inside the experiment
    # before any number is reported; here we gate the performance claim.
    for row in by_scheme.values():
        assert row["speedup"] is not None, row

    if not HAS_NUMPY:
        # Without numpy the kernel leg evaluates the range predicate in a
        # pure-Python loop per row; pushing it into SQLite must still win
        # clearly (measured far above this floor).
        for row in by_scheme.values():
            assert row["speedup"] >= 1.5, row
        return

    if by_scheme["interval"]["vertices_per_run"] >= 3_000:
        # The headline claim at default scale and above: answering the sweep
        # as an indexed range scan inside the shard beats streaming the
        # label columns through the vectorized kernel >= 2x (measured ~10x
        # at default scale on all three schemes).
        assert by_scheme["interval"]["speedup"] >= 2.0
        assert by_scheme["tree-cover"]["speedup"] >= 2.0
        assert by_scheme["chain"]["speedup"] >= 2.0
    else:
        # Smoke runs are dominated by fixed per-query costs; just require a
        # real win (measured ~2.4-3.5x).
        for row in by_scheme.values():
            assert row["speedup"] >= 1.2, row
