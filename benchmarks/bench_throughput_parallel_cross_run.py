"""Parallel cross-run execution vs the sequential PR 3 paths.

Benchmarked operation: one parallel :class:`repro.api.CrossRunBatchQuery`
(the same pairs asked of every stored run of one specification) through a
store-backed session.  Printed series: per-scheme sweep timings of the
sequential PR 3 streaming path vs the parallel executor (thread and
process pool modes), the cross-batch streaming path vs the per-run engine
loop PR 3 offered for the same question, and the incremental
``OnlineRun`` kernel vs the per-append engine rebuild it replaces.

Acceptance bars: the cross-run batch must beat the per-run engine loop
>= 2x at default scale (it streams label columns through the shared spec
kernel instead of materializing a full cached engine per run), the
incremental online kernel must beat the per-append rebuild, and — on
hosts with >= 4 real cores — the parallel sweep must beat the sequential
PR 3 sweep >= 2x in its best pool mode.  Pool rows on single-core hosts
legitimately dip below 1x (the production executor auto-selects the
sequential path there), so no pool bar applies below 4 cores.
"""

from __future__ import annotations

import os

from repro.api.queries import CrossRunBatchQuery, CrossRunQuery
from repro.api.session import ProvenanceSession
from repro.bench.experiments import (
    comparison_specification,
    throughput_parallel_cross_run,
)
from repro.engine.kernels import HAS_NUMPY
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size


def test_throughput_parallel_cross_run(benchmark, bench_scale, report_sink, tmp_path):
    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "tcm")
    store = ProvenanceStore(tmp_path / "bench.db")
    vertices = None
    for seed in range(4):
        generated = generate_run_with_size(
            spec, bench_scale.run_sizes[0], seed=seed, name=f"bench-run-{seed}"
        )
        if vertices is None:
            vertices = generated.run.vertices()
        store.add_labeled_run(labeler.label_run(generated.run))
    session = ProvenanceSession(store)
    anchor_module = min(
        v for v in spec.graph.vertices() if not spec.graph.predecessors(v)
    )
    pairs = [((anchor_module, 1), (v.module, v.instance)) for v in vertices[:64]]
    query = CrossRunBatchQuery(spec.name, pairs, workers=2)

    benchmark(lambda: session.run(query))

    # the parallel path must agree with the forced-sequential path exactly
    parallel = session.run(CrossRunBatchQuery(spec.name, pairs, workers=2))
    sequential = session.run(CrossRunBatchQuery(spec.name, pairs, workers=1))
    assert parallel.per_run == sequential.per_run
    assert parallel.skipped_runs == sequential.skipped_runs
    sweep_parallel = session.run(
        CrossRunQuery(spec.name, (anchor_module, 1), workers=2)
    )
    sweep_sequential = session.run(
        CrossRunQuery(spec.name, (anchor_module, 1), workers=1)
    )
    assert sweep_parallel.per_run == sweep_sequential.per_run
    store.close()

    result = report_sink(throughput_parallel_cross_run(bench_scale))
    rows = {
        (row["workload"], row["spec_scheme"], row["mode"]): row
        for row in result.rows
    }

    # Every measured row carries a real ratio; correctness (parallel ==
    # sequential, batch == engine loop, incremental == rebuild) is enforced
    # inside the experiment before any number is reported.
    for row in result.rows:
        assert row["speedup"] is not None and row["speedup"] > 0, row

    if not HAS_NUMPY:
        return  # the vectorized streaming paths are the headline

    default_scale = rows[("sweep", "tcm", "thread")]["vertices_per_run"] >= 3_000
    if default_scale:
        # The headline claims at default scale: streaming the shared spec
        # kernel beats building a full cached engine per run >= 2x on the
        # cross-run batch (measured 2.5-2.9x single-core), and the
        # incremental online kernel beats the per-append rebuild
        # (measured ~2.7x).
        assert rows[("cross-batch", "tree-cover", "auto")]["speedup"] >= 2.0
        assert rows[("cross-batch", "tcm", "auto")]["speedup"] >= 2.0
        assert rows[("online-append", "tcm", "incremental")]["speedup"] >= 1.5
        if (os.cpu_count() or 1) >= 4:
            # With real cores the parallel executor must beat the
            # sequential PR 3 sweep >= 2x in its best pool mode (workers
            # fetch and evaluate their chunks over private read-only
            # connections).
            for scheme in ("tree-cover", "tcm"):
                best = max(
                    rows[("sweep", scheme, "thread")]["speedup"],
                    rows[("sweep", scheme, "process")]["speedup"],
                )
                assert best >= 2.0, (scheme, best)
    else:
        # Smoke runs are too small to amortize pools; gate only with a wide
        # margin: the structural streaming wins must still show.
        assert rows[("cross-batch", "tree-cover", "auto")]["speedup"] >= 1.2
        assert rows[("online-append", "tcm", "incremental")]["speedup"] >= 1.2
        for row in result.rows:
            if row["workload"] == "sweep":
                assert row["speedup"] >= 0.2, row
