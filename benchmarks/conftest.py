"""Shared fixtures for the benchmark suite.

Every benchmark module regenerates one of the paper's tables or figures:

* the ``benchmark`` fixture times the core operation behind the figure
  (labeling a run, answering a query, ...), giving comparable
  pytest-benchmark numbers;
* the full experiment series (the rows the paper plots) is computed once per
  module, printed to the terminal and written to ``benchmarks/results/``.

The sweep size is controlled by the ``REPRO_BENCH_SCALE`` environment
variable: ``smoke`` (tiny, used by CI), ``default`` (runs up to 12.8K
vertices, a couple of minutes) or ``paper`` (the full 0.1K-102.4K sweep).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import get_scale
from repro.bench.reporting import ExperimentResult, write_report

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def pytest_report_header(config):  # pragma: no cover - cosmetic
    scale = os.environ.get("REPRO_BENCH_SCALE", "default")
    return f"repro benchmark scale: {scale} (set REPRO_BENCH_SCALE to change)"


@pytest.fixture(scope="session")
def bench_scale():
    """The benchmark scale preset selected via REPRO_BENCH_SCALE."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "default"))


@pytest.fixture(scope="session")
def shared_comparison(bench_scale):
    """The Figures 15-17 sweep, computed once and shared across modules."""
    from repro.bench.experiments import scheme_comparison

    return scheme_comparison(bench_scale)


@pytest.fixture(scope="session")
def shared_influence(bench_scale):
    """The Figures 18-20 sweep, computed once and shared across modules."""
    from repro.bench.experiments import spec_influence

    return spec_influence(bench_scale)


@pytest.fixture(scope="session")
def report_sink():
    """Print an experiment result and persist it under benchmarks/results/."""

    def _sink(result: ExperimentResult) -> ExperimentResult:
        print()
        print(result.to_text())
        write_report(result, RESULTS_DIR)
        return result

    return _sink
