"""Figure 17: query time — TCM+SKL vs BFS+SKL vs direct TCM vs direct BFS.

Benchmarked operation: a batch of TCM+SKL queries on the largest run.
Printed series: average query time per run size and scheme, plus the fraction
of queries answered by the context encoding alone (the ablation explaining
why BFS+SKL gets *faster* on larger runs).
"""

from __future__ import annotations

import random

from repro.bench.experiments import (
    comparison_specification,
    figure_17_query_comparison,
    scheme_comparison,
)
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size


def test_fig17_query_comparison(benchmark, bench_scale, report_sink, shared_comparison):
    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "tcm")
    run = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0).run
    labeled = labeler.label_run(run)
    rng = random.Random(0)
    vertices = run.vertices()
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(64)]
    benchmark(lambda: [labeled.reaches(s, t) for s, t in pairs])

    shared = shared_comparison
    result = report_sink(figure_17_query_comparison(bench_scale, shared=shared))

    def series(scheme: str) -> dict[int, float]:
        return {
            row["run_size"]: row["query_us"]
            for row in result.rows
            if row["scheme"] == scheme
        }

    tcm_skl, bfs_skl, bfs = series("tcm+skl"), series("bfs+skl"), series("bfs")
    shared_sizes = sorted(set(bfs) & set(bfs_skl))
    largest = shared_sizes[-1]
    # direct BFS is the slowest scheme on large runs; TCM+SKL the fastest of the three
    assert bfs[largest] > bfs_skl[largest]
    assert bfs[largest] > tcm_skl[largest]
    # TCM+SKL stays flat: no more than a small factor across the whole sweep
    assert max(tcm_skl.values()) <= 20 * min(tcm_skl.values())
    # the fast-path fraction grows with run size (more fork/loop copies)
    fast = [
        row["fast_path_fraction"]
        for row in result.rows
        if row["scheme"] == "tcm+skl"
    ]
    assert fast[-1] >= fast[0]
