"""Cross-run dependency sweeps: shared spec kernel vs per-run engines.

Benchmarked operation: one :class:`repro.api.CrossRunQuery` sweep (every
stored run of one specification) through a warm store-backed session.
Printed series: per-spec-scheme wall time of the session sweep vs the
per-run ``store.query_engine`` loop, both cold-store, with the speedup.
The acceptance bar is a >= 3x speedup at default scale on the dense
spec-kernel-shared schemes (tree-cover, tcm), whose per-specification
fall-through matrix the session compiles once for the whole sweep while
the loop additionally materializes per-run label objects, interners and
kernel arrays.
"""

from __future__ import annotations

from repro.api.queries import CrossRunQuery
from repro.api.session import ProvenanceSession
from repro.bench.experiments import comparison_specification, throughput_cross_run
from repro.engine.kernels import HAS_NUMPY
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.store import ProvenanceStore
from repro.workflow.execution import generate_run_with_size


def test_throughput_cross_run(benchmark, bench_scale, report_sink):
    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "tcm")
    store = ProvenanceStore()
    for seed in range(3):
        generated = generate_run_with_size(
            spec, bench_scale.run_sizes[0], seed=seed, name=f"bench-run-{seed}"
        )
        store.add_labeled_run(labeler.label_run(generated.run))
    session = ProvenanceSession(store)
    anchor_module = min(
        v for v in spec.graph.vertices() if not spec.graph.predecessors(v)
    )
    query = CrossRunQuery(spec.name, (anchor_module, 1), "downstream")

    benchmark(lambda: session.run(query))

    result = report_sink(throughput_cross_run(bench_scale))
    by_scheme = {row["spec_scheme"]: row for row in result.rows}

    # Streaming label arrays through a shared kernel can never lose to
    # rebuilding a full engine per run.
    for row in result.rows:
        assert row["speedup"] is not None and row["speedup"] >= 1.0, row

    if not HAS_NUMPY:
        return  # the vectorized sweep is the headline; fallback only breaks even

    if by_scheme["tcm"]["vertices_per_run"] >= 3_000:
        # The headline claim at default scale and above: compiling the spec
        # kernel once and streaming per-run label columns beats the per-run
        # engine loop >= 3x on the dense spec-kernel-shared schemes
        # (measured ~3.8x tree-cover, ~4.2x tcm at default scale).
        assert by_scheme["tree-cover"]["speedup"] >= 3.0
        assert by_scheme["tcm"]["speedup"] >= 3.0
        assert by_scheme["bfs"]["speedup"] >= 2.0
    else:
        # Smoke runs are too small to amortize anything; just require a
        # real win (measured ~1.8-2.3x).
        for row in result.rows:
            assert row["speedup"] >= 1.2, row
