"""Ablation: SKL robustness to the specification labeling scheme (Section 8.2).

The paper's conclusion — "SKL is insensitive to the quality of the labeling
scheme used to label the specification" — is checked here by swapping the
skeleton scheme between TCM, BFS, DFS, tree cover, chain decomposition and a
greedy 2-hop cover while labeling the same runs.

Benchmarked operation: tree-cover+SKL labeling of the largest run.  The
printed series reports label length, construction time, query time and the
context fast-path fraction per (run size, scheme).
"""

from __future__ import annotations

from repro.bench.experiments import ablation_spec_schemes, comparison_specification
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size

SCHEMES = ("tcm", "bfs", "dfs", "tree-cover", "chain", "2-hop")


def test_ablation_spec_schemes(benchmark, bench_scale, report_sink):
    spec = comparison_specification()
    labeler = SkeletonLabeler(spec, "tree-cover")
    run = generate_run_with_size(spec, bench_scale.run_sizes[-1], seed=0).run
    benchmark(labeler.label_run, run)

    result = report_sink(ablation_spec_schemes(bench_scale, schemes=SCHEMES))
    largest = max(row["run_size"] for row in result.rows)
    largest_rows = {
        row["spec_scheme"]: row for row in result.rows if row["run_size"] == largest
    }
    assert set(largest_rows) == set(SCHEMES)

    # Robustness claim 1: run label lengths are identical across schemes (the
    # per-vertex label stores the same context coordinates + origin reference).
    lengths = {row["max_label_bits"] for row in largest_rows.values()}
    assert len(lengths) == 1

    # Robustness claim 2: construction times agree within a small factor — the
    # spec scheme only matters for the skeleton index built once per spec.
    times = [row["construction_ms"] for row in largest_rows.values()]
    assert max(times) <= 3 * min(times)

    # Robustness claim 3: every scheme answers the same queries; the constant-
    # time schemes bound the traversal-based ones from below.
    queries = {scheme: row["query_us"] for scheme, row in largest_rows.items()}
    assert queries["tcm"] <= queries["bfs"] * 1.5
