"""Table 2: complexity comparison of TCM+SKL, BFS+SKL, TCM and BFS.

The benchmarked operation is one TCM+SKL labeling of the Table 2 run; the
printed table shows the predicted label lengths (Table 2 formulas) next to
the measured ones plus measured query times for every scheme.
"""

from __future__ import annotations

from repro.bench.experiments import comparison_specification, table_2_complexity
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size


def test_table2_complexity(benchmark, bench_scale, report_sink):
    spec = comparison_specification()
    run_size = bench_scale.run_sizes[min(len(bench_scale.run_sizes) - 1, 4)]
    generated = generate_run_with_size(spec, run_size, seed=0)
    labeler = SkeletonLabeler(spec, "tcm")
    labeled = benchmark(labeler.label_run, generated.run)
    assert labeled.run.vertex_count >= run_size

    result = report_sink(table_2_complexity(bench_scale))
    schemes = {row["scheme"] for row in result.rows}
    assert {"TCM+SKL", "BFS+SKL", "BFS"} <= schemes
    measured = {row["scheme"]: row for row in result.rows}
    # SKL labels must stay within a small factor of the analytic prediction.
    assert measured["BFS+SKL"]["measured_bits"] <= measured["BFS+SKL"]["predicted_bits"] * 1.5
