"""SQLite schema for the provenance store.

The store keeps specifications, runs, run labels and data items in a single
SQLite database so that provenance queries can be answered long after the
workflow engine produced the run — the deployment scenario that motivates the
paper (labels are computed once at registration time and then compared at
query time without touching the graph).
"""

from __future__ import annotations

__all__ = [
    "SCHEMA_STATEMENTS",
    "SCHEMA_INDEX_STATEMENTS",
    "SCHEMA_MIGRATIONS",
    "SCHEMA_VERSION",
]

SCHEMA_VERSION = 4

SCHEMA_STATEMENTS: tuple[str, ...] = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS specifications (
        spec_id   INTEGER PRIMARY KEY AUTOINCREMENT,
        name      TEXT NOT NULL UNIQUE,
        document  TEXT NOT NULL,
        n_modules INTEGER NOT NULL,
        n_edges   INTEGER NOT NULL,
        created_at TEXT NOT NULL DEFAULT (datetime('now'))
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS runs (
        run_id    INTEGER PRIMARY KEY AUTOINCREMENT,
        spec_id   INTEGER NOT NULL REFERENCES specifications(spec_id) ON DELETE CASCADE,
        name      TEXT NOT NULL,
        document  TEXT NOT NULL,
        n_vertices INTEGER NOT NULL,
        n_edges    INTEGER NOT NULL,
        spec_scheme TEXT,
        created_at TEXT NOT NULL DEFAULT (datetime('now')),
        UNIQUE (spec_id, name)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS run_labels (
        run_id   INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
        module   TEXT NOT NULL,
        instance INTEGER NOT NULL,
        q1       INTEGER NOT NULL,
        q2       INTEGER NOT NULL,
        q3       INTEGER NOT NULL,
        skeleton TEXT NOT NULL,
        vertex_id INTEGER,
        PRIMARY KEY (run_id, module, instance)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS data_items (
        run_id   INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
        item_id  TEXT NOT NULL,
        producer_module   TEXT NOT NULL,
        producer_instance INTEGER NOT NULL,
        PRIMARY KEY (run_id, item_id)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS data_consumers (
        run_id   INTEGER NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
        item_id  TEXT NOT NULL,
        consumer_module   TEXT NOT NULL,
        consumer_instance INTEGER NOT NULL,
        PRIMARY KEY (run_id, item_id, consumer_module, consumer_instance)
    )
    """,
    # -- schema v4: the shard routing catalog -------------------------------
    # Placement overrides consulted *before* the CRC-32 spec hash and the
    # run-id modulo.  Only shard 0 of a sharded directory ever holds rows
    # (it is the catalog shard); the tables are created on every layout so
    # the v4 migration is a no-op reopen for single-file stores too.
    """
    CREATE TABLE IF NOT EXISTS shard_routing (
        spec_name TEXT PRIMARY KEY,
        shard     INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS run_routing (
        run_id INTEGER PRIMARY KEY,
        shard  INTEGER NOT NULL
    )
    """,
    # The migration journal: one row per in-flight rebalance, written
    # before the copy starts and deleted after the source rows are gone.
    # Crash recovery reads ``state`` to roll the migration back
    # (``copying``: drop the partial target copy) or forward (``flipped``:
    # finish deleting the source rows) — either way exactly one valid
    # placement survives.
    """
    CREATE TABLE IF NOT EXISTS shard_migrations (
        spec_name TEXT PRIMARY KEY,
        spec_id   INTEGER NOT NULL,
        source    INTEGER NOT NULL,
        target    INTEGER NOT NULL,
        state     TEXT NOT NULL,
        run_ids   TEXT NOT NULL
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_run_labels_run ON run_labels(run_id)
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_data_items_run ON data_items(run_id)
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_data_consumers_item ON data_consumers(run_id, item_id)
    """,
)

#: Schema v3: covering indexes for the SQL pushdown path.  A dependency
#: sweep on a range-labeled scheme (interval, tree-cover, chain) is the
#: conjunction ``q1 > A1 AND q2 > A2 AND q3 < A3`` (flipped upstream) plus
#: a module-restricted residual on the skeleton mask — both answerable
#: from these indexes alone, without touching the table.  They live in a
#: separate statement list because they cover ``vertex_id``, a column that
#: on a version-1 database only exists after :data:`SCHEMA_MIGRATIONS`
#: runs — so :func:`~repro.storage.database.initialize_schema` creates
#: them *after* the column migrations.
SCHEMA_INDEX_STATEMENTS: tuple[str, ...] = (
    """
    CREATE INDEX IF NOT EXISTS idx_run_labels_pushdown_range
        ON run_labels(run_id, q1, q2, q3, module, instance, vertex_id)
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_run_labels_pushdown_module
        ON run_labels(run_id, module, q1, q2, q3, instance, vertex_id)
    """,
)

#: columns added after schema version 1, applied with ``ALTER TABLE`` when an
#: existing database predates them.  ``vertex_id`` (version 2) persists each
#: run vertex's interned handle — the id assigned by the labeled run's
#: :class:`~repro.graphs.handles.VertexInterner` — so a store reopened in a
#: later session hands out the *same* handles as the in-memory run it came
#: from.  Legacy rows keep ``NULL`` and fall back to a deterministic
#: ``(module, instance)`` ordering.
SCHEMA_MIGRATIONS: tuple[tuple[str, str, str], ...] = (
    ("run_labels", "vertex_id", "INTEGER"),
)
