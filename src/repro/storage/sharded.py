"""The sharded provenance store: N SQLite shard files, one query surface.

A single :class:`~repro.storage.store.ProvenanceStore` funnels every
labeled run through one ``executemany`` on one SQLite file — fine for a
workstation, a wall for write-heavy traffic (SQLite serializes writers per
file).  :class:`ShardedProvenanceStore` removes that wall without changing
a single caller:

* **Routing** — every specification (and therefore all of its runs) lives
  in exactly one of N shard files, picked by a stable hash of the
  specification's identity (:func:`shard_of_spec`, CRC-32 of the unique
  name the store's ``spec_id`` denotes).  Keeping a spec's runs together
  means every cross-run operation touches exactly one shard, so the
  parallel executor's per-worker read-only connections keep working — each
  worker opens *its* shard file and nothing else.
* **Global identifiers** — run and spec ids are allocated by the sharded
  layer and written explicitly: global id ``(local - 1) * shards + shard
  + 1``, so ``shard = (id - 1) % shards`` recovers the owning shard with
  no catalog lookup, ids are dense across shards, and a one-shard store
  degenerates to the single-file numbering.  Because the shard files carry
  the *global* ids in their rows, every fetch helper
  (:func:`~repro.storage.store.load_label_arrays`, the engine caches, the
  persisted interner handles) works on a shard file unchanged.
* **Write path** — :meth:`add_labeled_runs` groups a batch by shard and
  commits each shard's sub-batch **concurrently** through the store's
  persistent worker pool (:mod:`repro.engine.pool`): one task per shard,
  one transaction per task, a private WAL-mode connection per task.  WAL
  keeps concurrent readers unblocked while a shard commits.  A per-shard
  lock serializes the writers of one shard (SQLite would anyway), so
  batches interleave safely with synchronous writes.
* **Read path** — everything else delegates to an inner per-shard
  :class:`~repro.storage.store.ProvenanceStore` (whose caches, engines and
  spec kernels work per shard exactly as before), routed by run id or
  specification name.  ``store.session()`` hands back a normal
  :class:`~repro.api.ProvenanceSession`; every declarative query —
  point, batch, sweep, cross-run — runs unchanged and answers
  bit-identically to a single-file store built from the same runs
  (hypothesis-checked in ``tests/test_sharded_properties.py``).

* **Routing subsystem** — placement is an override-able catalog
  (:mod:`repro.storage.routing`, schema v4): the persisted routing table
  is consulted *before* the CRC-32 hash and the id arithmetic, so
  :meth:`rebalance` can migrate a hot spec's runs onto a dedicated shard
  online (copy → flip → delete, crash-recoverable) while unlisted specs
  keep hashing exactly as before.  :meth:`replicate` attaches read-only
  replica copies (:mod:`repro.storage.replicas`) the cross-run executor
  round-robins its worker connections over.

The store is strictly file-backed (``:memory:`` cannot be sharded); the
shard count is fixed at creation and recovered from the directory layout
on reopen.
"""

from __future__ import annotations

import sqlite3
import threading
import zlib
from collections.abc import Iterable, Sequence
from pathlib import Path
from typing import Optional, Union

from repro.engine.pool import WorkerPoolOwner
from repro.exceptions import StorageError
from repro.skeleton.skl import SkeletonLabeledRun
from repro.storage.database import connect
from repro.storage.replicas import ReplicaManager
from repro.storage.routing import RoutingTable, migrate_spec, recover_migrations
from repro.storage.schema import SCHEMA_VERSION
from repro.storage.store import (
    ProvenanceStore,
    RunLabelArrays,
    STORED_RUN_CACHE_LIMIT,
    insert_labeled_run,
    insert_specification,
    warn_deprecated_query,
)
from repro.workflow.specification import WorkflowSpecification

__all__ = [
    "ShardedProvenanceStore",
    "open_store",
    "shard_of_spec",
    "shard_of_run",
    "DEFAULT_SHARDS",
    "MAX_SHARDS",
    "SHARD_FILE_FORMAT",
]

PathLike = Union[str, Path]

#: shard count when the caller does not pin one at creation
DEFAULT_SHARDS = 4

#: upper bound on the shard count — beyond this the per-shard files stop
#: buying write parallelism (cores bound it) and only multiply open files
MAX_SHARDS = 64

#: shard file naming inside the store directory; the shard count of an
#: existing store is recovered by counting these files
SHARD_FILE_FORMAT = "shard-{:02d}.db"


def _stored_schema_version(shard_file: Path) -> str:
    """The ``schema_version`` recorded in one shard file (for error messages)."""
    try:
        connection = sqlite3.connect(str(shard_file))
        try:
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        finally:
            connection.close()
    except sqlite3.Error:
        return "unknown"
    return str(row[0]) if row is not None else "unknown"


def shard_of_spec(name: str, shards: int) -> int:
    """The shard owning specification *name* (stable across sessions/hosts).

    CRC-32 of the UTF-8 name: deterministic, platform-independent, and
    computed from the one identity a ``spec_id`` denotes (names are unique
    in the store), so the routing never depends on insertion order.
    """
    return zlib.crc32(name.encode("utf-8")) % shards


def shard_of_run(run_id: int, shards: int) -> int:
    """The shard owning *run_id* (inverts the global id encoding)."""
    return (int(run_id) - 1) % shards


class ShardedProvenanceStore(WorkerPoolOwner):
    """Workflow provenance sharded across N SQLite files, one query surface.

    Parameters
    ----------
    path:
        Directory holding the shard files (created if missing).  In-memory
        stores cannot be sharded.
    shards:
        Shard count for a **new** store (default :data:`DEFAULT_SHARDS`).
        Reopening an existing store recovers the count from the directory;
        passing a different one raises.
    """

    def __init__(self, path: PathLike, shards: Optional[int] = None) -> None:
        if str(path) == ":memory:":
            raise StorageError(
                "a sharded store needs real shard files; use ProvenanceStore "
                "for an in-memory database"
            )
        directory = Path(path)
        if directory.exists() and not directory.is_dir():
            raise StorageError(
                f"{directory} is a file, not a shard directory; a sharded "
                "store cannot be layered over a single-file database "
                "(re-ingest the runs into a fresh --shards directory instead)"
            )
        existing = sorted(directory.glob("shard-*.db")) if directory.exists() else []
        if existing:
            found = len(existing)
            if shards is not None and int(shards) != found:
                stored_version = _stored_schema_version(existing[0])
                raise StorageError(
                    f"store at {directory} has {found} shards "
                    f"(schema v{stored_version}); cannot reopen it with "
                    f"shards={shards} — pass shards={found} or drop --shards "
                    "to recover the stored count"
                )
            shards = found
        else:
            shards = DEFAULT_SHARDS if shards is None else int(shards)
        if not 1 <= shards <= MAX_SHARDS:
            raise StorageError(
                f"shard count must be between 1 and {MAX_SHARDS}, got {shards}"
            )
        directory.mkdir(parents=True, exist_ok=True)
        self.path = directory
        self.shard_count = int(shards)
        self._shard_paths = [
            directory / SHARD_FILE_FORMAT.format(index) for index in range(shards)
        ]
        self._shard_index_of_path = {
            str(shard_path): index
            for index, shard_path in enumerate(self._shard_paths)
        }
        # one writer lock per shard: serializes this process's writers of a
        # shard (batched ingest tasks, synchronous adds, deletes) so id
        # allocation never races; cross-process safety is SQLite's lock
        self._locks = [threading.Lock() for _ in range(shards)]
        self._stores = [
            ProvenanceStore(shard_path, journal_mode="WAL")
            for shard_path in self._shard_paths
        ]
        self._session = None
        self._closed = False
        # degradation events noted against the sharded layer itself (the
        # cross-run executor holds this store); shard-local events are
        # aggregated in from the shard stores by cache_stats
        self._degraded: dict[str, int] = {}
        # the routing subsystem: the persisted placement catalog (held in
        # shard 0), hot-spec read replicas, and the migration serializer —
        # recovery then resolves any migration a crash left half-done
        self._routing = RoutingTable(self._shard_paths[0])
        self._replicas = ReplicaManager(directory, self._shard_paths)
        self._migration_lock = threading.Lock()
        recover_migrations(self)

    # ------------------------------------------------------------------
    # routing (catalog overrides first, then the hash / id arithmetic)
    # ------------------------------------------------------------------
    def _routed_shard_of_spec(self, name: str) -> int:
        """The shard owning spec *name*: routing override, else CRC-32 hash."""
        routed = self._routing.shard_of_spec(name)
        if routed is not None:
            return routed
        return shard_of_spec(name, self.shard_count)

    def _shard_of_run(self, run_id: int) -> int:
        routed = self._routing.shard_of_run(run_id)
        if routed is not None:
            return routed
        return shard_of_run(run_id, self.shard_count)

    def _store_of_run(self, run_id: int) -> ProvenanceStore:
        return self._stores[self._shard_of_run(run_id)]

    def _store_of_spec(self, name: str) -> ProvenanceStore:
        return self._stores[self._routed_shard_of_spec(name)]

    def shard_path_of(self, run_id: int) -> Path:
        """The shard file holding *run_id* (what parallel workers open)."""
        return self._shard_paths[self._shard_of_run(run_id)]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

    def close(self) -> None:
        """Close the worker pools and every shard connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.close_pools()
        self._routing.close()
        self._replicas.close()
        for store in self._stores:
            store.close()

    def __enter__(self) -> "ShardedProvenanceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def pool_owner_description(self) -> str:
        return f"ShardedProvenanceStore({str(self.path)!r})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedProvenanceStore(path={str(self.path)!r}, "
            f"shards={self.shard_count})"
        )

    # ------------------------------------------------------------------
    # the parallel write path (the ingest service)
    # ------------------------------------------------------------------
    def _next_id(self, connection: sqlite3.Connection, table: str, column: str, shard: int) -> int:
        """Allocate the next shard-encoded global id for *table*.

        Monotonic per shard and congruent to ``shard + 1`` modulo the
        shard count, which is what :func:`shard_of_run` inverts.  The
        high-water mark comes from ``sqlite_sequence`` (both tables are
        ``AUTOINCREMENT``, so SQLite maintains it even for explicit-id
        inserts), not from ``MAX()`` — deleting the newest run must never
        hand its id to the next one.

        The congruence is re-derived from the high-water mark rather than
        assumed: a rebalanced shard holds *migrated* rows whose ids encode
        their original shard, so ``highest`` may sit in another shard's
        congruence class.  Rounding up to this shard's own class keeps
        every freshly allocated id both unique across shards (each shard
        only ever mints ids in its class; migrated ids stay burned into
        their source shard's sequence) and arithmetic-routable.
        """
        row = connection.execute(
            "SELECT seq FROM sqlite_sequence WHERE name = ?", (table,)
        ).fetchone()
        highest = row[0] if row is not None else None
        if highest is None:
            row = connection.execute(f"SELECT MAX({column}) FROM {table}").fetchone()
            highest = row[0]
        if highest is None:
            return shard + 1
        candidate = int(highest) + 1
        return candidate + (shard - (candidate - 1)) % self.shard_count

    def _insert_specification(
        self, connection: sqlite3.Connection, shard: int, spec: WorkflowSpecification
    ) -> int:
        return insert_specification(
            connection,
            spec,
            spec_id=self._next_id(connection, "specifications", "spec_id", shard),
        )

    def _ingest_shard_batch(
        self, shard: int, batch: Sequence[SkeletonLabeledRun]
    ) -> list[int]:
        """Commit one shard's sub-batch in a single transaction.

        Runs on a pool worker over a **private** WAL connection, so shard
        batches commit concurrently with each other and with readers; the
        per-shard lock keeps this process's writers of the shard serial.
        """
        with self._locks[shard]:
            self._require_open()
            connection = connect(self._shard_paths[shard], journal_mode="WAL")
            # manual transaction control: the write lock must be taken
            # BEFORE the id-allocating sqlite_sequence reads, or two
            # writers (a second store instance, another process) could
            # both read the same high-water mark and collide on the id
            connection.isolation_level = None
            current: Optional[SkeletonLabeledRun] = None
            spec_ids: dict[str, int] = {}
            try:
                connection.execute("BEGIN IMMEDIATE")
                try:
                    run_ids: list[int] = []
                    for labeled in batch:
                        current = labeled
                        spec = labeled.run.specification
                        spec_id = spec_ids.get(spec.name)
                        if spec_id is None:
                            # resolved once per spec per batch, not per run
                            spec_id = spec_ids[spec.name] = (
                                self._insert_specification(connection, shard, spec)
                            )
                        run_ids.append(
                            insert_labeled_run(
                                connection,
                                labeled,
                                spec_id,
                                run_id=self._next_id(connection, "runs", "run_id", shard),
                            )
                        )
                    connection.execute("COMMIT")
                    self._note_shard_write(shard)
                    return run_ids
                except BaseException:
                    connection.execute("ROLLBACK")
                    raise
            except sqlite3.IntegrityError as exc:
                run = current.run if current is not None else batch[0].run
                raise StorageError(
                    f"run {run.name!r} is already stored for specification "
                    f"{run.specification.name!r}; the whole shard-{shard} "
                    f"sub-batch was rolled back"
                ) from exc
            finally:
                connection.close()

    def add_labeled_runs(
        self, labeled_runs: Iterable[SkeletonLabeledRun]
    ) -> list[int]:
        """Store many labeled runs, committing per shard concurrently.

        The batch is grouped by owning shard; each shard's sub-batch is one
        worker-pool task holding one transaction, so N shards absorb up to
        N concurrent commits.  Returns the global run ids **in input
        order**.  A failing shard rolls back its whole sub-batch (other
        shards' commits stand) and the first error is re-raised after every
        task finished.
        """
        self._require_open()
        runs = list(labeled_runs)
        if not runs:
            return []
        groups: dict[int, list[int]] = {}
        for position, labeled in enumerate(runs):
            shard = self._routed_shard_of_spec(labeled.run.specification.name)
            groups.setdefault(shard, []).append(position)
        if len(groups) == 1:
            # one shard: a pool round trip buys nothing, commit inline
            ((shard, positions),) = groups.items()
            run_ids = self._ingest_shard_batch(shard, runs)
            return list(run_ids)
        pool = self.worker_pool("thread")
        futures = {
            shard: pool.submit(
                self._ingest_shard_batch,
                shard,
                [runs[position] for position in positions],
            )
            for shard, positions in groups.items()
        }
        ids: list[Optional[int]] = [None] * len(runs)
        first_error: Optional[BaseException] = None
        for shard, positions in groups.items():
            try:
                shard_ids = futures[shard].result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
                continue
            if len(shard_ids) != len(positions):  # pragma: no cover - invariant
                raise StorageError(
                    f"shard {shard} returned {len(shard_ids)} ids for "
                    f"{len(positions)} runs; the input-order id guarantee "
                    "would be violated"
                )
            for position, run_id in zip(positions, shard_ids):
                ids[position] = run_id
        if first_error is not None:
            raise first_error
        # every slot is filled once no shard failed (checked above); the
        # cast keeps the input-order guarantee explicit
        return [run_id for run_id in ids if run_id is not None]

    def add_labeled_run(self, labeled: SkeletonLabeledRun) -> int:
        """Store one labeled run (routed to its spec's shard); returns its id."""
        return self.add_labeled_runs([labeled])[0]

    def add_specification(self, spec: WorkflowSpecification) -> int:
        """Store *spec* in its shard (idempotent by name); returns its id."""
        self._require_open()
        shard = self._routed_shard_of_spec(spec.name)
        connection = self._stores[shard]._connection
        with self._locks[shard]:
            # BEGIN IMMEDIATE before the id-allocating read, like the
            # ingest path: the write lock, not the per-instance Python
            # lock, is what serializes concurrent store instances
            connection.execute("BEGIN IMMEDIATE")
            try:
                spec_id = self._insert_specification(connection, shard, spec)
                connection.execute("COMMIT")
                self._note_shard_write(shard)
                return spec_id
            except BaseException:
                connection.execute("ROLLBACK")
                raise

    # ------------------------------------------------------------------
    # the routing subsystem: rebalance, replicas, catalog introspection
    # ------------------------------------------------------------------
    def _note_shard_write(self, shard: int) -> None:
        """Bump the shard's update version: its replicas are now stale."""
        self._replicas.note_write(shard)

    def _shard_run_counts(self) -> list[int]:
        """Stored run count per shard (what ``rebalance`` auto-picks by)."""
        return [
            int(
                store._connection.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
            )
            for store in self._stores
        ]

    def rebalance(self, specification: str, shard: Optional[int] = None) -> dict:
        """Migrate *specification*'s runs onto *shard* (``None`` = least loaded).

        The online maintenance path of :mod:`repro.storage.routing`: rows
        are copied id-for-id under the source shard's write lock, the
        routing catalog flips in one transaction, then the source rows are
        deleted — readers serve bit-identical answers throughout, and a
        crash anywhere recovers to exactly one valid placement.
        """
        return migrate_spec(self, specification, shard)

    def split(self, specification: str) -> dict:
        """Alias of :meth:`rebalance` with the target auto-picked."""
        return self.rebalance(specification, None)

    def replicate(self, specification: str, count: int) -> list[str]:
        """Attach *count* read replicas of the shard owning *specification*.

        Returns the replica file paths.  The cross-run executor round-robins
        its per-worker read-only connections over ``[primary] + replicas``;
        any write into the shard invalidates the set (readers fall back to
        the primary) and the next rotation refreshes the copies.
        """
        self._require_open()
        # raises StorageError if the spec is unknown, before any copying
        self.get_specification(specification)
        return self._replicas.replicate(
            self._routed_shard_of_spec(specification), count
        )

    def replica_rotation(self, db_path) -> list[str]:
        """``[primary] + fresh replicas`` for one shard file (executor hook)."""
        path = str(db_path)
        shard = self._shard_index_of_path.get(path)
        if shard is None:
            return [path]
        return [path, *self._replicas.rotation(shard)]

    def read_fan_of(self, specification: str) -> int:
        """How many equivalent files can serve reads of *specification*.

        ``1`` without replicas; the planner uses a wider fan to justify
        parallel workers even where the auto-sizing would stay sequential.
        """
        shard = self._routed_shard_of_spec(specification)
        return 1 + len(self._replicas.rotation(shard))

    def routing_table(self) -> dict:
        """A snapshot of the routing catalog (CLI ``routing`` / wire dump)."""
        overrides = self._routing.entries()
        return {
            "shards": self.shard_count,
            "specs": {
                name: {
                    "shard": shard,
                    "hash_shard": shard_of_spec(name, self.shard_count),
                }
                for name, shard in sorted(overrides.items())
            },
            "routed_runs": self._routing.overridden_run_count,
            "replicas": {
                str(shard): count
                for shard, count in sorted(self._replicas.counts().items())
            },
        }

    # ------------------------------------------------------------------
    # specifications and runs (read side: routed delegation)
    # ------------------------------------------------------------------
    def get_specification(self, name: str) -> WorkflowSpecification:
        """Load the specification called *name* from its shard."""
        return self._store_of_spec(name).get_specification(name)

    def list_specifications(self) -> list[dict]:
        """Summaries of every stored specification, across all shards."""
        rows = [
            row for store in self._stores for row in store.list_specifications()
        ]
        rows.sort(key=lambda row: row["spec_id"])
        return rows

    def list_runs(self, specification: Optional[str] = None) -> list[dict]:
        """Summaries of stored runs; a named specification reads one shard."""
        if specification is not None:
            return self._store_of_spec(specification).list_runs(specification)
        rows = [row for store in self._stores for row in store.list_runs()]
        rows.sort(key=lambda row: row["run_id"])
        return rows

    def get_run(self, run_id: int):
        """Load the run graph with identifier *run_id*."""
        return self._store_of_run(run_id).get_run(run_id)

    def delete_run(self, run_id: int) -> None:
        """Remove a run and all dependent rows from its shard."""
        shard = self._shard_of_run(run_id)
        with self._locks[shard]:
            self._stores[shard].delete_run(run_id)
            self._note_shard_write(shard)
        self._routing.forget_run(run_id)

    def update_run_labels(self, run_id: int, labeled) -> int:
        """Persist a repaired label set into the run's owning shard.

        Routed form of :meth:`ProvenanceStore.update_run_labels`: the
        targeted ``UPDATE`` statements run under the shard's write lock, so
        a monitoring loop repairing one run never blocks ingest into the
        other shards.
        """
        shard = self._shard_of_run(run_id)
        with self._locks[shard]:
            count = self._stores[shard].update_run_labels(run_id, labeled)
            self._note_shard_write(shard)
            return count

    # ------------------------------------------------------------------
    # labels and engines
    # ------------------------------------------------------------------
    def label_of(self, run_id: int, module: str, instance: int):
        """The stored run label of one module execution."""
        return self._store_of_run(run_id).label_of(run_id, module, instance)

    def labels_of_many(self, run_id: int, executions):
        """The stored labels of many executions, batched over the shard."""
        return self._store_of_run(run_id).labels_of_many(run_id, executions)

    def all_labels_of(self, run_id: int):
        """Every stored label of a run, in one shard round trip."""
        return self._store_of_run(run_id).all_labels_of(run_id)

    def spec_kernel(self, run_id: int):
        """The shard's compiled per-(spec, scheme) fall-through kernel."""
        return self._store_of_run(run_id).spec_kernel(run_id)

    def query_engine(self, run_id: int):
        """The shard's cached batch engine over the stored run."""
        return self._store_of_run(run_id).query_engine(run_id)

    def has_compiled_engine(self, run_id: int) -> bool:
        """Whether *run_id*'s shard already holds its warm compiled engine."""
        return self._store_of_run(run_id).has_compiled_engine(run_id)

    def run_label_arrays(self, run_id: int) -> RunLabelArrays:
        """One run's streamed label columns (rows carry the global run id)."""
        return self._store_of_run(run_id).run_label_arrays(run_id)

    def run_label_arrays_many(
        self, run_ids: Sequence[int]
    ) -> dict[int, RunLabelArrays]:
        """Many runs' label columns, one chunked ordered scan per shard."""
        by_shard: dict[int, list[int]] = {}
        for run_id in run_ids:
            by_shard.setdefault(self._shard_of_run(run_id), []).append(run_id)
        arrays: dict[int, RunLabelArrays] = {}
        for shard, shard_run_ids in by_shard.items():
            arrays.update(self._stores[shard].run_label_arrays_many(shard_run_ids))
        return arrays

    # ------------------------------------------------------------------
    # the session surface (private plan entry points + deprecated shims)
    # ------------------------------------------------------------------
    def session(self):
        """The sharded store's :class:`~repro.api.ProvenanceSession`."""
        self._require_open()
        if self._session is None:
            from repro.api.session import ProvenanceSession

            self._session = ProvenanceSession(self)
        return self._session

    def _reaches(self, run_id: int, source, target) -> bool:
        return self._store_of_run(run_id)._reaches(run_id, source, target)

    def _reaches_batch(self, run_id: int, pairs) -> list[bool]:
        return self._store_of_run(run_id)._reaches_batch(run_id, pairs)

    def _dependency_sweep(self, run_id: int, execution, *, downstream: bool):
        return self._store_of_run(run_id)._dependency_sweep(
            run_id, execution, downstream=downstream
        )

    def _dependency_sweep_pushdown(self, run_id: int, execution, *, downstream: bool):
        return self._store_of_run(run_id)._dependency_sweep_pushdown(
            run_id, execution, downstream=downstream
        )

    def pushdown_profile(self, run_id: int):
        """``(spec_scheme, pushdown-capable, n_vertices)`` from the run's shard."""
        return self._store_of_run(run_id).pushdown_profile(run_id)

    def read_connection_for(self, run_id: int):
        """The owning shard's connection — pushdown scans run shard-locally."""
        return self._store_of_run(run_id).read_connection_for(run_id)

    def _note_sweep_path(
        self, scheme: str, *, pushdown: bool, run_id: Optional[int] = None
    ) -> None:
        # Sweeps executed by the sharded layer itself (the parallel
        # cross-run executor) are attributed to the shard that actually
        # served the run, so per-shard skew stays visible in cache_stats.
        # Only sweeps with no run context fall back to shard 0.
        shard_store = (
            self._store_of_run(run_id) if run_id is not None else self._stores[0]
        )
        shard_store._note_sweep_path(scheme, pushdown=pushdown)

    def note_degraded(self, kind: str) -> None:
        """Count one graceful-degradation event (see the single store's doc)."""
        self._degraded[kind] = self._degraded.get(kind, 0) + 1

    def _deprecated(self, old: str, query: str) -> None:
        # one hop deeper than the shared helper's default (shim -> here -> warn)
        warn_deprecated_query("ShardedProvenanceStore", old, query, stacklevel=4)

    def reaches(self, run_id: int, source, target) -> bool:
        """Deprecated shim; use a PointQuery through ``session()``."""
        self._deprecated("reaches", "PointQuery")
        return self._reaches(run_id, source, target)

    def reaches_batch(self, run_id: int, pairs) -> list[bool]:
        """Deprecated shim; use a BatchQuery through ``session()``."""
        self._deprecated("reaches_batch", "BatchQuery")
        return self._reaches_batch(run_id, pairs)

    def downstream_of(self, run_id: int, execution):
        """Deprecated shim; use a DownstreamQuery through ``session()``."""
        self._deprecated("downstream_of", "DownstreamQuery")
        return self._dependency_sweep(run_id, execution, downstream=True)

    def upstream_of(self, run_id: int, execution):
        """Deprecated shim; use an UpstreamQuery through ``session()``."""
        self._deprecated("upstream_of", "UpstreamQuery")
        return self._dependency_sweep(run_id, execution, downstream=False)

    # ------------------------------------------------------------------
    # data provenance (routed by run id)
    # ------------------------------------------------------------------
    def add_dataflow(self, run_id: int, dataflow) -> int:
        """Store the data items of *dataflow* in the run's shard."""
        shard = self._shard_of_run(run_id)
        with self._locks[shard]:
            count = self._stores[shard].add_dataflow(run_id, dataflow)
            self._note_shard_write(shard)
            return count

    def data_depends_on_data(self, run_id: int, item_id: str, other_id: str) -> bool:
        """Does stored data item *item_id* depend on *other_id*?"""
        return self._store_of_run(run_id).data_depends_on_data(
            run_id, item_id, other_id
        )

    def data_depends_on_module(self, run_id: int, item_id: str, module) -> bool:
        """Does stored data item *item_id* depend on module execution *module*?"""
        return self._store_of_run(run_id).data_depends_on_module(
            run_id, item_id, module
        )

    def list_data_items(self, run_id: int) -> list[str]:
        """Identifiers of every data item stored for *run_id*."""
        return self._store_of_run(run_id).list_data_items(run_id)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def _shard_file_bytes(self, shard: int) -> int:
        """On-disk bytes of one shard (database + WAL + shared-memory index)."""
        base = str(self._shard_paths[shard])
        total = 0
        for suffix in ("", "-wal", "-shm"):
            candidate = Path(base + suffix)
            if candidate.exists():
                total += candidate.stat().st_size
        return total

    def cache_stats(self) -> dict:
        """Cache occupancy and eviction counters aggregated across shards.

        The numeric counters of every shard store are summed (the session
        surfaces them unchanged); ``shards`` carries the **skew table** —
        per-shard spec count, run count, on-disk bytes, sweep hit counters,
        attached replicas and routed (override-placed) specs — so an
        operator can see which shard to split; the per-mode ``pools``
        report the sharded layer's own state.
        """
        totals = {
            "stored_runs_cached": 0,
            "engines_cached": 0,
            "spec_kernels_cached": 0,
            "evictions": 0,
        }
        pushdown: dict[str, dict[str, int]] = {"sql": {}, "kernel": {}}
        degraded = dict(self._degraded)
        overrides = self._routing.entries()
        routed_of: dict[int, int] = {}
        for shard in overrides.values():
            routed_of[shard] = routed_of.get(shard, 0) + 1
        replica_counts = self._replicas.counts()
        per_shard: list[dict] = []
        for index, store in enumerate(self._stores):
            shard_stats = store.cache_stats()
            for key in totals:
                totals[key] += int(shard_stats.get(key, 0))
            sweeps = {"sql": 0, "kernel": 0}
            for path, counts in shard_stats.get("pushdown", {}).items():
                merged = pushdown.setdefault(path, {})
                for scheme, count in counts.items():
                    merged[scheme] = merged.get(scheme, 0) + int(count)
                if path in sweeps:
                    sweeps[path] = sum(int(count) for count in counts.values())
            for kind, count in shard_stats.get("degraded", {}).items():
                degraded[kind] = degraded.get(kind, 0) + int(count)
            connection = store._connection
            per_shard.append(
                {
                    "shard": index,
                    "file": self._shard_paths[index].name,
                    "specs": int(
                        connection.execute(
                            "SELECT COUNT(*) FROM specifications"
                        ).fetchone()[0]
                    ),
                    "runs": int(
                        connection.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
                    ),
                    "file_bytes": self._shard_file_bytes(index),
                    "sweeps": sweeps,
                    "replicas": int(replica_counts.get(index, 0)),
                    "routed_specs": int(routed_of.get(index, 0)),
                }
            )
        stats = {
            "shards": {"count": self.shard_count, "per_shard": per_shard},
            **totals,
            "limit": STORED_RUN_CACHE_LIMIT * self.shard_count,
            "pushdown": pushdown,
            "degraded": degraded,
        }
        pools = self.pool_stats()
        if pools:
            stats["pools"] = pools
        return stats

    def statistics(self) -> dict:
        """Row counts per table, summed across every shard."""
        totals: dict[str, int] = {}
        for store in self._stores:
            for table, count in store.statistics().items():
                totals[table] = totals.get(table, 0) + count
        return totals


def open_store(
    path: PathLike, shards: Optional[int] = None
) -> Union[ProvenanceStore, ShardedProvenanceStore]:
    """Open the right store for *path*: a sharded directory or a single file.

    An explicit *shards* (or an existing directory already holding
    ``shard-NN.db`` files) selects the sharded store; anything else opens
    the classic single-file :class:`~repro.storage.store.ProvenanceStore`.
    A pre-existing directory **without** shard files is refused rather
    than silently populated — a typo'd path must fail loudly, not gain
    four empty databases.  This is what the CLI routes every
    ``--database`` argument through, so sharded stores work with every
    query command transparently.
    """
    if shards is not None:
        return ShardedProvenanceStore(path, shards)
    if str(path) != ":memory:" and Path(path).is_dir():
        if not any(Path(path).glob("shard-*.db")):
            raise StorageError(
                f"{path} is a directory without shard files; pass shards= "
                "(CLI: --shards N) to create a sharded store there, or "
                "point at a database file"
            )
        return ShardedProvenanceStore(path)
    return ProvenanceStore(path)
