"""The SQLite-backed provenance store.

:class:`ProvenanceStore` persists specifications, labeled runs and data-item
assignments, and answers reachability and dependency queries straight from
the stored labels.  The storage layout mirrors the paper's amortization
argument (Section 7): skeleton labels are stored once per specification
(rebuilt on demand from the specification document), while every run vertex
stores only its three context coordinates and the name of its origin module —
``3 log nR + log nG`` bits of information per vertex.

Two query paths are offered.  The per-pair path (:meth:`ProvenanceStore.reaches`)
issues one label SELECT per endpoint and is fine for interactive use.  The
batched path (:meth:`ProvenanceStore.reaches_batch`,
:meth:`ProvenanceStore.labels_of_many`, :meth:`ProvenanceStore.downstream_of`,
:meth:`ProvenanceStore.upstream_of`) resolves all labels behind a query set
with a single row-value ``IN`` SELECT (chunked at :data:`LABEL_FETCH_CHUNK`,
guarded against SQLite's 999-host-parameter limit) and evaluates the
Algorithm 3 predicate batch-wise.

For replayed workloads the store additionally keeps, per ``(run_id,
spec_scheme)``, a cached skeleton-labeled view of the run whose labels are
fetched from SQL **at most once** and whose compiled
:class:`~repro.engine.QueryEngine` kernel is reused across calls: repeated
:meth:`~ProvenanceStore.reaches_batch` /
:meth:`~ProvenanceStore.downstream_of` / :meth:`~ProvenanceStore.upstream_of`
calls pay neither label re-resolution nor SQL round trips.  The interner
behind those handles is persisted with the run (the ``vertex_id`` column),
so handles are stable across store sessions; :meth:`ProvenanceStore.query_engine`
exposes the cached engine for handle-native callers (the CLI's
``query-batch`` interns its whole input file once through it).
"""

from __future__ import annotations

import sqlite3
import warnings
from array import array
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.engine.kernels import SpecKernel, compile_spec_kernel
from repro.engine.pool import WorkerPoolOwner
from repro.engine.query import QueryEngine
from repro.exceptions import StorageError
from repro.faults import fault_point
from repro.labeling.base import VertexHandleAPI
from repro.labeling.registry import get_scheme
from repro.provenance.data import DataFlow
from repro.skeleton.labels import RunLabel
from repro.skeleton.skl import (
    SkeletonLabeledRun,
    skeleton_predicate,
    skeleton_predicate_many,
)
from repro.storage.database import (
    LABEL_FETCH_CHUNK,
    SQLITE_MAX_VARIABLE_NUMBER,
    connect,
    initialize_schema,
    iter_value_chunks,
    row_value_chunk,
)
from repro.storage.pushdown import pushdown_sweep, reachable_modules, scheme_supports_pushdown
from repro.workflow.run import RunVertex, WorkflowRun
from repro.workflow.serialization import (
    run_from_json,
    run_to_json,
    specification_from_json,
    specification_to_json,
)
from repro.workflow.specification import WorkflowSpecification

try:  # numpy accelerates the streaming label arrays but is strictly optional
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = [
    "ProvenanceStore",
    "RunLabelArrays",
    "LABEL_FETCH_CHUNK",
    "SQLITE_MAX_VARIABLE_NUMBER",
    "row_value_chunk",
    "iter_value_chunks",
    "load_label_arrays",
    "insert_specification",
    "insert_labeled_run",
    "warn_deprecated_query",
]

PathLike = Union[str, Path]

#: how many stored runs keep their label cache + compiled engine resident at
#: once; beyond this the least-recently-queried run is evicted (its labels
#: and kernel are rebuilt from SQL on the next query), bounding store memory
#: on workloads that sweep across many runs
STORED_RUN_CACHE_LIMIT = 16


@dataclass(frozen=True)
class RunLabelArrays:
    """One stored run's label columns as parallel arrays, in handle order.

    This is the streaming form the cross-run sweep consumes: no
    :class:`~repro.skeleton.labels.RunLabel` objects, no interner, no spec
    label resolution — just the three context-coordinate columns (numpy
    ``int64`` arrays when numpy is installed, ``array('q')`` otherwise),
    the parallel origin-module names, and the ``(module, instance)``
    executions for reporting.  Row order follows the persisted interner
    (the ``vertex_id`` column), like every other handle surface.
    """

    run_id: int
    executions: list[tuple[str, int]]
    q1: Sequence[int]
    q2: Sequence[int]
    q3: Sequence[int]
    origins: list[str]

    def __len__(self) -> int:
        return len(self.executions)


def load_label_arrays(
    connection: sqlite3.Connection, run_ids: Sequence[int]
) -> dict[int, RunLabelArrays]:
    """Fetch many runs' label columns over *connection*, one scan per chunk.

    The connection-agnostic core of
    :meth:`ProvenanceStore.run_label_arrays_many`: the parallel cross-run
    executor calls it from worker threads/processes over **their own**
    read-only connections to the store file, so the dominant per-run cost
    (the SQL fetch plus the column transpose) parallelizes instead of
    serializing on the store's single connection.  Each chunk of runs is
    one ``run_id IN`` query ordered by ``(run_id, vertex_id)``, sliced at
    the run boundaries; with numpy the per-run coordinate arrays are
    zero-copy views into one chunk-wide array.  Run ids without rows yield
    empty arrays — existence policy is the caller's.
    """
    fault_point("store.load_label_arrays")
    distinct: list[int] = []
    seen: set[int] = set()
    for run_id in run_ids:
        run_id = int(run_id)
        if run_id not in seen:
            seen.add(run_id)
            distinct.append(run_id)
    arrays: dict[int, RunLabelArrays] = {}
    for chunk, placeholders in iter_value_chunks(distinct, columns_per_row=1):
        cursor = connection.execute(
            # the skeleton column is not fetched: the store persists the
            # origin module name there (see add_labeled_run), so the
            # module column already carries every origin a sweep needs
            "SELECT run_id, module, instance, q1, q2, q3 FROM run_labels "
            f"WHERE run_id IN ({placeholders}) "
            "ORDER BY run_id, (vertex_id IS NULL), vertex_id, module, instance",
            chunk,
        )
        # plain tuples instead of sqlite3.Row: this path exists to
        # stream, so skip the per-row wrapper the rest of the store wants
        cursor.row_factory = None
        rows = cursor.fetchall()
        if rows:
            # one C-level transpose per chunk; the column tuples feed the
            # array constructors without a Python-level row visit each
            rid_col, modules, instances, q1_col, q2_col, q3_col = zip(*rows)
        else:
            rid_col = modules = instances = q1_col = q2_col = q3_col = ()
        count = len(rows)
        if _np is not None:
            rid = _np.fromiter(rid_col, dtype=_np.int64, count=count)
            q1_all = _np.fromiter(q1_col, dtype=_np.int64, count=count)
            q2_all = _np.fromiter(q2_col, dtype=_np.int64, count=count)
            q3_all = _np.fromiter(q3_col, dtype=_np.int64, count=count)

            def _bounds(run_id: int) -> tuple[int, int]:
                return (
                    int(_np.searchsorted(rid, run_id, side="left")),
                    int(_np.searchsorted(rid, run_id, side="right")),
                )

            def _coords(lo: int, hi: int):
                # slices of the chunk-wide arrays: zero-copy views
                return q1_all[lo:hi], q2_all[lo:hi], q3_all[lo:hi]

        else:
            from bisect import bisect_left, bisect_right

            rid_list = list(rid_col)
            q1_arr = array("q", q1_col)
            q2_arr = array("q", q2_col)
            q3_arr = array("q", q3_col)

            def _bounds(run_id: int) -> tuple[int, int]:
                return (
                    bisect_left(rid_list, run_id),
                    bisect_right(rid_list, run_id),
                )

            def _coords(lo: int, hi: int):
                return q1_arr[lo:hi], q2_arr[lo:hi], q3_arr[lo:hi]

        for run_id in chunk:
            lo, hi = _bounds(run_id)
            q1, q2, q3 = _coords(lo, hi)
            arrays[run_id] = RunLabelArrays(
                run_id=run_id,
                executions=list(zip(modules[lo:hi], instances[lo:hi])),
                q1=q1,
                q2=q2,
                q3=q3,
                origins=list(modules[lo:hi]),
            )
    return arrays


def insert_specification(
    connection: sqlite3.Connection,
    spec: WorkflowSpecification,
    *,
    spec_id: Optional[int] = None,
) -> int:
    """Insert *spec* over *connection* (idempotent by name); returns its id.

    The connection-agnostic core of
    :meth:`ProvenanceStore.add_specification`, shared with the sharded
    store's ingest workers (which write over their own per-shard
    connections).  An explicit *spec_id* lets the sharded layer allocate
    globally unique, shard-encoded identifiers instead of the table's
    autoincrement sequence.  Transaction management is the caller's.
    """
    existing = connection.execute(
        "SELECT spec_id FROM specifications WHERE name = ?", (spec.name,)
    ).fetchone()
    if existing is not None:
        return int(existing[0])
    cursor = connection.execute(
        "INSERT INTO specifications (spec_id, name, document, n_modules, n_edges) "
        "VALUES (?, ?, ?, ?, ?)",
        (
            spec_id,
            spec.name,
            specification_to_json(spec),
            spec.vertex_count,
            spec.edge_count,
        ),
    )
    return int(cursor.lastrowid)


def insert_labeled_run(
    connection: sqlite3.Connection,
    labeled: SkeletonLabeledRun,
    spec_id: int,
    *,
    run_id: Optional[int] = None,
) -> int:
    """Insert one labeled run's row and label set over *connection*.

    The connection-agnostic core of :meth:`ProvenanceStore.add_labeled_run`;
    the sharded ingest workers call it with explicit shard-encoded *run_id*
    values so every shard file carries globally unique run identifiers.
    Raises :class:`sqlite3.IntegrityError` on duplicates — wrapping it in a
    :class:`~repro.exceptions.StorageError` (and the transaction) is the
    caller's job.
    """
    run = labeled.run
    scheme = labeled.spec_index.scheme_name
    cursor = connection.execute(
        "INSERT INTO runs (run_id, spec_id, name, document, n_vertices, n_edges, spec_scheme) "
        "VALUES (?, ?, ?, ?, ?, ?, ?)",
        (
            run_id,
            spec_id,
            run.name,
            run_to_json(run),
            run.vertex_count,
            run.edge_count,
            scheme,
        ),
    )
    run_id = int(cursor.lastrowid)
    # The interned handle of each vertex is persisted alongside its label,
    # so a store reopened later hands out exactly the ids the in-memory
    # labeled run assigned.
    id_of = labeled.interner.id_of
    connection.executemany(
        "INSERT INTO run_labels "
        "(run_id, module, instance, q1, q2, q3, skeleton, vertex_id) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
        [
            (
                run_id,
                vertex.module,
                vertex.instance,
                label.q1,
                label.q2,
                label.q3,
                vertex.module,
                id_of(vertex),
            )
            for vertex, label in labeled.labels().items()
        ],
    )
    return run_id


def warn_deprecated_query(
    owner: str, old: str, query: str, *, stacklevel: int = 3
) -> None:
    """Warn that a legacy store query method was used, blaming the caller.

    Shared by both store layouts so the deprecation text and — crucially —
    the ``stacklevel`` arithmetic live in one place: with the default of 3
    the warning is attributed to the caller of the public shim (helper →
    shim → caller), so ``-W error::DeprecationWarning`` reports the user's
    own line, not ``store.py``.  Callers that add a delegation hop must
    bump *stacklevel* accordingly.
    """
    warnings.warn(
        f"{owner}.{old} is deprecated: run a {query} through the "
        "store's ProvenanceSession (store.session().run(...)) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def _deprecated_store_entry(old: str, query: str) -> None:
    # one hop deeper than the shared helper's default (shim → here → warn)
    warn_deprecated_query("ProvenanceStore", old, query, stacklevel=4)


class ProvenanceStore(WorkerPoolOwner):
    """Persist and query workflow provenance in a SQLite database.

    ``journal_mode`` is the SQLite journal the store's connections use;
    the sharded store opens its shard files in ``"WAL"`` mode so ingest
    writers and parallel readers coexist (see
    :mod:`repro.storage.database`).
    """

    def __init__(
        self, path: PathLike = ":memory:", *, journal_mode: str = "MEMORY"
    ) -> None:
        self.path = path
        self.journal_mode = journal_mode
        self._connection = connect(path, journal_mode=journal_mode)
        initialize_schema(self._connection)
        self._spec_cache: dict[int, WorkflowSpecification] = {}
        self._index_cache: dict[tuple[int, str], object] = {}
        # Cached skeleton-labeled views of stored runs and the compiled
        # batch engines over them (see _StoredRunIndex).  Keyed by run_id —
        # a run's spec scheme is fixed at insert time, so the (run_id,
        # scheme) identity the engines represent is preserved while warm
        # lookups stay SQL-free.  LRU-bounded at STORED_RUN_CACHE_LIMIT.
        self._stored_run_cache: "OrderedDict[int, _StoredRunIndex]" = OrderedDict()
        self._engine_cache: dict[int, tuple[QueryEngine, int]] = {}
        # Compiled fall-through evaluators shared by every run of one
        # (spec_id, scheme) — unlike the two caches above this one is not
        # LRU-bounded: one entry per stored specification+scheme, and a
        # cross-run sweep needs all of a spec's runs to hit the same entry.
        self._spec_kernel_cache: dict[tuple[int, str], SpecKernel] = {}
        self._session = None
        self._closed = False
        # Lifetime counters behind ProvenanceSession.cache_stats(): how many
        # stored-run label caches the LRU pushed out (each eviction means the
        # next query on that run rebuilds from SQL).
        self._evictions = 0
        # Per-scheme counts of dependency sweeps answered by the SQL
        # pushdown vs the streamed kernel, so planner decisions and scheme
        # skew stay observable through cache_stats().
        self._sweep_paths: dict[str, dict[str, int]] = {"sql": {}, "kernel": {}}
        # Graceful-degradation events (pushdown falling back to the kernel,
        # worker chunks retried or re-run sequentially); see note_degraded.
        self._degraded: dict[str, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

    def close(self) -> None:
        """Close the underlying connection and any worker pools (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.close_pools()
        self._connection.close()

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def pool_owner_description(self) -> str:
        return f"ProvenanceStore({str(self.path)!r})"

    # ------------------------------------------------------------------
    # specifications
    # ------------------------------------------------------------------
    def add_specification(self, spec: WorkflowSpecification) -> int:
        """Store *spec* (idempotent by name) and return its identifier."""
        self._require_open()
        with self._connection:
            return insert_specification(self._connection, spec)

    def get_specification(self, name: str) -> WorkflowSpecification:
        """Load the specification called *name*."""
        self._require_open()
        row = self._connection.execute(
            "SELECT spec_id, document FROM specifications WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no specification named {name!r} in the store")
        return self._load_specification(int(row["spec_id"]), row["document"])

    def list_specifications(self) -> list[dict]:
        """Return summaries of every stored specification."""
        self._require_open()
        rows = self._connection.execute(
            "SELECT spec_id, name, n_modules, n_edges FROM specifications ORDER BY spec_id"
        ).fetchall()
        return [dict(row) for row in rows]

    def _load_specification(self, spec_id: int, document: Optional[str] = None) -> WorkflowSpecification:
        if spec_id in self._spec_cache:
            return self._spec_cache[spec_id]
        if document is None:
            row = self._connection.execute(
                "SELECT document FROM specifications WHERE spec_id = ?", (spec_id,)
            ).fetchone()
            if row is None:
                raise StorageError(f"no specification with id {spec_id}")
            document = row["document"]
        spec = specification_from_json(document)
        self._spec_cache[spec_id] = spec
        return spec

    # ------------------------------------------------------------------
    # runs and labels
    # ------------------------------------------------------------------
    def add_labeled_run(self, labeled: SkeletonLabeledRun) -> int:
        """Store a labeled run (its graph, labels and spec scheme) and return its id."""
        self._require_open()
        run = labeled.run
        spec_id = self.add_specification(run.specification)
        try:
            with self._connection:
                return insert_labeled_run(self._connection, labeled, spec_id)
        except sqlite3.IntegrityError as exc:
            raise StorageError(
                f"run {run.name!r} already stored for specification {run.specification.name!r}"
            ) from exc

    def update_run_labels(self, run_id: int, labeled: SkeletonLabeledRun) -> int:
        """Persist a repaired label set over an already stored run.

        The write path of dynamic updates (:mod:`repro.dynamic`): after an
        in-memory run graph was mutated and relabeled, the store replays
        only the **changed** rows as targeted ``UPDATE`` statements —
        subtree-local repairs touch a handful of rows, not the whole run.
        The run's graph document and edge count are refreshed alongside, so
        a cold reopen rebuilds exactly the repaired state.  The execution
        set must be identical to the stored one (dynamic updates are
        edge-only surgery); anything else raises
        :class:`~repro.exceptions.StorageError`.  Returns the number of
        label rows rewritten.
        """
        self._require_open()
        run = labeled.run
        row = self._run_row(run_id)
        scheme = labeled.spec_index.scheme_name
        stored_scheme = row["spec_scheme"] or "tcm"
        if scheme != stored_scheme:
            raise StorageError(
                f"run {run_id} was labeled under scheme {stored_scheme!r}; "
                f"cannot update it with {scheme!r} labels"
            )
        stored = {
            (r["module"], int(r["instance"])): (
                int(r["q1"]),
                int(r["q2"]),
                int(r["q3"]),
            )
            for r in self._connection.execute(
                "SELECT module, instance, q1, q2, q3 FROM run_labels "
                "WHERE run_id = ?",
                (run_id,),
            )
        }
        labels = labeled.labels()
        new_keys = {(vertex.module, vertex.instance) for vertex in labels}
        if new_keys != set(stored):
            raise StorageError(
                f"run {run_id}: updated label set names a different execution "
                "set than the stored run (dynamic updates are edge-only; "
                "re-insert the run to change its executions)"
            )
        changed = [
            (label.q1, label.q2, label.q3, run_id, vertex.module, vertex.instance)
            for vertex, label in labels.items()
            if (label.q1, label.q2, label.q3)
            != stored[(vertex.module, vertex.instance)]
        ]
        with self._connection:
            if changed:
                self._connection.executemany(
                    "UPDATE run_labels SET q1 = ?, q2 = ?, q3 = ? "
                    "WHERE run_id = ? AND module = ? AND instance = ?",
                    changed,
                )
            self._connection.execute(
                "UPDATE runs SET document = ?, n_vertices = ?, n_edges = ? "
                "WHERE run_id = ?",
                (run_to_json(run), run.vertex_count, run.edge_count, run_id),
            )
        # the cached label view and its compiled engine describe the
        # pre-update run; drop both so the next query reloads from SQL
        self._stored_run_cache.pop(run_id, None)
        self._engine_cache.pop(run_id, None)
        return len(changed)

    def get_run(self, run_id: int) -> WorkflowRun:
        """Load the run graph with identifier *run_id*."""
        row = self._run_row(run_id)
        spec = self._load_specification(int(row["spec_id"]))
        return run_from_json(row["document"], spec)

    def list_runs(self, specification: Optional[str] = None) -> list[dict]:
        """Return summaries of stored runs, optionally filtered by specification name."""
        self._require_open()
        if specification is None:
            rows = self._connection.execute(
                "SELECT run_id, name, n_vertices, n_edges, spec_scheme, spec_id "
                "FROM runs ORDER BY run_id"
            ).fetchall()
        else:
            rows = self._connection.execute(
                "SELECT r.run_id, r.name, r.n_vertices, r.n_edges, r.spec_scheme, r.spec_id "
                "FROM runs r JOIN specifications s ON r.spec_id = s.spec_id "
                "WHERE s.name = ? ORDER BY r.run_id",
                (specification,),
            ).fetchall()
        return [dict(row) for row in rows]

    def _run_row(self, run_id: int) -> sqlite3.Row:
        self._require_open()
        row = self._connection.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no run with id {run_id}")
        return row

    def _spec_index(self, run_id: int):
        row = self._run_row(run_id)
        scheme = row["spec_scheme"] or "tcm"
        key = (int(row["spec_id"]), scheme)
        if key not in self._index_cache:
            spec = self._load_specification(int(row["spec_id"]))
            self._index_cache[key] = get_scheme(scheme).build(spec.graph)
        return self._index_cache[key]

    def spec_kernel(self, run_id: int) -> SpecKernel:
        """The compiled fall-through evaluator shared by the run's specification.

        Cached per ``(spec_id, spec_scheme)``, so every run of one
        specification — the stored-run engines and the cross-run sweep —
        pays the spec-side compilation (for non-TCM schemes, ``nG²``
        predicate evaluations) exactly once per store.
        """
        row = self._run_row(run_id)
        scheme = row["spec_scheme"] or "tcm"
        key = (int(row["spec_id"]), scheme)
        kernel = self._spec_kernel_cache.get(key)
        if kernel is None:
            kernel = self._spec_kernel_cache[key] = compile_spec_kernel(
                self._spec_index(run_id)
            )
        return kernel

    def run_label_arrays(self, run_id: int) -> RunLabelArrays:
        """Stream one run's label columns out of SQL as parallel arrays.

        One ``fetchall`` in persisted-handle order, three array fills — no
        per-row label objects.  This is the per-run payload of a cross-run
        sweep: the arrays go straight through the shared
        :meth:`spec_kernel`.
        """
        return self.run_label_arrays_many([run_id])[run_id]

    def run_label_arrays_many(
        self, run_ids: Sequence[int]
    ) -> dict[int, RunLabelArrays]:
        """Stream many runs' label columns with one ordered SQL scan per chunk.

        The multi-run form of :meth:`run_label_arrays` and the prefetch
        behind cross-run execution: instead of re-opening a cursor per run,
        each chunk of runs is fetched with a **single** ``run_id IN``
        query ordered by ``(run_id, vertex_id)`` and sliced in memory at
        the run boundaries (see :func:`load_label_arrays`).  Unknown run
        ids raise :class:`~repro.exceptions.StorageError`, like the
        single-run path.
        """
        self._require_open()
        arrays = load_label_arrays(self._connection, run_ids)
        for run_id, run_arrays in arrays.items():
            if not len(run_arrays):
                self._run_row(run_id)  # raise when the run does not exist
        return arrays

    def session(self):
        """The store's :class:`~repro.api.ProvenanceSession` (built lazily).

        The session is the documented query surface over stored runs: one
        ``session.run(query)`` entry point for point, batch, sweep,
        cross-run and data-dependency queries.
        """
        self._require_open()
        if self._session is None:
            from repro.api.session import ProvenanceSession

            self._session = ProvenanceSession(self)
        return self._session

    def label_of(self, run_id: int, module: str, instance: int) -> RunLabel:
        """Return the stored run label of one module execution."""
        self._require_open()
        row = self._connection.execute(
            "SELECT q1, q2, q3, skeleton FROM run_labels "
            "WHERE run_id = ? AND module = ? AND instance = ?",
            (run_id, module, instance),
        ).fetchone()
        if row is None:
            raise StorageError(
                f"run {run_id} has no label for execution {module}{instance}"
            )
        index = self._spec_index(run_id)
        return RunLabel(
            q1=int(row["q1"]),
            q2=int(row["q2"]),
            q3=int(row["q3"]),
            skeleton=index.label_of(row["skeleton"]),
        )

    def labels_of_many(
        self,
        run_id: int,
        executions: Iterable[Union[RunVertex, tuple[str, int]]],
    ) -> dict[tuple[str, int], RunLabel]:
        """Fetch the stored labels of many executions, batched over SQL.

        The distinct executions are resolved with row-value ``IN`` queries of
        up to :data:`LABEL_FETCH_CHUNK` executions each, so any query set of
        that size or less costs exactly **one** SQL round trip (versus one
        per execution through :meth:`label_of`).  Missing executions raise
        :class:`~repro.exceptions.StorageError`.
        """
        self._require_open()
        index = self._spec_index(run_id)
        spec_label_of = index.label_of
        distinct = _distinct_executions(executions)
        labels: dict[tuple[str, int], RunLabel] = {}
        for row in self._fetch_label_rows(run_id, distinct):
            labels[(row["module"], int(row["instance"]))] = RunLabel(
                q1=int(row["q1"]),
                q2=int(row["q2"]),
                q3=int(row["q3"]),
                skeleton=spec_label_of(row["skeleton"]),
            )
        _require_complete(run_id, distinct, labels)
        return labels

    def _fetch_label_rows(self, run_id: int, executions: list[tuple[str, int]]):
        """Yield the ``run_labels`` rows of *executions*, chunked over SQL.

        Chunks are sized by :func:`row_value_chunk`, so each round trip binds
        at most :data:`SQLITE_MAX_VARIABLE_NUMBER` host parameters.
        """
        for chunk, placeholders in iter_value_chunks(
            executions, columns_per_row=2, reserved=1
        ):
            parameters: list = [run_id]
            for module, instance in chunk:
                parameters.append(module)
                parameters.append(instance)
            yield from self._connection.execute(
                "SELECT module, instance, q1, q2, q3, skeleton FROM run_labels "
                f"WHERE run_id = ? AND (module, instance) IN (VALUES {placeholders})",
                parameters,
            ).fetchall()

    def all_labels_of(self, run_id: int) -> dict[tuple[str, int], RunLabel]:
        """Fetch every stored label of a run in one SQL round trip."""
        self._require_open()
        index = self._spec_index(run_id)
        spec_label_of = index.label_of
        rows = self._connection.execute(
            "SELECT module, instance, q1, q2, q3, skeleton FROM run_labels "
            "WHERE run_id = ? ORDER BY module, instance",
            (run_id,),
        ).fetchall()
        if not rows:
            self._run_row(run_id)  # raise cleanly when the run does not exist
        return {
            (row["module"], int(row["instance"])): RunLabel(
                q1=int(row["q1"]),
                q2=int(row["q2"]),
                q3=int(row["q3"]),
                skeleton=spec_label_of(row["skeleton"]),
            )
            for row in rows
        }

    def reaches(
        self,
        run_id: int,
        source: Union[RunVertex, tuple[str, int]],
        target: Union[RunVertex, tuple[str, int]],
    ) -> bool:
        """Decide reachability between two stored module executions.

        .. deprecated::
            Run a :class:`~repro.api.PointQuery` through
            ``store.session()`` instead; this shim delegates unchanged.
        """
        _deprecated_store_entry("reaches", "PointQuery")
        return self._reaches(run_id, source, target)

    def _reaches(
        self,
        run_id: int,
        source: Union[RunVertex, tuple[str, int]],
        target: Union[RunVertex, tuple[str, int]],
    ) -> bool:
        """Per-pair reachability from stored labels (the session's point plan).

        *source* and *target* may be :class:`RunVertex` instances or plain
        ``(module, instance)`` tuples.
        """
        source_module, source_instance = _coerce_vertex(source)
        target_module, target_instance = _coerce_vertex(target)
        source_label = self.label_of(run_id, source_module, source_instance)
        target_label = self.label_of(run_id, target_module, target_instance)
        return skeleton_predicate(source_label, target_label, self._spec_index(run_id))

    def _stored_index(self, run_id: int) -> "_StoredRunIndex":
        """The cached skeleton-labeled view of a stored run (no SQL on hit)."""
        self._require_open()
        index = self._stored_run_cache.get(run_id)
        if index is not None:
            self._stored_run_cache.move_to_end(run_id)
            return index
        row = self._run_row(run_id)
        scheme = row["spec_scheme"] or "tcm"
        index = _StoredRunIndex(self, run_id, scheme, self._spec_index(run_id))
        self._stored_run_cache[run_id] = index
        while len(self._stored_run_cache) > STORED_RUN_CACHE_LIMIT:
            evicted_run, _ = self._stored_run_cache.popitem(last=False)
            self._engine_cache.pop(evicted_run, None)
            self._evictions += 1
        return index

    def query_engine(self, run_id: int) -> QueryEngine:
        """The cached batch :class:`~repro.engine.QueryEngine` over a stored run.

        The first call loads the run's full label set (one SQL round trip,
        ordered by the persisted interner ids) and compiles the engine's
        skeleton kernel; every later call returns the same engine, so
        replayed workloads pay no SQL and no label resolution.  Handle-native
        callers intern their workload once
        (``engine.intern_pairs(pairs)``) and replay it through
        ``engine.reaches_many_ids``.
        """
        index = self._stored_index(run_id)
        index.ensure_all()
        cached = self._engine_cache.get(run_id)
        if cached is None or cached[1] != index.version:
            cached = (
                QueryEngine(index, spec_kernel=self.spec_kernel(run_id)),
                index.version,
            )
            self._engine_cache[run_id] = cached
        return cached[0]

    def has_compiled_engine(self, run_id: int) -> bool:
        """Whether *run_id* already has a warm compiled engine cached.

        The session's batch planner reads this (instead of poking the
        private cache) to decide whether a small workload should ride the
        already-paid handle path.
        """
        return run_id in self._engine_cache

    def reaches_batch(
        self,
        run_id: int,
        pairs: Iterable[tuple],
    ) -> list[bool]:
        """Answer many reachability queries over one stored run at once.

        .. deprecated::
            Run a :class:`~repro.api.BatchQuery` through
            ``store.session()`` instead; this shim delegates unchanged.
        """
        _deprecated_store_entry("reaches_batch", "BatchQuery")
        return self._reaches_batch(run_id, pairs)

    def _reaches_batch(
        self,
        run_id: int,
        pairs: Iterable[tuple],
    ) -> list[bool]:
        """The stored-run batch plan (used by the session's BatchQuery).

        Labels the batch needs but the run's cached view is missing are
        fetched with chunked row-value ``IN`` SELECTs (a single SQL round
        trip for up to :data:`LABEL_FETCH_CHUNK` distinct executions) and
        kept, so replaying a workload touches SQL only once; when the
        cached view is complete the batch is answered by the compiled
        :meth:`query_engine` kernel instead of re-evaluating the predicate
        from label objects.  Returns one boolean per pair, in order.
        """
        coerced = [
            (_coerce_vertex(source), _coerce_vertex(target)) for source, target in pairs
        ]
        index = self._stored_index(run_id)
        index.ensure(
            _distinct_executions(
                execution for pair in coerced for execution in pair
            )
        )
        if index.fully_loaded:
            answers = self.query_engine(run_id).reaches_batch(coerced)
            return answers if isinstance(answers, list) else list(answers)
        label_pairs = [
            (index.label_of(source), index.label_of(target))
            for source, target in coerced
        ]
        return skeleton_predicate_many(label_pairs, index.spec_index)

    def downstream_of(
        self,
        run_id: int,
        execution: Union[RunVertex, tuple[str, int]],
    ) -> list[tuple[str, int]]:
        """Every stored execution that depends on *execution* (excluding itself).

        .. deprecated::
            Run a :class:`~repro.api.DownstreamQuery` through
            ``store.session()`` instead; this shim delegates unchanged.
        """
        _deprecated_store_entry("downstream_of", "DownstreamQuery")
        return self._dependency_sweep(run_id, execution, downstream=True)

    def upstream_of(
        self,
        run_id: int,
        execution: Union[RunVertex, tuple[str, int]],
    ) -> list[tuple[str, int]]:
        """Every stored execution that *execution* depends on (excluding itself).

        .. deprecated::
            Run an :class:`~repro.api.UpstreamQuery` through
            ``store.session()`` instead; this shim delegates unchanged.
        """
        _deprecated_store_entry("upstream_of", "UpstreamQuery")
        return self._dependency_sweep(run_id, execution, downstream=False)

    def _dependency_sweep(
        self,
        run_id: int,
        execution: Union[RunVertex, tuple[str, int]],
        *,
        downstream: bool,
    ) -> list[tuple[str, int]]:
        anchor = _coerce_vertex(execution)
        index = self._stored_index(run_id)
        index.ensure_all()
        if not index.has_label(anchor):
            raise StorageError(
                f"run {run_id} has no label for execution {anchor[0]}{anchor[1]}"
            )
        engine = self.query_engine(run_id)
        self._note_sweep_path(index.scheme, pushdown=False)
        return engine.dependency_sweep(anchor, downstream=downstream)

    def _dependency_sweep_pushdown(
        self,
        run_id: int,
        execution: Union[RunVertex, tuple[str, int]],
        *,
        downstream: bool,
    ) -> list[RunVertex]:
        """The SQL form of :meth:`_dependency_sweep`: indexed range scans.

        Same contract, same answers in the same (persisted-interner) order —
        but evaluated inside SQLite over the v3 covering indexes instead of
        streaming the run's label arrays through a kernel.  Only the
        spec-level module reachability of the anchor is computed in Python
        (from the shared :meth:`spec_kernel`); everything per-vertex stays
        in the database and only matching rows cross the SQL boundary.
        """
        anchor = _coerce_vertex(execution)
        row = self._run_row(run_id)
        scheme = row["spec_scheme"] or "tcm"
        kernel = self.spec_kernel(run_id)
        modules = reachable_modules(kernel, anchor[0], downstream=downstream)
        result = None
        if modules is not None:
            result = pushdown_sweep(
                self._connection, [run_id], anchor, modules, downstream=downstream
            )[run_id]
        if result is None:
            raise StorageError(
                f"run {run_id} has no label for execution {anchor[0]}{anchor[1]}"
            )
        self._note_sweep_path(scheme, pushdown=True)
        return [RunVertex(module, instance) for module, instance in result]

    def pushdown_profile(self, run_id: int) -> tuple[str, bool, int]:
        """``(spec_scheme, pushdown-capable, n_vertices)`` of one stored run.

        The three facts the session planner weighs when choosing between
        the SQL pushdown and the streamed kernel for a sweep.
        """
        row = self._run_row(run_id)
        scheme = row["spec_scheme"] or "tcm"
        return scheme, scheme_supports_pushdown(scheme), int(row["n_vertices"])

    def read_connection_for(self, run_id: int) -> sqlite3.Connection:
        """The connection that can read *run_id*'s rows (the store's own)."""
        self._require_open()
        return self._connection

    def _note_sweep_path(
        self, scheme: str, *, pushdown: bool, run_id: Optional[int] = None
    ) -> None:
        # *run_id* identifies the run the sweep was answered for; a single
        # store keeps one counter table regardless, but the sharded store
        # overrides this to attribute the count to the owning shard.
        counts = self._sweep_paths["sql" if pushdown else "kernel"]
        counts[scheme] = counts.get(scheme, 0) + 1

    def note_degraded(self, kind: str) -> None:
        """Count one graceful-degradation event under *kind*.

        The planner and the parallel executor call this when a fast path
        failed and a slower-but-correct one served the answer instead —
        ``pushdown_fallback`` (SQL pushdown fell back to the streamed
        kernel), ``worker_retry`` (a crashed/hung chunk was resubmitted),
        ``worker_sequential`` (the retry failed too; the chunk ran
        sequentially on the submitting side).  Surfaced as
        ``cache_stats()["degraded"]``.
        """
        self._degraded[kind] = self._degraded.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # data provenance
    # ------------------------------------------------------------------
    def add_dataflow(self, run_id: int, dataflow: DataFlow) -> int:
        """Store the data items of *dataflow* for run *run_id*; returns item count."""
        self._run_row(run_id)
        items = dataflow.items()
        with self._connection:
            self._connection.executemany(
                "INSERT OR REPLACE INTO data_items "
                "(run_id, item_id, producer_module, producer_instance) VALUES (?, ?, ?, ?)",
                [
                    (
                        run_id,
                        item.item_id,
                        dataflow.output_of(item).module,
                        dataflow.output_of(item).instance,
                    )
                    for item in items
                ],
            )
            consumer_rows = []
            for item in items:
                for consumer in sorted(dataflow.inputs_of(item)):
                    consumer_rows.append(
                        (run_id, item.item_id, consumer.module, consumer.instance)
                    )
            self._connection.executemany(
                "INSERT OR REPLACE INTO data_consumers "
                "(run_id, item_id, consumer_module, consumer_instance) VALUES (?, ?, ?, ?)",
                consumer_rows,
            )
        return len(items)

    def _producer_of(self, run_id: int, item_id: str) -> tuple[str, int]:
        self._require_open()
        row = self._connection.execute(
            "SELECT producer_module, producer_instance FROM data_items "
            "WHERE run_id = ? AND item_id = ?",
            (run_id, item_id),
        ).fetchone()
        if row is None:
            raise StorageError(f"run {run_id} has no data item {item_id!r}")
        return (row["producer_module"], int(row["producer_instance"]))

    def _consumers_of(self, run_id: int, item_id: str) -> list[tuple[str, int]]:
        rows = self._connection.execute(
            "SELECT consumer_module, consumer_instance FROM data_consumers "
            "WHERE run_id = ? AND item_id = ?",
            (run_id, item_id),
        ).fetchall()
        return [(row["consumer_module"], int(row["consumer_instance"])) for row in rows]

    def data_depends_on_data(self, run_id: int, item_id: str, other_id: str) -> bool:
        """Does stored data item *item_id* depend on *other_id*?

        All consumer-to-producer reachability checks are answered as one
        batch, so the labels are fetched in a single SQL round trip.
        """
        producer = self._producer_of(run_id, item_id)
        consumers = self._consumers_of(run_id, other_id)
        if not consumers:
            return False
        return any(
            self._reaches_batch(
                run_id, [(consumer, producer) for consumer in consumers]
            )
        )

    def data_depends_on_module(
        self, run_id: int, item_id: str, module: tuple[str, int]
    ) -> bool:
        """Does stored data item *item_id* depend on module execution *module*?"""
        producer = self._producer_of(run_id, item_id)
        return self._reaches(run_id, module, producer)

    def list_data_items(self, run_id: int) -> list[str]:
        """Return the identifiers of every data item stored for *run_id*."""
        rows = self._connection.execute(
            "SELECT item_id FROM data_items WHERE run_id = ? ORDER BY item_id", (run_id,)
        ).fetchall()
        return [row["item_id"] for row in rows]

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def delete_run(self, run_id: int) -> None:
        """Remove a run and all dependent rows (evicting its cached engine)."""
        self._require_open()
        with self._connection:
            deleted = self._connection.execute(
                "DELETE FROM runs WHERE run_id = ?", (run_id,)
            ).rowcount
        if not deleted:
            raise StorageError(f"no run with id {run_id}")
        self._stored_run_cache.pop(run_id, None)
        self._engine_cache.pop(run_id, None)

    def cache_stats(self) -> dict:
        """Occupancy and eviction counters of the store's query caches.

        ``evictions`` counts stored-run label caches pushed out of the LRU
        (bounded at ``limit`` = :data:`STORED_RUN_CACHE_LIMIT`); each
        eviction means the next query against that run pays its SQL fetch
        and kernel compilation again.  Surfaced through
        :meth:`ProvenanceSession.cache_stats`.
        """
        stats = {
            "stored_runs_cached": len(self._stored_run_cache),
            "engines_cached": len(self._engine_cache),
            "spec_kernels_cached": len(self._spec_kernel_cache),
            "evictions": self._evictions,
            "limit": STORED_RUN_CACHE_LIMIT,
            "pushdown": {
                "sql": dict(self._sweep_paths["sql"]),
                "kernel": dict(self._sweep_paths["kernel"]),
            },
            "degraded": dict(self._degraded),
        }
        pools = self.pool_stats()
        if pools:
            stats["pools"] = pools
        return stats

    def statistics(self) -> dict:
        """Return row counts per table (for diagnostics and tests)."""
        self._require_open()
        tables = ("specifications", "runs", "run_labels", "data_items", "data_consumers")
        counts = {}
        for table in tables:
            row = self._connection.execute(f"SELECT COUNT(*) AS c FROM {table}").fetchone()
            counts[table] = int(row["c"])
        return counts


class _StoredRunIndex(VertexHandleAPI):
    """A skeleton-labeled view of one stored run, with a growing label cache.

    The store hands every batched query path through one of these (cached
    per ``(run_id, spec_scheme)``): labels already fetched from SQL are kept
    for the store's lifetime, so a replayed workload resolves each label at
    most once.  Once the full label set is loaded (:meth:`ensure_all`) the
    object exposes the complete ``(D, φ, π)`` + vertex-handle surface of a
    :class:`~repro.skeleton.skl.SkeletonLabeledRun` — including
    ``kernel_hint = "skl"`` — so :func:`repro.engine.kernels.build_kernel`
    compiles the same vectorized skeleton kernel for it.  Handle order
    follows the persisted ``vertex_id`` column (the interner of the run
    that was stored), falling back to ``(module, instance)`` order for rows
    written before schema version 2.
    """

    kernel_hint = "skl"

    def __init__(
        self, store: ProvenanceStore, run_id: int, scheme: str, spec_index
    ) -> None:
        self._store = store
        self.run_id = run_id
        self.scheme = scheme
        self.spec_index = spec_index
        self._cached: dict[RunVertex, RunLabel] = {}
        self._fully_loaded = False
        #: bumped whenever the cached label universe changes; the store's
        #: engine cache is keyed on it so a stale kernel is never reused
        self.version = 0

    # -- label cache ----------------------------------------------------
    @property
    def fully_loaded(self) -> bool:
        """Whether every label of the run is in the cache."""
        return self._fully_loaded

    def has_label(self, execution: tuple[str, int]) -> bool:
        """Whether *execution*'s label is cached (complete after ensure_all)."""
        return execution in self._cached

    def ensure(self, executions: list[tuple[str, int]]) -> None:
        """Load the labels of *executions* that are not cached yet.

        Missing labels are fetched with chunked row-value ``IN`` SELECTs;
        executions absent from the store raise
        :class:`~repro.exceptions.StorageError` (same contract as
        :meth:`ProvenanceStore.labels_of_many`).
        """
        needed = [key for key in executions if key not in self._cached]
        if not needed:
            return
        spec_label_of = self.spec_index.label_of
        fetched: dict[tuple[str, int], RunLabel] = {}
        for row in self._store._fetch_label_rows(self.run_id, needed):
            fetched[(row["module"], int(row["instance"]))] = RunLabel(
                q1=int(row["q1"]),
                q2=int(row["q2"]),
                q3=int(row["q3"]),
                skeleton=spec_label_of(row["skeleton"]),
            )
        _require_complete(self.run_id, needed, fetched)
        for (module, instance), label in fetched.items():
            self._cached[RunVertex(module, instance)] = label
        self.version += 1

    def ensure_all(self) -> None:
        """Load the run's complete label set (one SQL round trip, once).

        The cache is rebuilt in persisted-interner order, so the handles
        this index (and any engine over it) assigns match the ids the
        original :class:`~repro.skeleton.skl.SkeletonLabeledRun` interned.
        """
        if self._fully_loaded:
            return
        spec_label_of = self.spec_index.label_of
        rows = self._store._connection.execute(
            "SELECT module, instance, q1, q2, q3, skeleton FROM run_labels "
            "WHERE run_id = ? "
            "ORDER BY (vertex_id IS NULL), vertex_id, module, instance",
            (self.run_id,),
        ).fetchall()
        self._cached = {
            RunVertex(row["module"], int(row["instance"])): RunLabel(
                q1=int(row["q1"]),
                q2=int(row["q2"]),
                q3=int(row["q3"]),
                skeleton=spec_label_of(row["skeleton"]),
            )
            for row in rows
        }
        # handle tables were built over the partial universe; rebuild lazily
        self._handle_interner = None
        self._handle_label_table = None
        self._fully_loaded = True
        self.version += 1

    # -- the (D, φ, π) + handle surface over the stored run --------------
    @property
    def stable_labels(self) -> bool:
        """Inherited from the spec index, like SkeletonLabeledRun."""
        return getattr(self.spec_index, "stable_labels", True)

    def _handle_vertices(self):
        if not self._fully_loaded:  # pragma: no cover - internal misuse guard
            raise StorageError(
                "vertex handles over a stored run require the full label set; "
                "call ensure_all() first"
            )
        return self._cached

    def _handle_labels_cacheable(self) -> bool:
        # Stored labels are frozen rows; like SkeletonLabeledRun, only the
        # fall-through predicate can be live, never the labels.
        return True

    def labels(self) -> dict[RunVertex, RunLabel]:
        """A copy of the cached label assignment (complete after ensure_all)."""
        return dict(self._cached)

    def label_of(self, vertex) -> RunLabel:
        """The cached label of one execution (RunVertex or plain tuple)."""
        try:
            return self._cached[vertex]
        except KeyError:
            raise StorageError(
                f"run {self.run_id} has no cached label for execution "
                f"{vertex[0]}{vertex[1]}"
            ) from None

    def reaches_labels(self, first: RunLabel, second: RunLabel) -> bool:
        """``πr`` over two stored labels (Algorithm 3)."""
        return skeleton_predicate(first, second, self.spec_index)

    def reaches(self, source, target) -> bool:
        """Decide reachability between two cached executions."""
        return self.reaches_labels(self.label_of(source), self.label_of(target))

    def reaches_many(self, label_pairs) -> list[bool]:
        """Batch ``πr`` with a single spec-index call for all fall-throughs."""
        return skeleton_predicate_many(label_pairs, self.spec_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "full" if self._fully_loaded else f"{len(self._cached)} cached"
        return (
            f"_StoredRunIndex(run_id={self.run_id}, scheme={self.scheme!r}, "
            f"labels={state})"
        )


def _distinct_executions(executions) -> list[tuple[str, int]]:
    """Coerce to (module, instance) tuples, deduplicated in first-seen order."""
    distinct: list[tuple[str, int]] = []
    seen: set[tuple[str, int]] = set()
    for execution in executions:
        key = _coerce_vertex(execution)
        if key not in seen:
            seen.add(key)
            distinct.append(key)
    return distinct


def _require_complete(
    run_id: int, requested: list[tuple[str, int]], found: dict
) -> None:
    """Raise the canonical missing-execution error when a fetch came up short."""
    missing = [key for key in requested if key not in found]
    if missing:
        module, instance = missing[0]
        raise StorageError(
            f"run {run_id} has no label for execution {module}{instance} "
            f"({len(missing)} of {len(requested)} requested executions missing)"
        )


def _coerce_vertex(value: Union[RunVertex, tuple[str, int]]) -> tuple[str, int]:
    """Accept both RunVertex and plain (module, instance) tuples."""
    if isinstance(value, RunVertex):
        return (value.module, value.instance)
    return (str(value[0]), int(value[1]))
