"""The SQLite-backed provenance store.

:class:`ProvenanceStore` persists specifications, labeled runs and data-item
assignments, and answers reachability and dependency queries straight from
the stored labels.  The storage layout mirrors the paper's amortization
argument (Section 7): skeleton labels are stored once per specification
(rebuilt on demand from the specification document), while every run vertex
stores only its three context coordinates and the name of its origin module —
``3 log nR + log nG`` bits of information per vertex.

Two query paths are offered.  The per-pair path (:meth:`ProvenanceStore.reaches`)
issues one label SELECT per endpoint and is fine for interactive use.  The
batched path (:meth:`ProvenanceStore.reaches_batch`,
:meth:`ProvenanceStore.labels_of_many`, :meth:`ProvenanceStore.downstream_of`,
:meth:`ProvenanceStore.upstream_of`) resolves all labels behind a query set
with a single row-value ``IN`` SELECT (chunked at :data:`LABEL_FETCH_CHUNK`)
and evaluates the Algorithm 3 predicate batch-wise — the path the
:mod:`repro.engine` throughput work feeds, where SQL round trips rather than
predicate arithmetic dominate.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable
from pathlib import Path
from typing import Optional, Union

from repro.exceptions import StorageError
from repro.labeling.registry import get_scheme
from repro.provenance.data import DataFlow
from repro.skeleton.labels import RunLabel
from repro.skeleton.skl import (
    SkeletonLabeledRun,
    skeleton_predicate,
    skeleton_predicate_many,
)
from repro.storage.database import connect, initialize_schema
from repro.workflow.run import RunVertex, WorkflowRun
from repro.workflow.serialization import (
    run_from_json,
    run_to_json,
    specification_from_json,
    specification_to_json,
)
from repro.workflow.specification import WorkflowSpecification

__all__ = ["ProvenanceStore", "LABEL_FETCH_CHUNK"]

PathLike = Union[str, Path]

#: how many (module, instance) executions one batched label SELECT resolves;
#: kept well under SQLite's default host-parameter limit (2 params each)
LABEL_FETCH_CHUNK = 400


class ProvenanceStore:
    """Persist and query workflow provenance in a SQLite database."""

    def __init__(self, path: PathLike = ":memory:") -> None:
        self.path = path
        self._connection = connect(path)
        initialize_schema(self._connection)
        self._spec_cache: dict[int, WorkflowSpecification] = {}
        self._index_cache: dict[tuple[int, str], object] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # specifications
    # ------------------------------------------------------------------
    def add_specification(self, spec: WorkflowSpecification) -> int:
        """Store *spec* (idempotent by name) and return its identifier."""
        existing = self._connection.execute(
            "SELECT spec_id FROM specifications WHERE name = ?", (spec.name,)
        ).fetchone()
        if existing is not None:
            return int(existing["spec_id"])
        with self._connection:
            cursor = self._connection.execute(
                "INSERT INTO specifications (name, document, n_modules, n_edges) "
                "VALUES (?, ?, ?, ?)",
                (
                    spec.name,
                    specification_to_json(spec),
                    spec.vertex_count,
                    spec.edge_count,
                ),
            )
        return int(cursor.lastrowid)

    def get_specification(self, name: str) -> WorkflowSpecification:
        """Load the specification called *name*."""
        row = self._connection.execute(
            "SELECT spec_id, document FROM specifications WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no specification named {name!r} in the store")
        return self._load_specification(int(row["spec_id"]), row["document"])

    def list_specifications(self) -> list[dict]:
        """Return summaries of every stored specification."""
        rows = self._connection.execute(
            "SELECT spec_id, name, n_modules, n_edges FROM specifications ORDER BY spec_id"
        ).fetchall()
        return [dict(row) for row in rows]

    def _load_specification(self, spec_id: int, document: Optional[str] = None) -> WorkflowSpecification:
        if spec_id in self._spec_cache:
            return self._spec_cache[spec_id]
        if document is None:
            row = self._connection.execute(
                "SELECT document FROM specifications WHERE spec_id = ?", (spec_id,)
            ).fetchone()
            if row is None:
                raise StorageError(f"no specification with id {spec_id}")
            document = row["document"]
        spec = specification_from_json(document)
        self._spec_cache[spec_id] = spec
        return spec

    # ------------------------------------------------------------------
    # runs and labels
    # ------------------------------------------------------------------
    def add_labeled_run(self, labeled: SkeletonLabeledRun) -> int:
        """Store a labeled run (its graph, labels and spec scheme) and return its id."""
        run = labeled.run
        spec_id = self.add_specification(run.specification)
        scheme = labeled.spec_index.scheme_name
        try:
            with self._connection:
                cursor = self._connection.execute(
                    "INSERT INTO runs (spec_id, name, document, n_vertices, n_edges, spec_scheme) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        spec_id,
                        run.name,
                        run_to_json(run),
                        run.vertex_count,
                        run.edge_count,
                        scheme,
                    ),
                )
                run_id = int(cursor.lastrowid)
                self._connection.executemany(
                    "INSERT INTO run_labels (run_id, module, instance, q1, q2, q3, skeleton) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    [
                        (
                            run_id,
                            vertex.module,
                            vertex.instance,
                            label.q1,
                            label.q2,
                            label.q3,
                            vertex.module,
                        )
                        for vertex, label in labeled.labels().items()
                    ],
                )
        except sqlite3.IntegrityError as exc:
            raise StorageError(
                f"run {run.name!r} already stored for specification {run.specification.name!r}"
            ) from exc
        return run_id

    def get_run(self, run_id: int) -> WorkflowRun:
        """Load the run graph with identifier *run_id*."""
        row = self._run_row(run_id)
        spec = self._load_specification(int(row["spec_id"]))
        return run_from_json(row["document"], spec)

    def list_runs(self, specification: Optional[str] = None) -> list[dict]:
        """Return summaries of stored runs, optionally filtered by specification name."""
        if specification is None:
            rows = self._connection.execute(
                "SELECT run_id, name, n_vertices, n_edges, spec_scheme, spec_id "
                "FROM runs ORDER BY run_id"
            ).fetchall()
        else:
            rows = self._connection.execute(
                "SELECT r.run_id, r.name, r.n_vertices, r.n_edges, r.spec_scheme, r.spec_id "
                "FROM runs r JOIN specifications s ON r.spec_id = s.spec_id "
                "WHERE s.name = ? ORDER BY r.run_id",
                (specification,),
            ).fetchall()
        return [dict(row) for row in rows]

    def _run_row(self, run_id: int) -> sqlite3.Row:
        row = self._connection.execute(
            "SELECT * FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no run with id {run_id}")
        return row

    def _spec_index(self, run_id: int):
        row = self._run_row(run_id)
        scheme = row["spec_scheme"] or "tcm"
        key = (int(row["spec_id"]), scheme)
        if key not in self._index_cache:
            spec = self._load_specification(int(row["spec_id"]))
            self._index_cache[key] = get_scheme(scheme).build(spec.graph)
        return self._index_cache[key]

    def label_of(self, run_id: int, module: str, instance: int) -> RunLabel:
        """Return the stored run label of one module execution."""
        row = self._connection.execute(
            "SELECT q1, q2, q3, skeleton FROM run_labels "
            "WHERE run_id = ? AND module = ? AND instance = ?",
            (run_id, module, instance),
        ).fetchone()
        if row is None:
            raise StorageError(
                f"run {run_id} has no label for execution {module}{instance}"
            )
        index = self._spec_index(run_id)
        return RunLabel(
            q1=int(row["q1"]),
            q2=int(row["q2"]),
            q3=int(row["q3"]),
            skeleton=index.label_of(row["skeleton"]),
        )

    def labels_of_many(
        self,
        run_id: int,
        executions: Iterable[Union[RunVertex, tuple[str, int]]],
    ) -> dict[tuple[str, int], RunLabel]:
        """Fetch the stored labels of many executions, batched over SQL.

        The distinct executions are resolved with row-value ``IN`` queries of
        up to :data:`LABEL_FETCH_CHUNK` executions each, so any query set of
        that size or less costs exactly **one** SQL round trip (versus one
        per execution through :meth:`label_of`).  Missing executions raise
        :class:`~repro.exceptions.StorageError`.
        """
        index = self._spec_index(run_id)
        spec_label_of = index.label_of
        distinct: list[tuple[str, int]] = []
        seen: set[tuple[str, int]] = set()
        for execution in executions:
            key = _coerce_vertex(execution)
            if key not in seen:
                seen.add(key)
                distinct.append(key)
        labels: dict[tuple[str, int], RunLabel] = {}
        for start in range(0, len(distinct), LABEL_FETCH_CHUNK):
            chunk = distinct[start : start + LABEL_FETCH_CHUNK]
            placeholders = ", ".join(["(?, ?)"] * len(chunk))
            parameters: list = [run_id]
            for module, instance in chunk:
                parameters.append(module)
                parameters.append(instance)
            rows = self._connection.execute(
                "SELECT module, instance, q1, q2, q3, skeleton FROM run_labels "
                f"WHERE run_id = ? AND (module, instance) IN (VALUES {placeholders})",
                parameters,
            ).fetchall()
            for row in rows:
                labels[(row["module"], int(row["instance"]))] = RunLabel(
                    q1=int(row["q1"]),
                    q2=int(row["q2"]),
                    q3=int(row["q3"]),
                    skeleton=spec_label_of(row["skeleton"]),
                )
        missing = [key for key in distinct if key not in labels]
        if missing:
            module, instance = missing[0]
            raise StorageError(
                f"run {run_id} has no label for execution {module}{instance} "
                f"({len(missing)} of {len(distinct)} requested executions missing)"
            )
        return labels

    def all_labels_of(self, run_id: int) -> dict[tuple[str, int], RunLabel]:
        """Fetch every stored label of a run in one SQL round trip."""
        index = self._spec_index(run_id)
        spec_label_of = index.label_of
        rows = self._connection.execute(
            "SELECT module, instance, q1, q2, q3, skeleton FROM run_labels "
            "WHERE run_id = ? ORDER BY module, instance",
            (run_id,),
        ).fetchall()
        if not rows:
            self._run_row(run_id)  # raise cleanly when the run does not exist
        return {
            (row["module"], int(row["instance"])): RunLabel(
                q1=int(row["q1"]),
                q2=int(row["q2"]),
                q3=int(row["q3"]),
                skeleton=spec_label_of(row["skeleton"]),
            )
            for row in rows
        }

    def reaches(
        self,
        run_id: int,
        source: Union[RunVertex, tuple[str, int]],
        target: Union[RunVertex, tuple[str, int]],
    ) -> bool:
        """Decide reachability between two stored module executions.

        *source* and *target* may be :class:`RunVertex` instances or plain
        ``(module, instance)`` tuples.
        """
        source_module, source_instance = _coerce_vertex(source)
        target_module, target_instance = _coerce_vertex(target)
        source_label = self.label_of(run_id, source_module, source_instance)
        target_label = self.label_of(run_id, target_module, target_instance)
        return skeleton_predicate(source_label, target_label, self._spec_index(run_id))

    def reaches_batch(
        self,
        run_id: int,
        pairs: Iterable[tuple],
    ) -> list[bool]:
        """Answer many reachability queries over one stored run at once.

        All labels behind the batch are fetched via :meth:`labels_of_many`
        (a single SQL round trip for up to :data:`LABEL_FETCH_CHUNK` distinct
        executions) and the Algorithm 3 predicate is evaluated batch-wise,
        with every skeleton fall-through forwarded to the specification
        index's own batch path.  Returns one boolean per pair, in order.
        """
        coerced = [
            (_coerce_vertex(source), _coerce_vertex(target)) for source, target in pairs
        ]
        labels = self.labels_of_many(
            run_id, (execution for pair in coerced for execution in pair)
        )
        label_pairs = [(labels[source], labels[target]) for source, target in coerced]
        return skeleton_predicate_many(label_pairs, self._spec_index(run_id))

    def downstream_of(
        self,
        run_id: int,
        execution: Union[RunVertex, tuple[str, int]],
    ) -> list[tuple[str, int]]:
        """Every stored execution that depends on *execution* (excluding itself).

        The run's full label set is fetched in one SQL round trip and the
        predicate is evaluated batch-wise against every candidate — the
        "which downstream results were affected" sweep of the introduction,
        answered without reconstructing the run graph.
        """
        return self._dependency_sweep(run_id, execution, downstream=True)

    def upstream_of(
        self,
        run_id: int,
        execution: Union[RunVertex, tuple[str, int]],
    ) -> list[tuple[str, int]]:
        """Every stored execution that *execution* depends on (excluding itself)."""
        return self._dependency_sweep(run_id, execution, downstream=False)

    def _dependency_sweep(
        self,
        run_id: int,
        execution: Union[RunVertex, tuple[str, int]],
        *,
        downstream: bool,
    ) -> list[tuple[str, int]]:
        anchor = _coerce_vertex(execution)
        labels = self.all_labels_of(run_id)
        try:
            anchor_label = labels[anchor]
        except KeyError:
            raise StorageError(
                f"run {run_id} has no label for execution {anchor[0]}{anchor[1]}"
            ) from None
        candidates = [key for key in labels if key != anchor]
        if downstream:
            label_pairs = [(anchor_label, labels[key]) for key in candidates]
        else:
            label_pairs = [(labels[key], anchor_label) for key in candidates]
        answers = skeleton_predicate_many(label_pairs, self._spec_index(run_id))
        return [key for key, answer in zip(candidates, answers) if answer]

    # ------------------------------------------------------------------
    # data provenance
    # ------------------------------------------------------------------
    def add_dataflow(self, run_id: int, dataflow: DataFlow) -> int:
        """Store the data items of *dataflow* for run *run_id*; returns item count."""
        self._run_row(run_id)
        items = dataflow.items()
        with self._connection:
            self._connection.executemany(
                "INSERT OR REPLACE INTO data_items "
                "(run_id, item_id, producer_module, producer_instance) VALUES (?, ?, ?, ?)",
                [
                    (
                        run_id,
                        item.item_id,
                        dataflow.output_of(item).module,
                        dataflow.output_of(item).instance,
                    )
                    for item in items
                ],
            )
            consumer_rows = []
            for item in items:
                for consumer in sorted(dataflow.inputs_of(item)):
                    consumer_rows.append(
                        (run_id, item.item_id, consumer.module, consumer.instance)
                    )
            self._connection.executemany(
                "INSERT OR REPLACE INTO data_consumers "
                "(run_id, item_id, consumer_module, consumer_instance) VALUES (?, ?, ?, ?)",
                consumer_rows,
            )
        return len(items)

    def _producer_of(self, run_id: int, item_id: str) -> tuple[str, int]:
        row = self._connection.execute(
            "SELECT producer_module, producer_instance FROM data_items "
            "WHERE run_id = ? AND item_id = ?",
            (run_id, item_id),
        ).fetchone()
        if row is None:
            raise StorageError(f"run {run_id} has no data item {item_id!r}")
        return (row["producer_module"], int(row["producer_instance"]))

    def _consumers_of(self, run_id: int, item_id: str) -> list[tuple[str, int]]:
        rows = self._connection.execute(
            "SELECT consumer_module, consumer_instance FROM data_consumers "
            "WHERE run_id = ? AND item_id = ?",
            (run_id, item_id),
        ).fetchall()
        return [(row["consumer_module"], int(row["consumer_instance"])) for row in rows]

    def data_depends_on_data(self, run_id: int, item_id: str, other_id: str) -> bool:
        """Does stored data item *item_id* depend on *other_id*?

        All consumer-to-producer reachability checks are answered as one
        batch, so the labels are fetched in a single SQL round trip.
        """
        producer = self._producer_of(run_id, item_id)
        consumers = self._consumers_of(run_id, other_id)
        if not consumers:
            return False
        return any(
            self.reaches_batch(
                run_id, [(consumer, producer) for consumer in consumers]
            )
        )

    def data_depends_on_module(
        self, run_id: int, item_id: str, module: tuple[str, int]
    ) -> bool:
        """Does stored data item *item_id* depend on module execution *module*?"""
        producer = self._producer_of(run_id, item_id)
        return self.reaches(run_id, module, producer)

    def list_data_items(self, run_id: int) -> list[str]:
        """Return the identifiers of every data item stored for *run_id*."""
        rows = self._connection.execute(
            "SELECT item_id FROM data_items WHERE run_id = ? ORDER BY item_id", (run_id,)
        ).fetchall()
        return [row["item_id"] for row in rows]

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def delete_run(self, run_id: int) -> None:
        """Remove a run and all dependent rows."""
        with self._connection:
            deleted = self._connection.execute(
                "DELETE FROM runs WHERE run_id = ?", (run_id,)
            ).rowcount
        if not deleted:
            raise StorageError(f"no run with id {run_id}")

    def statistics(self) -> dict:
        """Return row counts per table (for diagnostics and tests)."""
        tables = ("specifications", "runs", "run_labels", "data_items", "data_consumers")
        counts = {}
        for table in tables:
            row = self._connection.execute(f"SELECT COUNT(*) AS c FROM {table}").fetchone()
            counts[table] = int(row["c"])
        return counts


def _coerce_vertex(value: Union[RunVertex, tuple[str, int]]) -> tuple[str, int]:
    """Accept both RunVertex and plain (module, instance) tuples."""
    if isinstance(value, RunVertex):
        return (value.module, value.instance)
    return (str(value[0]), int(value[1]))
