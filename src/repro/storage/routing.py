"""The shard routing catalog: persisted placement overrides + online rebalance.

The sharded store places every specification by a fixed CRC-32 of its name
(:func:`repro.storage.sharded.shard_of_spec`) and every run by the shard
encoded into its global id.  That static map is perfect until it is not:
one hot specification saturates its shard file while siblings idle.  This
module makes placement an *override-able catalog* without touching the
hash for anyone else:

* :class:`RoutingTable` — the persisted spec→shard and run→shard
  overrides (schema v4 tables ``shard_routing`` / ``run_routing``), held
  in shard 0 of the directory (the **catalog shard**) and mirrored into
  process memory.  A spec absent from the catalog keeps hashing exactly
  as before; a migrated run keeps its original global id (bit-identical
  answers require the visible ids to survive relocation), so its encoded
  shard is overridden by a ``run_routing`` row instead.
* :func:`migrate_spec` — the online ``rebalance`` maintenance path:
  under the source shard's write lock the spec's rows are **copied**
  verbatim (ids unchanged) into the target shard in one transaction, the
  routing entries are **flipped** in one catalog transaction, and only
  then are the source rows deleted.  WAL keeps concurrent readers
  unblocked throughout, and because the flip is atomic they serve
  bit-identical answers from whichever placement is current.
* :func:`recover_migrations` — crash repair.  Every migration writes a
  journal row (``shard_migrations``) before copying and deletes it after
  the source rows are gone.  A crash leaves the journal in one of two
  states: ``copying`` (the flip never committed — roll *back* by
  dropping the partial target copy) or ``flipped`` (the catalog already
  points at the target — roll *forward* by finishing the source delete).
  Either way exactly one valid placement survives; the store runs this
  on every open and after any failed migration.

The ``routing.migrate`` fault point fires between the copy commit and
the routing flip — the widest crash window — so chaos tests can kill a
migration exactly where both placements hold a full copy.
"""

from __future__ import annotations

import json
import sqlite3
from typing import TYPE_CHECKING, Optional

from repro.exceptions import StorageError
from repro.faults import fault_point, suppressed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.sharded import ShardedProvenanceStore

__all__ = [
    "RoutingTable",
    "migrate_spec",
    "recover_migrations",
]

#: the dependent tables copied (and source-deleted) with a spec's runs;
#: each is keyed by ``run_id``, so one ``IN (SELECT run_id ...)`` subquery
#: per table moves exactly the migrated rows
_RUN_TABLES = ("run_labels", "data_items", "data_consumers")


class RoutingTable:
    """Persisted placement overrides, mirrored in memory for hot-path reads.

    Backed by the catalog shard (shard 0 of the directory) over a
    **private** WAL connection with its own lock — catalog transactions
    must never nest inside a shard's write lock, because a migration out
    of shard 0 journals while holding exactly that lock.  Reads
    (:meth:`shard_of_spec`, :meth:`shard_of_run`) are lock-free
    dictionary lookups — the mirrors are replaced wholesale, and
    replacing a reference is atomic — so consulting the catalog before
    the hash costs one ``dict.get`` per routed operation.
    """

    def __init__(self, catalog_path) -> None:
        import threading

        from repro.storage.database import connect

        self._connection = connect(catalog_path, journal_mode="WAL")
        self._lock = threading.Lock()
        self._spec_overrides: dict[str, int] = {}
        self._run_overrides: dict[int, int] = {}
        self.reload()

    def close(self) -> None:
        """Close the private catalog connection (idempotent)."""
        try:
            self._connection.close()
        except sqlite3.Error:  # pragma: no cover - close is best-effort
            pass

    # ------------------------------------------------------------------
    # reads (the hot path)
    # ------------------------------------------------------------------
    def shard_of_spec(self, name: str) -> Optional[int]:
        """The overridden shard of specification *name* (``None`` = hash)."""
        return self._spec_overrides.get(name)

    def shard_of_run(self, run_id: int) -> Optional[int]:
        """The overridden shard of *run_id* (``None`` = id-encoded shard)."""
        if not self._run_overrides:
            return None
        return self._run_overrides.get(int(run_id))

    def entries(self) -> dict[str, int]:
        """A snapshot of every spec→shard override (for CLI / wire dumps)."""
        return dict(self._spec_overrides)

    @property
    def overridden_run_count(self) -> int:
        """How many runs live away from their id-encoded shard."""
        return len(self._run_overrides)

    def forget_run(self, run_id: int) -> None:
        """Drop a deleted run's override (ids are never reused, so this is
        pure housekeeping — a stale override could only name a gone run)."""
        run_id = int(run_id)
        if run_id not in self._run_overrides:
            return
        with self._lock, self._connection:
            self._connection.execute(
                "DELETE FROM run_routing WHERE run_id = ?", (run_id,)
            )
        run_overrides = dict(self._run_overrides)
        run_overrides.pop(run_id, None)
        self._run_overrides = run_overrides

    def reload(self) -> None:
        """Rebuild the in-memory mirrors from the catalog tables."""
        spec_rows = self._connection.execute(
            "SELECT spec_name, shard FROM shard_routing"
        ).fetchall()
        run_rows = self._connection.execute(
            "SELECT run_id, shard FROM run_routing"
        ).fetchall()
        self._spec_overrides = {
            row["spec_name"]: int(row["shard"]) for row in spec_rows
        }
        self._run_overrides = {int(row["run_id"]): int(row["shard"]) for row in run_rows}

    # ------------------------------------------------------------------
    # the migration journal
    # ------------------------------------------------------------------
    def journal_rows(self) -> list[sqlite3.Row]:
        """Every in-flight migration recorded in the catalog."""
        return self._connection.execute(
            "SELECT spec_name, spec_id, source, target, state, run_ids "
            "FROM shard_migrations ORDER BY spec_name"
        ).fetchall()

    def begin_migration(
        self, spec_name: str, spec_id: int, source: int, target: int, run_ids: list[int]
    ) -> None:
        """Journal a migration in state ``copying`` (before any row moves)."""
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT INTO shard_migrations "
                "(spec_name, spec_id, source, target, state, run_ids) "
                "VALUES (?, ?, ?, ?, 'copying', ?)",
                (spec_name, int(spec_id), int(source), int(target), json.dumps(run_ids)),
            )

    def flip(self, spec_name: str, target: int, run_ids: list[int]) -> None:
        """Commit the new placement in **one** catalog transaction.

        The journal state, the spec override and every run override flip
        together — a reader resolving a run either sees the old placement
        (source rows still present) or the new one (target copy already
        committed), never a mix.
        """
        with self._lock, self._connection:
            self._connection.execute(
                "UPDATE shard_migrations SET state = 'flipped' WHERE spec_name = ?",
                (spec_name,),
            )
            self._connection.execute(
                "INSERT OR REPLACE INTO shard_routing (spec_name, shard) VALUES (?, ?)",
                (spec_name, int(target)),
            )
            self._connection.executemany(
                "INSERT OR REPLACE INTO run_routing (run_id, shard) VALUES (?, ?)",
                [(int(run_id), int(target)) for run_id in run_ids],
            )
        spec_overrides = dict(self._spec_overrides)
        spec_overrides[spec_name] = int(target)
        run_overrides = dict(self._run_overrides)
        for run_id in run_ids:
            run_overrides[int(run_id)] = int(target)
        # atomic reference swaps: concurrent readers see old or new, never half
        self._spec_overrides = spec_overrides
        self._run_overrides = run_overrides

    def clear_migration(self, spec_name: str) -> None:
        """Drop the journal row of a completed (or rolled-back) migration."""
        with self._lock, self._connection:
            self._connection.execute(
                "DELETE FROM shard_migrations WHERE spec_name = ?", (spec_name,)
            )


# ----------------------------------------------------------------------
# the online rebalance path
# ----------------------------------------------------------------------
def _copy_spec_rows(
    store: "ShardedProvenanceStore", spec_id: int, source: int, target: int
) -> None:
    """Copy one spec's rows from *source* into *target*, ids unchanged.

    One ``BEGIN IMMEDIATE`` transaction on the target shard: a crash
    mid-copy rolls the whole copy back inside SQLite, so the journal's
    ``copying`` state only ever has to undo a *committed* copy.  Global
    ids are unique across shards, so the rows land verbatim — every fetch
    helper works on the relocated rows unchanged.
    """
    source_connection = store._stores[source]._connection
    target_connection = store._stores[target]._connection
    spec_row = source_connection.execute(
        "SELECT spec_id, name, document, n_modules, n_edges, created_at "
        "FROM specifications WHERE spec_id = ?",
        (spec_id,),
    ).fetchone()
    if spec_row is None:  # pragma: no cover - checked by migrate_spec
        raise StorageError(f"no specification with id {spec_id} in shard {source}")
    run_rows = source_connection.execute(
        "SELECT run_id, spec_id, name, document, n_vertices, n_edges, "
        "spec_scheme, created_at FROM runs WHERE spec_id = ? ORDER BY run_id",
        (spec_id,),
    ).fetchall()
    dependents = {
        table: source_connection.execute(
            f"SELECT * FROM {table} WHERE run_id IN "  # noqa: S608 - fixed names
            "(SELECT run_id FROM runs WHERE spec_id = ?)",
            (spec_id,),
        ).fetchall()
        for table in _RUN_TABLES
    }
    with store._locks[target]:
        target_connection.execute("BEGIN IMMEDIATE")
        try:
            target_connection.execute(
                "INSERT INTO specifications "
                "(spec_id, name, document, n_modules, n_edges, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                tuple(spec_row),
            )
            target_connection.executemany(
                "INSERT INTO runs (run_id, spec_id, name, document, n_vertices, "
                "n_edges, spec_scheme, created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                [tuple(row) for row in run_rows],
            )
            for table, rows in dependents.items():
                if not rows:
                    continue
                placeholders = ", ".join("?" for _ in rows[0].keys())
                columns = ", ".join(rows[0].keys())
                target_connection.executemany(
                    f"INSERT INTO {table} ({columns}) VALUES ({placeholders})",  # noqa: S608
                    [tuple(row) for row in rows],
                )
            target_connection.execute("COMMIT")
        except BaseException:
            target_connection.execute("ROLLBACK")
            raise


def _delete_spec_rows(connection: sqlite3.Connection, spec_id: int) -> None:
    """Drop one spec's rows (runs cascade their labels and data rows)."""
    with connection:
        connection.execute("DELETE FROM runs WHERE spec_id = ?", (spec_id,))
        connection.execute("DELETE FROM specifications WHERE spec_id = ?", (spec_id,))


def _purge_shard_caches(shard_store, spec_id: int, run_ids: list[int]) -> None:
    """Evict a migrated spec from one shard store's in-memory caches."""
    shard_store._spec_cache.pop(spec_id, None)
    for cache in (shard_store._index_cache, shard_store._spec_kernel_cache):
        for key in [key for key in cache if key[0] == spec_id]:
            cache.pop(key, None)
    for run_id in run_ids:
        shard_store._stored_run_cache.pop(run_id, None)
        shard_store._engine_cache.pop(run_id, None)


def migrate_spec(
    store: "ShardedProvenanceStore", name: str, target: Optional[int] = None
) -> dict:
    """Relocate every run of specification *name* onto shard *target*.

    ``target=None`` auto-picks the least-loaded shard (fewest runs,
    excluding the current one) — the ``split`` form of the maintenance
    path.  Returns a summary dict (spec, source, target, moved run
    count).  Rebalancing onto the current shard is a no-op.

    The source shard's write lock is held across copy → flip → delete, so
    ingest of the migrating spec cannot slip rows into the source behind
    the copy; readers take no locks and stay unblocked (WAL).  A failure
    anywhere runs :func:`recover_migrations` before re-raising, so the
    store is back to exactly one valid placement even without a reopen.
    """
    store._require_open()
    if store.shard_count < 2:
        raise StorageError("rebalance needs a store with at least 2 shards")
    source = store._routed_shard_of_spec(name)
    if target is None:
        loads = store._shard_run_counts()
        target = min(
            (shard for shard in range(store.shard_count) if shard != source),
            key=lambda shard: (loads[shard], shard),
        )
    target = int(target)
    if not 0 <= target < store.shard_count:
        raise StorageError(
            f"target shard {target} out of range; store has shards "
            f"0..{store.shard_count - 1}"
        )
    routing = store._routing
    with store._migration_lock, store._locks[source]:
        source_connection = store._stores[source]._connection
        row = source_connection.execute(
            "SELECT spec_id FROM specifications WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no specification named {name!r}")
        spec_id = int(row["spec_id"])
        if target == source:
            return {"specification": name, "source": source, "target": target, "moved_runs": 0}
        run_ids = [
            int(run_row["run_id"])
            for run_row in source_connection.execute(
                "SELECT run_id FROM runs WHERE spec_id = ? ORDER BY run_id", (spec_id,)
            ).fetchall()
        ]
        routing.begin_migration(name, spec_id, source, target, run_ids)
        try:
            _copy_spec_rows(store, spec_id, source, target)
            # the widest crash window: both shards hold a full copy and the
            # catalog still points at the source
            fault_point("routing.migrate")
            routing.flip(name, target, run_ids)
            _delete_spec_rows(source_connection, spec_id)
            routing.clear_migration(name)
        except BaseException:
            with suppressed():
                _recover_locked(store, hold_source=source)
            raise
        _purge_shard_caches(store._stores[source], spec_id, run_ids)
        store._note_shard_write(source)
        store._note_shard_write(target)
    # compact both shards: the copy filled the target's WAL and the delete
    # filled the source's.  Checkpointing here lets post-rebalance readers
    # (and replica snapshots) serve from the plain main file instead of
    # resolving every page through a migration-sized WAL.  Best-effort —
    # a long-lived reader snapshot can legally block truncation.
    for shard in (source, target):
        try:
            with store._locks[shard]:
                store._stores[shard]._connection.execute(
                    "PRAGMA wal_checkpoint(TRUNCATE)"
                )
        except sqlite3.Error:  # pragma: no cover - compaction is optional
            pass
    return {
        "specification": name,
        "source": source,
        "target": target,
        "moved_runs": len(run_ids),
    }


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
def _recover_locked(store: "ShardedProvenanceStore", hold_source: Optional[int] = None):
    """Repair every journaled migration; *hold_source* is already locked."""
    routing = store._routing
    repaired: list[dict] = []
    for row in routing.journal_rows():
        spec_name = row["spec_name"]
        spec_id = int(row["spec_id"])
        source = int(row["source"])
        target = int(row["target"])
        state = row["state"]
        run_ids = [int(run_id) for run_id in json.loads(row["run_ids"])]
        if state == "copying":
            # the flip never committed: roll back by dropping the target copy
            with store._locks[target]:
                _delete_spec_rows(store._stores[target]._connection, spec_id)
            _purge_shard_caches(store._stores[target], spec_id, run_ids)
        else:
            # the catalog already points at the target: roll forward by
            # finishing the source delete
            if hold_source == source:
                _delete_spec_rows(store._stores[source]._connection, spec_id)
            else:
                with store._locks[source]:
                    _delete_spec_rows(store._stores[source]._connection, spec_id)
            _purge_shard_caches(store._stores[source], spec_id, run_ids)
        routing.clear_migration(spec_name)
        repaired.append(
            {
                "specification": spec_name,
                "state": state,
                "resolved_to": source if state == "copying" else target,
            }
        )
    if repaired:
        routing.reload()
    return repaired


def recover_migrations(store: "ShardedProvenanceStore") -> list[dict]:
    """Resolve every half-done migration to exactly one valid placement.

    Runs on store open (and after a failed :func:`migrate_spec`) with
    fault injection suppressed — recovery must never be re-killed by the
    rule that killed the migration it is repairing.
    """
    with suppressed(), store._migration_lock:
        return _recover_locked(store)
