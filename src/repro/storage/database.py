"""SQLite connection management for the provenance store."""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Union

from repro.exceptions import StorageError
from repro.faults import fault_point
from repro.storage.schema import (
    SCHEMA_INDEX_STATEMENTS,
    SCHEMA_MIGRATIONS,
    SCHEMA_STATEMENTS,
    SCHEMA_VERSION,
)

__all__ = [
    "connect",
    "initialize_schema",
    "LABEL_FETCH_CHUNK",
    "SQLITE_MAX_VARIABLE_NUMBER",
    "row_value_chunk",
    "iter_value_chunks",
]

PathLike = Union[str, Path]

#: how many (module, instance) executions one batched label SELECT resolves;
#: kept well under SQLite's default host-parameter limit (2 params each)
LABEL_FETCH_CHUNK = 400

#: SQLite's historical default for SQLITE_MAX_VARIABLE_NUMBER — the lowest
#: host-parameter limit a deployed SQLite is likely to enforce (3.32 raised
#: the default to 32766, but binaries built with the old limit are common)
SQLITE_MAX_VARIABLE_NUMBER = 999


def row_value_chunk(columns_per_row: int = 2, reserved: int = 1) -> int:
    """Largest row-value ``IN`` chunk whose parameters fit the SQLite limit.

    A chunk of ``k`` rows binds ``k * columns_per_row`` parameters plus
    *reserved* fixed ones (the ``run_id``).  The returned size is
    :data:`LABEL_FETCH_CHUNK` capped so that total never exceeds
    :data:`SQLITE_MAX_VARIABLE_NUMBER` — today's 2-column chunks of 400
    bind 801 parameters and pass untouched, but adding a column to the row
    value can no longer silently overflow the limit.
    """
    if columns_per_row < 1:
        raise ValueError("columns_per_row must be at least 1")
    if reserved < 0:
        raise ValueError("reserved must be non-negative")
    hard_cap = (SQLITE_MAX_VARIABLE_NUMBER - reserved) // columns_per_row
    if hard_cap < 1:
        raise ValueError(
            f"{columns_per_row} columns per row cannot fit SQLite's "
            f"{SQLITE_MAX_VARIABLE_NUMBER}-parameter limit"
        )
    return max(1, min(LABEL_FETCH_CHUNK, hard_cap))


def iter_value_chunks(values, *, columns_per_row: int = 1, reserved: int = 0):
    """Split *values* into ``IN``-list chunks under the host-parameter limit.

    The one chunking loop behind every batched ``IN`` in the store — the
    label fetches of ``_StoredRunIndex``, the streaming array loader, and
    the SQL pushdown's run/module lists all size their chunks here.  Yields
    ``(chunk, placeholders)`` pairs where *placeholders* is the ready-made
    fragment for the ``IN (...)`` clause: ``"?, ?, ?"`` for single-column
    values, ``"(?, ?), (?, ?)"`` row values otherwise (for use with
    ``IN (VALUES ...)``).
    """
    values = list(values)
    chunk_size = row_value_chunk(columns_per_row=columns_per_row, reserved=reserved)
    if columns_per_row == 1:
        template = "?"
    else:
        template = "(" + ", ".join("?" * columns_per_row) + ")"
    for start in range(0, len(values), chunk_size):
        chunk = values[start : start + chunk_size]
        yield chunk, ", ".join([template] * len(chunk))


def connect(
    path: PathLike = ":memory:", *, journal_mode: str = "MEMORY"
) -> sqlite3.Connection:
    """Open a SQLite connection with the pragmas the store relies on.

    ``path`` may be ``":memory:"`` for an ephemeral store.  Foreign keys are
    enforced and rows are returned as :class:`sqlite3.Row` so columns can be
    accessed by name.

    ``journal_mode`` defaults to the single-file store's in-memory rollback
    journal; the sharded store opens its shard files in ``"WAL"`` mode so an
    ingest worker committing a batch never blocks the concurrent readers of
    the parallel query executor (``synchronous=NORMAL`` is the recommended
    — and still durable-on-app-crash — pairing for WAL commits).  A busy
    timeout covers the brief write-lock handovers between the shard's main
    connection and its ingest workers.
    """
    if journal_mode.upper() not in ("MEMORY", "WAL", "DELETE", "TRUNCATE", "PERSIST", "OFF"):
        raise StorageError(f"unsupported journal mode {journal_mode!r}")
    try:
        # deterministic fault injection (sql-kind faults land in the
        # sqlite3.Error handler below, so callers see the usual typed
        # StorageError); see repro.faults
        fault_point("store.connect")
        # when the sqlite3 module serializes all access itself
        # (threadsafety 3, the norm on modern CPython builds), the store's
        # connections may be shared across threads — a sharded store's
        # readers then don't need a connection per thread; older builds
        # keep the per-thread guard
        connection = sqlite3.connect(
            str(path), check_same_thread=sqlite3.threadsafety < 3
        )
    except sqlite3.Error as exc:
        raise StorageError(f"could not open provenance database {path!r}: {exc}") from exc
    connection.row_factory = sqlite3.Row
    connection.execute("PRAGMA foreign_keys = ON")
    connection.execute(f"PRAGMA journal_mode = {journal_mode.upper()}")
    if journal_mode.upper() == "WAL":
        connection.execute("PRAGMA synchronous = NORMAL")
    connection.execute("PRAGMA busy_timeout = 30000")
    return connection


def initialize_schema(connection: sqlite3.Connection) -> None:
    """Create all tables and indexes; safe to call on an existing database.

    Databases written by earlier schema versions are migrated in place:
    columns added since (see :data:`~repro.storage.schema.SCHEMA_MIGRATIONS`)
    are ``ALTER TABLE``-ed on, with ``NULL`` for pre-existing rows.
    """
    try:
        with connection:
            for statement in SCHEMA_STATEMENTS:
                connection.execute(statement)
            for table, column, declaration in SCHEMA_MIGRATIONS:
                existing = {
                    row[1]
                    for row in connection.execute(f"PRAGMA table_info({table})")
                }
                if column not in existing:
                    connection.execute(
                        f"ALTER TABLE {table} ADD COLUMN {column} {declaration}"
                    )
            # index statements covering migrated columns must come after the
            # ALTER TABLEs so a version-1 database migrates cleanly
            for statement in SCHEMA_INDEX_STATEMENTS:
                connection.execute(statement)
            connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
    except sqlite3.Error as exc:
        raise StorageError(f"could not initialize provenance schema: {exc}") from exc
