"""SQLite connection management for the provenance store."""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Union

from repro.exceptions import StorageError
from repro.storage.schema import SCHEMA_MIGRATIONS, SCHEMA_STATEMENTS, SCHEMA_VERSION

__all__ = ["connect", "initialize_schema"]

PathLike = Union[str, Path]


def connect(
    path: PathLike = ":memory:", *, journal_mode: str = "MEMORY"
) -> sqlite3.Connection:
    """Open a SQLite connection with the pragmas the store relies on.

    ``path`` may be ``":memory:"`` for an ephemeral store.  Foreign keys are
    enforced and rows are returned as :class:`sqlite3.Row` so columns can be
    accessed by name.

    ``journal_mode`` defaults to the single-file store's in-memory rollback
    journal; the sharded store opens its shard files in ``"WAL"`` mode so an
    ingest worker committing a batch never blocks the concurrent readers of
    the parallel query executor (``synchronous=NORMAL`` is the recommended
    — and still durable-on-app-crash — pairing for WAL commits).  A busy
    timeout covers the brief write-lock handovers between the shard's main
    connection and its ingest workers.
    """
    if journal_mode.upper() not in ("MEMORY", "WAL", "DELETE", "TRUNCATE", "PERSIST", "OFF"):
        raise StorageError(f"unsupported journal mode {journal_mode!r}")
    try:
        # when the sqlite3 module serializes all access itself
        # (threadsafety 3, the norm on modern CPython builds), the store's
        # connections may be shared across threads — a sharded store's
        # readers then don't need a connection per thread; older builds
        # keep the per-thread guard
        connection = sqlite3.connect(
            str(path), check_same_thread=sqlite3.threadsafety < 3
        )
    except sqlite3.Error as exc:
        raise StorageError(f"could not open provenance database {path!r}: {exc}") from exc
    connection.row_factory = sqlite3.Row
    connection.execute("PRAGMA foreign_keys = ON")
    connection.execute(f"PRAGMA journal_mode = {journal_mode.upper()}")
    if journal_mode.upper() == "WAL":
        connection.execute("PRAGMA synchronous = NORMAL")
    connection.execute("PRAGMA busy_timeout = 30000")
    return connection


def initialize_schema(connection: sqlite3.Connection) -> None:
    """Create all tables and indexes; safe to call on an existing database.

    Databases written by earlier schema versions are migrated in place:
    columns added since (see :data:`~repro.storage.schema.SCHEMA_MIGRATIONS`)
    are ``ALTER TABLE``-ed on, with ``NULL`` for pre-existing rows.
    """
    try:
        with connection:
            for statement in SCHEMA_STATEMENTS:
                connection.execute(statement)
            for table, column, declaration in SCHEMA_MIGRATIONS:
                existing = {
                    row[1]
                    for row in connection.execute(f"PRAGMA table_info({table})")
                }
                if column not in existing:
                    connection.execute(
                        f"ALTER TABLE {table} ADD COLUMN {column} {declaration}"
                    )
            connection.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
    except sqlite3.Error as exc:
        raise StorageError(f"could not initialize provenance schema: {exc}") from exc
