"""SQL pushdown: answer stored-run dependency sweeps inside SQLite.

A stored run's labels are three context coordinates per execution plus the
origin module name — and the Algorithm-3 sweep over them decomposes into two
pieces a B-tree can answer:

* **range branch** — rows on the coordinate fast path.  The kernel computes
  ``fast_mask & fast``; substituting the definitions, a downstream row
  answers ``True`` on the fast path iff ``q1 > A1 AND q2 > A2 AND q3 < A3``
  (all three strict, anchor coordinates ``A*``), and an upstream row iff the
  three comparisons flip.  Proof sketch: ``fast`` is ``A1 < q1 AND A3 > q3``;
  given ``A3 > q3``, the mask ``(A2 - q2) * (A3 - q3) < 0`` holds exactly
  when ``A2 < q2``.  That conjunction is one seek + scan of the
  ``idx_run_labels_pushdown_range(run_id, q1, q2, q3, ...)`` covering index.

* **module branch** — rows that fall through to the specification labels,
  i.e. rows with ``(A2 - q2) * (A3 - q3) >= 0`` (the mask is symmetric in
  the two directions).  The kernel answers those from the spec-level
  reachability of the two *origin modules*, which does not depend on the
  run at all — so the set of origin modules the anchor's module reaches
  (or is reached by) is computed once in Python from the compiled spec
  kernel and pushed down as a ``module IN (...)`` list over the
  ``idx_run_labels_pushdown_module(run_id, module, ...)`` covering index.

The two branches partition the candidate rows by the sign of the mask, so a
``UNION ALL``-style collection is duplicate-free; the anchor row itself is
excluded by the strict inequalities in the range branch and explicitly in
the module branch.  Multiple runs are swept in one statement by joining
``run_labels`` to itself on ``run_id`` with the anchor's ``(module,
instance)`` pinned — the anchor seek rides the table's primary key, the
candidate side rides the v3 covering indexes, and only matching rows ever
cross the SQL boundary.  Results are sorted per run into persisted-interner
handle order (``vertex_id``), making answers bit-identical to the streamed
kernel path.
"""

from __future__ import annotations

import sqlite3
from typing import Optional

from repro.exceptions import LabelingError, StorageError, VertexNotFoundError
from repro.faults import fault_point
from repro.labeling.registry import get_scheme
from repro.storage.database import (
    SQLITE_MAX_VARIABLE_NUMBER,
    iter_value_chunks,
    row_value_chunk,
)

__all__ = [
    "scheme_supports_pushdown",
    "reachable_modules",
    "pushdown_sweep",
    "range_branch_sql",
    "module_branch_sql",
]

Execution = tuple[str, int]

#: below this many labeled vertices a streamed kernel sweep is already a
#: handful of microseconds, so the planner's "auto" mode keeps the kernel
#: path and its warm caches (see repro.api.plans)
PUSHDOWN_MIN_ROWS = 256

_SELECT = (
    "SELECT r.run_id, r.module, r.instance, r.vertex_id "
    "FROM run_labels AS a JOIN run_labels AS r ON r.run_id = a.run_id "
)


def scheme_supports_pushdown(scheme_name: str) -> bool:
    """Whether *scheme_name* declares the range-predicate pushdown capability."""
    return bool(getattr(get_scheme(scheme_name), "pushdown", False))


def range_branch_sql(run_count: int, *, downstream: bool) -> str:
    """The coordinate fast-path branch over *run_count* anchored runs."""
    runs = ", ".join("?" * run_count)
    if downstream:
        predicate = "r.q1 > a.q1 AND r.q2 > a.q2 AND r.q3 < a.q3"
    else:
        predicate = "r.q1 < a.q1 AND r.q2 < a.q2 AND r.q3 > a.q3"
    return (
        f"{_SELECT}"
        f"WHERE a.run_id IN ({runs}) AND a.module = ? AND a.instance = ? "
        f"AND {predicate}"
    )


def module_branch_sql(run_count: int, module_count: int) -> str:
    """The spec-label fall-through branch (direction-independent mask)."""
    runs = ", ".join("?" * run_count)
    modules = ", ".join("?" * module_count)
    return (
        f"{_SELECT}"
        f"WHERE a.run_id IN ({runs}) AND a.module = ? AND a.instance = ? "
        f"AND r.module IN ({modules}) "
        "AND (a.q2 - r.q2) * (a.q3 - r.q3) >= 0 "
        "AND (r.module <> a.module OR r.instance <> a.instance)"
    )


def reachable_modules(
    spec_kernel, anchor_module: str, *, downstream: bool
) -> Optional[list[str]]:
    """Origin modules whose fall-through answer is True for *anchor_module*.

    Computed from the compiled spec kernel's own label cache and the spec
    index's ``reaches_many`` — the exact evaluator the streamed kernel
    consults on fall-through rows — so the pushed-down ``module IN`` list
    reproduces the kernel's spec-level answers verbatim.  Returns ``None``
    when the anchor module is not part of the specification (the kernel
    path would never see such an anchor: it has no stored label).
    """
    spec_index = spec_kernel.spec_index
    try:
        anchor_label = spec_kernel._label_of(anchor_module)
    except (LabelingError, VertexNotFoundError, KeyError):
        return None
    modules = list(spec_index.graph.vertices())
    if downstream:
        pairs = [(anchor_label, spec_kernel._label_of(m)) for m in modules]
    else:
        pairs = [(spec_kernel._label_of(m), anchor_label) for m in modules]
    answers = spec_index.reaches_many(pairs)
    return [m for m, answer in zip(modules, answers) if answer]


def _sort_key(row: tuple):
    """Persisted-interner handle order: ``vertex_id`` first, NULLs last.

    Matches the store's canonical ``ORDER BY (vertex_id IS NULL),
    vertex_id, module, instance`` — Python's tuple sort agrees with
    SQLite's BINARY collation on the text column because UTF-8 byte order
    preserves code-point order.
    """
    module, instance, vertex_id = row[1], row[2], row[3]
    return (vertex_id is None, vertex_id if vertex_id is not None else 0, module, instance)


def pushdown_sweep(
    connection: sqlite3.Connection,
    run_ids,
    anchor: Execution,
    modules,
    *,
    downstream: bool,
) -> dict[int, Optional[list[Execution]]]:
    """Answer one anchored sweep for every run in *run_ids* inside SQLite.

    *modules* is the pre-computed fall-through module list (see
    :func:`reachable_modules`).  Returns ``{run_id: [(module, instance),
    ...]}`` in handle order per run, with ``None`` for runs that store no
    label for the anchor (the caller decides whether that is a skipped run
    or an error).  Parameter lists are chunked through the shared
    :func:`~repro.storage.database.iter_value_chunks` helper, so arbitrarily
    many runs and modules stay under SQLite's host-parameter limit.
    """
    # sql-kind faults injected here surface as sqlite3.OperationalError,
    # which the planner degrades to the streamed kernel (see _SweepPlan)
    fault_point("pushdown.sql")
    module, instance = anchor
    run_ids = [int(run_id) for run_id in run_ids]
    modules = list(modules)
    results: dict[int, Optional[list[Execution]]] = {
        run_id: None for run_id in run_ids
    }
    try:
        for run_chunk, run_marks in iter_value_chunks(
            run_ids, columns_per_row=1, reserved=2
        ):
            anchored = connection.execute(
                "SELECT run_id FROM run_labels "
                f"WHERE run_id IN ({run_marks}) AND module = ? AND instance = ?",
                (*run_chunk, module, instance),
            ).fetchall()
            present = [row[0] for row in anchored]
            for run_id in present:
                results[run_id] = []
            if not present:
                continue
            rows: list[tuple] = []
            for sub_chunk, _ in iter_value_chunks(
                present, columns_per_row=1, reserved=2
            ):
                cursor = connection.execute(
                    range_branch_sql(len(sub_chunk), downstream=downstream),
                    (*sub_chunk, module, instance),
                )
                cursor.row_factory = None
                rows.extend(cursor.fetchall())
            # the module branch binds two IN lists at once: size the run
            # chunk as if a maximal module chunk rides along, then size each
            # module chunk against the actual run chunk — worst case
            # 400 + 400 + 2 parameters under the default caps
            module_room = min(
                row_value_chunk(columns_per_row=1, reserved=2),
                (SQLITE_MAX_VARIABLE_NUMBER - 2) // 2,
            )
            for sub_chunk, _ in iter_value_chunks(
                present, columns_per_row=1, reserved=2 + module_room
            ):
                for module_chunk, _ in iter_value_chunks(
                    modules, columns_per_row=1, reserved=2 + len(sub_chunk)
                ):
                    cursor = connection.execute(
                        module_branch_sql(len(sub_chunk), len(module_chunk)),
                        (*sub_chunk, module, instance, *module_chunk),
                    )
                    cursor.row_factory = None
                    rows.extend(cursor.fetchall())
            per_run: dict[int, list[tuple]] = {run_id: [] for run_id in present}
            for row in rows:
                per_run[row[0]].append(row)
            for run_id, run_rows in per_run.items():
                run_rows.sort(key=_sort_key)
                results[run_id] = [(row[1], row[2]) for row in run_rows]
    except sqlite3.Error as exc:
        raise StorageError(f"pushdown sweep failed: {exc}") from exc
    return results
