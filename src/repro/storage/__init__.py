"""SQLite-backed persistence for labeled runs and data provenance.

Two store layouts share one query surface: the classic single-file
:class:`ProvenanceStore` and the write-scalable
:class:`ShardedProvenanceStore` (N WAL-mode shard files, specs routed by a
stable hash, runs ingested per shard concurrently through a persistent
worker pool).  :func:`open_store` picks the right one for a path.
"""

from repro.storage.database import connect, initialize_schema
from repro.storage.schema import SCHEMA_STATEMENTS, SCHEMA_VERSION
from repro.storage.sharded import (
    DEFAULT_SHARDS,
    MAX_SHARDS,
    ShardedProvenanceStore,
    open_store,
    shard_of_run,
    shard_of_spec,
)
from repro.storage.store import ProvenanceStore

__all__ = [
    "connect",
    "initialize_schema",
    "SCHEMA_STATEMENTS",
    "SCHEMA_VERSION",
    "ProvenanceStore",
    "ShardedProvenanceStore",
    "open_store",
    "shard_of_spec",
    "shard_of_run",
    "DEFAULT_SHARDS",
    "MAX_SHARDS",
]
