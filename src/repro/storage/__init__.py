"""SQLite-backed persistence for labeled runs and data provenance."""

from repro.storage.database import connect, initialize_schema
from repro.storage.schema import SCHEMA_STATEMENTS, SCHEMA_VERSION
from repro.storage.store import ProvenanceStore

__all__ = [
    "connect",
    "initialize_schema",
    "SCHEMA_STATEMENTS",
    "SCHEMA_VERSION",
    "ProvenanceStore",
]
