"""Hot-spec read replicas: cheap file copies the executor fans reads over.

A sweep of the hottest specification opens every worker connection
against one shard file.  WAL keeps those readers unblocked, but they all
share one b-tree, one WAL and one wal-index — and while ingest churns
the same shard, every reader also pays to resolve pages through the
growing WAL.  A **read replica** is simply a checkpointed copy of the
owning shard file (taken through SQLite's backup API, so it is a
consistent snapshot even mid-write): the
:class:`~repro.engine.parallel.CrossRunExecutor` round-robins its
per-worker read-only connections over ``[primary] + replicas``, so
hot-spec sweeps stop queueing on one file.

Freshness is a version handshake, mirroring the ``update_version``
tokens the engine layer uses for label invalidation: every write into a
shard bumps that shard's version (:meth:`ReplicaManager.note_write`);
a replica set remembers the version it was copied at.  A stale set is
**invalidated** (readers silently fall back to the primary — bit-identical,
just unfanned) and **refreshed** on the next rotation request by
re-copying the shard file.  Replicas from an earlier process are
discarded on open: their freshness cannot be proven.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path
from typing import Optional, Sequence

from repro.exceptions import StorageError

__all__ = ["ReplicaManager", "REPLICA_DIR_NAME", "MAX_REPLICAS"]

#: subdirectory of the sharded store holding replica files; kept out of
#: the store directory itself so ``glob("shard-*.db")`` shard-count
#: recovery never miscounts replicas as shards
REPLICA_DIR_NAME = "replicas"

#: upper bound on replicas per shard — each is a full file copy; past a
#: handful the copies cost more than the fan-out buys
MAX_REPLICAS = 8


class _ReplicaSet:
    """One shard's attached replicas and the version they were copied at."""

    __slots__ = ("paths", "version", "count")

    def __init__(self, paths: list[str], version: int, count: int) -> None:
        self.paths = paths
        self.version = version
        self.count = count


class ReplicaManager:
    """Per-shard replica sets for one sharded store directory."""

    def __init__(self, directory: Path, shard_paths: Sequence[Path]) -> None:
        self.directory = Path(directory) / REPLICA_DIR_NAME
        self._shard_paths = [str(path) for path in shard_paths]
        self._versions = [0] * len(self._shard_paths)
        self._sets: dict[int, _ReplicaSet] = {}
        self._lock = threading.Lock()
        if self.directory.exists():
            # replicas of a previous process: freshness unprovable, drop them
            for stale in self.directory.glob("shard-*.db"):
                stale.unlink()

    # ------------------------------------------------------------------
    # the write-side handshake
    # ------------------------------------------------------------------
    def note_write(self, shard: int) -> None:
        """Invalidate shard *shard*'s replicas (a write made them stale)."""
        with self._lock:
            self._versions[shard] += 1

    # ------------------------------------------------------------------
    # attach / refresh / serve
    # ------------------------------------------------------------------
    def replicate(self, shard: int, count: int) -> list[str]:
        """Attach *count* read replicas of shard *shard* (re-copying stale ones)."""
        count = int(count)
        if not 1 <= count <= MAX_REPLICAS:
            raise StorageError(
                f"replica count must be between 1 and {MAX_REPLICAS}, got {count}"
            )
        with self._lock:
            return self._copy_locked(shard, count).paths

    def drop(self, shard: int) -> None:
        """Detach (and delete) shard *shard*'s replicas."""
        with self._lock:
            replica_set = self._sets.pop(shard, None)
            if replica_set is not None:
                for path in replica_set.paths:
                    Path(path).unlink(missing_ok=True)

    def rotation(self, shard: int) -> list[str]:
        """The fresh replica paths of *shard*, refreshing a stale set.

        Returns ``[]`` when no replicas are attached.  A stale set (a
        write landed since the last copy) is refreshed here — the
        read-side moment the ``update_version`` handshake resolves —
        so rotations only ever serve bit-identical snapshots.
        """
        replica_set = self._sets.get(shard)
        if replica_set is None:
            return []
        with self._lock:
            replica_set = self._sets.get(shard)
            if replica_set is None:  # pragma: no cover - raced drop
                return []
            if replica_set.version != self._versions[shard]:
                try:
                    replica_set = self._copy_locked(shard, replica_set.count)
                except sqlite3.Error:
                    # a failing refresh must never fail the read — detach
                    # the set and let every reader use the primary
                    self._sets.pop(shard, None)
                    return []
            return replica_set.paths

    def paths_of(self, shard: int) -> list[str]:
        """Attached replica paths of *shard* (no refresh side effect)."""
        replica_set = self._sets.get(shard)
        return list(replica_set.paths) if replica_set is not None else []

    def counts(self) -> dict[int, int]:
        """Attached replica count per shard (diagnostics)."""
        return {shard: len(rs.paths) for shard, rs in self._sets.items()}

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _copy_locked(self, shard: int, count: int) -> _ReplicaSet:
        """(Re)copy shard *shard* into *count* replica files, under the lock."""
        self.directory.mkdir(parents=True, exist_ok=True)
        version = self._versions[shard]
        shard_name = Path(self._shard_paths[shard]).stem
        paths: list[str] = []
        source = sqlite3.connect(self._shard_paths[shard])
        try:
            for index in range(count):
                replica = self.directory / f"{shard_name}-r{index + 1}.db"
                replica.unlink(missing_ok=True)
                destination = sqlite3.connect(str(replica))
                try:
                    # the backup API yields a consistent snapshot even while
                    # writers append to the source WAL; the copy itself is a
                    # plain (journal-less) file, so replica readers never
                    # resolve pages through a WAL
                    source.backup(destination)
                finally:
                    destination.close()
                paths.append(str(replica))
        finally:
            source.close()
        replica_set = _ReplicaSet(paths, version, count)
        self._sets[shard] = replica_set
        return replica_set

    def close(self) -> None:
        """Detach every replica set (files are reaped at next open)."""
        with self._lock:
            self._sets.clear()
