"""Binary pair-workload files: zero-parse replayable query batches.

The text workload format (``module:instance module:instance`` per line)
pays a parse plus a vertex-resolution per pair on every replay.  The binary
format stores the **resolved handles** instead: a 16-byte header (an 8-byte
magic plus the little-endian int64 id of the run the handles belong to)
followed by two little-endian signed 64-bit integer columns, interleaved
row-wise —

``source_id0 target_id0 source_id1 target_id1 ...``

— where the ids are that run's *persisted* interner handles (the
``run_labels.vertex_id`` column), which are stable across store sessions.
The header makes replays self-describing: handles are only meaningful for
the run that issued them, so querying a workload against a different run —
which would silently return answers about the wrong executions — is
rejected up front.  Replaying a matching file is pure I/O plus one
``reaches_many_ids`` call: no parsing, no dictionary lookups.

The on-wire byte order is **always** little-endian, whatever the host:
both codec paths spell the byte order out explicitly (``"<i8"`` for numpy,
``"<...q"`` struct formats for the stdlib fallback), and decoded arrays
are normalized to the host's native order so kernels never operate on
byte-swapped views.  A workload packed on one architecture replays
unchanged on any other — this encoding is also the wire format of the
provenance network service's batch op (:mod:`repro.server.protocol`).

``repro-provenance pack-workload`` converts a text file once;
``repro-provenance query-batch --format bin`` replays it.
"""

from __future__ import annotations

import struct
from array import array
from pathlib import Path
from typing import Optional, Union

from repro.exceptions import SerializationError

try:  # numpy accelerates the (de)serialization but is strictly optional
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = [
    "write_pair_workload",
    "read_pair_workload",
    "encode_pair_workload",
    "decode_pair_workload",
    "WORKLOAD_MAGIC",
]

PathLike = Union[str, Path]

#: first 8 bytes of every binary pair workload (format name + version)
WORKLOAD_MAGIC = b"RPROVW1\x00"

#: header bytes: the magic plus the owning run's little-endian int64 id
_HEADER_BYTES = 16

#: bytes per workload row: two little-endian int64 columns
_ROW_BYTES = 16


def encode_pair_workload(source_ids, target_ids, *, run_id: int) -> bytes:
    """Encode parallel handle arrays as workload bytes (header included).

    The in-memory form of :func:`write_pair_workload` — the network
    protocol ships these bytes as the body of a batch request, so a packed
    workload file replays over a connection without any re-encoding.
    """
    count = len(source_ids)
    if len(target_ids) != count:
        raise SerializationError(
            "source_ids and target_ids must have the same length "
            f"({count} != {len(target_ids)})"
        )
    header = WORKLOAD_MAGIC + int(run_id).to_bytes(8, "little", signed=True)
    if _np is not None:
        flat = _np.empty(2 * count, dtype="<i8")
        flat[0::2] = source_ids
        flat[1::2] = target_ids
        return header + flat.tobytes()
    # explicit little-endian struct format: host-independent by
    # construction, no byteorder branches to keep correct
    flat = []
    for source_id, target_id in zip(source_ids, target_ids):
        flat.append(int(source_id))
        flat.append(int(target_id))
    return header + struct.pack(f"<{2 * count}q", *flat)


def write_pair_workload(path: PathLike, source_ids, target_ids, *, run_id: int) -> int:
    """Write parallel handle arrays as a binary pair workload; returns the pair count.

    *run_id* identifies the stored run whose persisted interner resolved
    the handles; it is embedded in the header and checked on replay.
    """
    payload = encode_pair_workload(source_ids, target_ids, run_id=run_id)
    Path(path).write_bytes(payload)
    return (len(payload) - _HEADER_BYTES) // _ROW_BYTES


def decode_pair_workload(data: bytes, *, expect_run_id: Optional[int] = None):
    """Decode workload bytes into ``(run_id, source_ids, target_ids)``.

    With *expect_run_id* set, a workload packed for a different run is
    rejected — its handles would resolve to the wrong executions.  The
    returned id columns are native-endian whatever the host (the
    little-endian on-disk columns are byte-swapped where needed), so the
    handle arrays feed the kernels directly on any architecture.
    """
    if len(data) < _HEADER_BYTES or data[: len(WORKLOAD_MAGIC)] != WORKLOAD_MAGIC:
        raise SerializationError(
            "not a binary pair workload: missing the RPROVW1 header "
            "(pack text files with `repro-provenance pack-workload`)"
        )
    run_id = int.from_bytes(data[len(WORKLOAD_MAGIC):_HEADER_BYTES], "little", signed=True)
    if expect_run_id is not None and run_id != int(expect_run_id):
        raise SerializationError(
            f"workload was packed against run {run_id}, not run "
            f"{int(expect_run_id)}: handles are only meaningful for the run "
            "that issued them; re-pack the text workload for this run"
        )
    body = data[_HEADER_BYTES:]
    if len(body) % _ROW_BYTES:
        raise SerializationError(
            f"not a binary pair workload: {len(body)} payload bytes is not "
            f"a multiple of {_ROW_BYTES} (two little-endian int64 columns)"
        )
    if _np is not None:
        flat = _np.frombuffer(body, dtype="<i8")
        if not flat.dtype.isnative:
            # big-endian host: normalize to a native int64 copy so every
            # downstream kernel sees plain machine integers
            flat = flat.astype(flat.dtype.newbyteorder("="))
        return run_id, flat[0::2], flat[1::2]
    count = len(body) // 8
    values = struct.unpack(f"<{count}q", body)
    return run_id, array("q", values[0::2]), array("q", values[1::2])


def read_pair_workload(path: PathLike, *, expect_run_id: Optional[int] = None):
    """Read a binary pair workload file into ``(run_id, source_ids, target_ids)``."""
    file_path = Path(path)
    if not file_path.exists():
        raise SerializationError(f"workload file not found: {file_path}")
    return decode_pair_workload(file_path.read_bytes(), expect_run_id=expect_run_id)
