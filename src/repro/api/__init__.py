"""The unified declarative query API.

One session, one entry point, every target: build a
:class:`ProvenanceSession` over a live index, a labeled or still-executing
run, or a provenance store, and ``session.run(query)`` any of the
declarative query objects — :class:`PointQuery`, :class:`BatchQuery`,
:class:`DownstreamQuery`, :class:`UpstreamQuery`, :class:`CrossRunQuery`,
:class:`DataDependencyQuery`.  Queries compile once into plans over the
kernel layer (:mod:`repro.engine`) and execute any number of times; the
scheme-specific fast paths (vectorized kernels, interned handle replay,
the store's label and spec-kernel caches) are picked by the planner from
each target's declared capability flags.
"""

from repro.api.plans import HANDLE_PATH_MIN_PAIRS, QueryPlan, compile_plan
from repro.api.workload import (
    decode_pair_workload,
    read_pair_workload,
    write_pair_workload,
)
from repro.api.queries import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunBatchResult,
    CrossRunPointQuery,
    CrossRunPointResult,
    CrossRunQuery,
    CrossRunSweepResult,
    DataDependencyQuery,
    DownstreamQuery,
    PointQuery,
    UpstreamQuery,
)
from repro.api.session import PROMOTE_AFTER_DEFAULT, ProvenanceSession

__all__ = [
    "ProvenanceSession",
    "PROMOTE_AFTER_DEFAULT",
    "PointQuery",
    "BatchQuery",
    "DownstreamQuery",
    "UpstreamQuery",
    "CrossRunQuery",
    "CrossRunBatchQuery",
    "CrossRunPointQuery",
    "DataDependencyQuery",
    "CrossRunSweepResult",
    "CrossRunBatchResult",
    "CrossRunPointResult",
    "QueryPlan",
    "compile_plan",
    "HANDLE_PATH_MIN_PAIRS",
    "write_pair_workload",
    "read_pair_workload",
    "decode_pair_workload",
]
