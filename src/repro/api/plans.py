"""Compiled query plans: the execute-many half of the session's split.

:meth:`ProvenanceSession.compile` turns one declarative query
(:mod:`repro.api.queries`) into a plan bound to the session's target; the
plan's :meth:`~QueryPlan.execute` can then run any number of times.  The
expensive state a plan needs — compiled engine kernels, interners, the
shared per-specification fall-through kernel — lives in caches (on the
session target or the store), so re-executing a plan pays only the query
itself.

Planning decisions read the target's **declared capability flags**
(:func:`repro.labeling.base.capabilities_of`) — ``handles``,
``sweep_domain``, ``stable_labels`` — never concrete classes, so any
duck-typed ``(D, φ, π)`` object that declares the right capabilities gets
the same plans as the built-in indexes.
"""

from __future__ import annotations

import sqlite3
from typing import Any

from repro.api.queries import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunBatchResult,
    CrossRunPointQuery,
    CrossRunPointResult,
    CrossRunQuery,
    CrossRunSweepResult,
    DataDependencyQuery,
    DownstreamQuery,
    PointQuery,
    UpstreamQuery,
)
from repro.engine.parallel import CrossRunExecutor
from repro.exceptions import LabelingError, QueryPlanError, StorageError
from repro.labeling.base import capabilities_of
from repro.workflow.run import RunVertex

__all__ = [
    "QueryPlan",
    "compile_plan",
    "HANDLE_PATH_MIN_PAIRS",
]

#: stored-run batch workloads at least this large are answered through the
#: run's cached handle-native engine (full label load + compiled kernel);
#: smaller batches fetch only the labels behind the queried pairs — loading
#: a big run's full label set for a handful of interactive queries would
#: never amortize
HANDLE_PATH_MIN_PAIRS = 512

#: in "auto" mode, stored runs below this many labeled vertices keep the
#: streamed-kernel sweep: tiny runs answer in microseconds either way, and
#: the kernel path's warm label/engine caches then keep serving the
#: session's point and batch queries for free
PUSHDOWN_MIN_ROWS = 256


def _pushdown_mode(target: Any, query: Any) -> str:
    """The effective SQL-pushdown mode: per-query override, else session default."""
    mode = getattr(query, "pushdown", None)
    if mode is None:
        mode = getattr(target, "pushdown", "auto")
    return mode


def _as_execution(value: Any) -> tuple:
    """Accept both RunVertex and plain (module, instance) tuples."""
    if isinstance(value, RunVertex):
        return (value.module, value.instance)
    return (str(value[0]), int(value[1]))


class QueryPlan:
    """One query compiled against one session target (execute any number of times)."""

    def __init__(self, target: Any, query: Any) -> None:
        self.target = target
        self.query = query
        if target.kind != "store" and getattr(query, "run_id", None) is not None:
            raise QueryPlanError(
                f"{type(query).__name__}.run_id only applies to store-backed "
                f"sessions; this session fronts {target.describe()}"
            )
        #: the target's update token at compile time; ``execute`` re-checks
        #: it so a plan compiled before an edge update never answers from
        #: plan-local state derived from the pre-update labels
        self.compiled_version = self.version_token()

    def version_token(self):
        """The target's current update token (``None`` = never invalidates)."""
        return self.target.version_token()

    @property
    def stale(self) -> bool:
        """Whether the target mutated after this plan was compiled."""
        return self.version_token() != self.compiled_version

    def _refresh_if_stale(self) -> None:
        current = self.version_token()
        if current != self.compiled_version:
            self.compiled_version = current
            self._invalidate()

    def _invalidate(self) -> None:
        """Drop plan-local state derived from the target's labels.

        The engine layer independently re-checks the same token (so even a
        subclass that forgets to override this cannot serve a pre-update
        answer through the engine); plans that memoize anything of their
        own must clear it here.
        """

    def execute(self):  # pragma: no cover - subclasses implement
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(target={self.target.describe()}, "
            f"query={self.query!r})"
        )


class _PointPlan(QueryPlan):
    """A single pair through the hot path of whatever the target caches."""

    def execute(self) -> bool:
        query = self.query
        self._refresh_if_stale()
        if self.target.kind == "store":
            # per-pair SQL while the run is cold; the target transparently
            # promotes hot runs to their compiled engine (see
            # _StoreTarget.point_query and ProvenanceSession.cache_stats)
            return self.target.point_query(
                self.target.require_run_id(query),
                _as_execution(query.source),
                _as_execution(query.target),
            )
        # the engine's hot-pair LRU serves repeated point queries in O(1)
        return self.target.engine().reaches(query.source, query.target)


class _BatchPlan(QueryPlan):
    """A whole workload through the compiled kernel of the target."""

    def execute(self) -> list:
        query = self.query
        self._refresh_if_stale()
        if query.handle_native:
            engine = (
                self.target.store.query_engine(self.target.require_run_id(query))
                if self.target.kind == "store"
                else self.target.engine()
            )
            answers = engine.reaches_many_ids(query.source_ids, query.target_ids)
            return answers if isinstance(answers, list) else list(answers)
        pairs = (
            query.pairs
            if isinstance(query.pairs, (list, tuple))
            else list(query.pairs)
        )
        if self.target.kind == "store":
            run_id = self.target.require_run_id(query)
            store = self.target.store
            if (
                len(pairs) >= HANDLE_PATH_MIN_PAIRS
                or store.has_compiled_engine(run_id)
            ):
                # Large (or already-compiled) workloads: intern the whole
                # batch once against the cached engine and replay handles.
                engine = store.query_engine(run_id)
                try:
                    source_ids, target_ids = engine.intern_pairs(
                        [
                            (_as_execution(source), _as_execution(target))
                            for source, target in pairs
                        ]
                    )
                except LabelingError as exc:
                    # match the label-fetch path: unknown executions are a
                    # storage-level error carrying the run context
                    raise StorageError(f"run {run_id}: {exc}") from None
                answers = engine.reaches_many_ids(source_ids, target_ids)
                return answers if isinstance(answers, list) else list(answers)
            return store._reaches_batch(run_id, pairs)
        return self.target.engine().reaches_batch(pairs)


class _SweepPlan(QueryPlan):
    """An anchored dependency sweep over the target's whole vertex universe."""

    downstream = True

    def execute(self) -> list:
        query = self.query
        self._refresh_if_stale()
        if self.target.kind == "store":
            run_id = self.target.require_run_id(query)
            store = self.target.store
            if self._use_pushdown(store, run_id):
                try:
                    return store._dependency_sweep_pushdown(
                        run_id, query.execution, downstream=self.downstream
                    )
                except sqlite3.OperationalError:
                    # graceful degradation: a failing SQL path (locked or
                    # corrupted index, injected fault) falls back to the
                    # streamed kernel, which answers bit-identically —
                    # applies even under pushdown="always", where degraded
                    # means slower, never wrong
                    store.note_degraded("pushdown_fallback")
            return store._dependency_sweep(
                run_id, query.execution, downstream=self.downstream
            )
        engine = self.target.engine()
        index = engine.index
        if not capabilities_of(index).sweep_domain:
            raise QueryPlanError(
                f"{type(index).__name__} cannot enumerate its labeled "
                "executions, so dependency sweeps cannot be planned over it"
            )
        return engine.dependency_sweep(query.execution, downstream=self.downstream)

    def _use_pushdown(self, store: Any, run_id: int) -> bool:
        """SQL vs streamed kernel for one stored-run sweep.

        ``never`` keeps the kernel; ``always`` demands the pushdown (a plan
        error on schemes without the capability); ``auto`` pushes down when
        the run's scheme is capable, the run is big enough for the SQL
        round trips to win (:data:`PUSHDOWN_MIN_ROWS`), and no compiled
        engine is already warm (a paid-for kernel beats re-planning).
        """
        mode = _pushdown_mode(self.target, self.query)
        if mode == "never":
            return False
        scheme, capable, n_vertices = store.pushdown_profile(run_id)
        if mode == "always":
            if not capable:
                raise QueryPlanError(
                    f"scheme {scheme!r} does not declare the SQL pushdown "
                    "capability; use pushdown='auto' or 'never'"
                )
            return True
        return (
            capable
            and n_vertices >= PUSHDOWN_MIN_ROWS
            and not store.has_compiled_engine(run_id)
        )


class _DownstreamPlan(_SweepPlan):
    downstream = True


class _UpstreamPlan(_SweepPlan):
    downstream = False


class _CrossRunPlanBase(QueryPlan):
    """Shared plumbing of the cross-run plans: store-only, one executor.

    The per-specification fall-through kernel (the expensive, ``nG²``-ish
    part of a skeleton kernel) is compiled **once** via the store's
    per-spec cache; each run then contributes only a streamed
    :class:`~repro.storage.store.RunLabelArrays` fetch plus one vectorized
    kernel evaluation.  The :class:`~repro.engine.parallel.CrossRunExecutor`
    prefetches runs in chunks (one ordered SQL scan each) and fans the
    independent per-run payloads across a worker pool, falling back to the
    sequential PR 3 streaming path for small run counts.
    """

    def __init__(self, target: Any, query: Any) -> None:
        super().__init__(target, query)
        if target.kind != "store":
            raise QueryPlanError(
                f"{type(query).__name__} sweeps stored runs; this session "
                f"fronts {target.describe()}"
            )
        # compiled once with the plan: re-executions reuse the executor,
        # its resolved REPRO_PARALLEL mode, and the store-owned persistent
        # worker pool (lazily started on the first parallel execution and
        # closed with the store), so a monitoring loop re-executing one
        # plan pays neither pool startup nor process-mode re-pickling
        workers = query.workers
        if workers is None:
            # replica awareness: a spec whose shard carries attached read
            # replicas can serve one worker connection per file, so the
            # fan width floors the auto worker count — the auto sizing
            # would otherwise stay sequential on small hosts and leave
            # the replica set idle
            fan_of = getattr(target.store, "read_fan_of", None)
            if fan_of is not None:
                fan = fan_of(query.specification)
                if fan > 1:
                    from repro.engine.parallel import MAX_AUTO_WORKERS

                    workers = min(fan, MAX_AUTO_WORKERS)
        self._executor = CrossRunExecutor(target.store, workers=workers)


class _CrossRunPlan(_CrossRunPlanBase):
    """Sweep all runs of one specification through a shared spec kernel."""

    def execute(self) -> CrossRunSweepResult:
        query = self.query
        anchor = _as_execution(query.execution)
        if self._use_pushdown():
            try:
                per_run, skipped = self._executor.sweep_pushdown(
                    query.specification, anchor, query.direction
                )
            except sqlite3.OperationalError:
                # same degradation as _SweepPlan: the streamed kernel sweep
                # answers bit-identically when the SQL path fails
                self.target.store.note_degraded("pushdown_fallback")
                per_run, skipped = self._executor.sweep(
                    query.specification, anchor, query.direction
                )
        else:
            per_run, skipped = self._executor.sweep(
                query.specification, anchor, query.direction
            )
        return CrossRunSweepResult(
            specification=query.specification,
            execution=anchor,
            direction=query.direction,
            per_run=per_run,
            skipped_runs=skipped,
        )

    def _use_pushdown(self) -> bool:
        """SQL vs streamed kernel for the whole cross-run sweep.

        The sweep is pushed down only when **every** run of the
        specification was labeled with a pushdown-capable scheme (mixed or
        kernel-only schemes keep the streamed path; ``always`` raises on
        them).  No size heuristic here: a cross-run sweep touches many
        runs, so the SQL path's fixed costs always amortize.
        """
        from repro.storage.pushdown import scheme_supports_pushdown

        mode = _pushdown_mode(self.target, self.query)
        if mode == "never":
            return False
        runs = self.target.store.list_runs(self.query.specification)
        schemes = {row["spec_scheme"] or "tcm" for row in runs}
        capable = all(scheme_supports_pushdown(scheme) for scheme in schemes)
        if mode == "always":
            if not capable:
                incapable = sorted(
                    scheme for scheme in schemes
                    if not scheme_supports_pushdown(scheme)
                )
                raise QueryPlanError(
                    f"scheme(s) {incapable} do not declare the SQL pushdown "
                    "capability; use pushdown='auto' or 'never'"
                )
            return True
        return capable and bool(schemes)


class _CrossRunBatchPlan(_CrossRunPlanBase):
    """The same pair workload against every run: a runs x pairs matrix."""

    def execute(self) -> CrossRunBatchResult:
        query = self.query
        pairs = [
            (_as_execution(source), _as_execution(target))
            for source, target in query.pairs
        ]
        per_run, skipped = self._executor.batch(query.specification, pairs)
        return CrossRunBatchResult(
            specification=query.specification,
            pairs=pairs,
            per_run=per_run,
            skipped_runs=skipped,
        )


class _CrossRunPointPlan(_CrossRunPlanBase):
    """One pair against every run (a single-column batch)."""

    def execute(self) -> CrossRunPointResult:
        query = self.query
        source = _as_execution(query.source)
        target = _as_execution(query.target)
        per_run, skipped = self._executor.batch(
            query.specification, [(source, target)]
        )
        return CrossRunPointResult(
            specification=query.specification,
            source=source,
            target=target,
            per_run={run_id: bool(answers[0]) for run_id, answers in per_run.items()},
            skipped_runs=skipped,
        )


class _DataDependencyPlan(QueryPlan):
    """Item-to-item / item-to-execution dependency over recorded dataflow."""

    def execute(self) -> bool:
        query = self.query
        if self.target.kind == "store":
            run_id = self.target.require_run_id(query)
            store = self.target.store
            if query.on_item is not None:
                return store.data_depends_on_data(run_id, query.item, query.on_item)
            return store.data_depends_on_module(
                run_id, query.item, _as_execution(query.on_module)
            )
        if self.target.kind == "online":
            online = self.target.online
            if query.on_item is not None:
                return online.data_depends_on_data(query.item, query.on_item)
            return online.data_depends_on_module(
                query.item, RunVertex(*_as_execution(query.on_module))
            )
        raise QueryPlanError(
            "DataDependencyQuery needs recorded dataflow (a store or an "
            f"online run); this session fronts {self.target.describe()}"
        )


_PLAN_OF = {
    PointQuery: _PointPlan,
    BatchQuery: _BatchPlan,
    DownstreamQuery: _DownstreamPlan,
    UpstreamQuery: _UpstreamPlan,
    CrossRunQuery: _CrossRunPlan,
    CrossRunBatchQuery: _CrossRunBatchPlan,
    CrossRunPointQuery: _CrossRunPointPlan,
    DataDependencyQuery: _DataDependencyPlan,
}


def compile_plan(target: Any, query: Any) -> QueryPlan:
    """Compile one declarative query against one session target."""
    plan_class = _PLAN_OF.get(type(query))
    if plan_class is None:
        raise QueryPlanError(
            f"not a declarative query object: {type(query).__name__!r}"
        )
    return plan_class(target, query)
