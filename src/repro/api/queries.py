"""The declarative query objects of the unified provenance surface.

A query is pure data: what to ask, not how to answer it.  The session
(:class:`~repro.api.session.ProvenanceSession`) compiles each query into an
executable plan over the kernel layer (:mod:`repro.engine`) for whatever
target it fronts — a live index, a labeled or online run, or a provenance
store — so the same query object runs unchanged against any of them.

Executions may be written as :class:`~repro.workflow.run.RunVertex`
instances or plain ``(module, instance)`` tuples, matching the provenance
store's convention.  ``run_id`` selects the stored run for store-backed
sessions and must be omitted for in-memory targets (a session fronting one
index has exactly one run to query).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.exceptions import QueryPlanError

__all__ = [
    "PointQuery",
    "BatchQuery",
    "DownstreamQuery",
    "UpstreamQuery",
    "CrossRunQuery",
    "CrossRunBatchQuery",
    "CrossRunPointQuery",
    "DataDependencyQuery",
    "CrossRunSweepResult",
    "CrossRunBatchResult",
    "CrossRunPointResult",
    "PUSHDOWN_MODES",
]

#: per-query override for the store planner's SQL-vs-kernel sweep choice;
#: ``None`` defers to the session-wide default (see ProvenanceSession)
PUSHDOWN_MODES = ("auto", "always", "never")


def _validate_pushdown(query_name: str, mode) -> None:
    if mode is not None and mode not in PUSHDOWN_MODES:
        raise QueryPlanError(
            f"{query_name} pushdown must be one of {PUSHDOWN_MODES} or None, "
            f"got {mode!r}"
        )


@dataclass(frozen=True)
class PointQuery:
    """One reachability question: does *source* reach *target*?

    Answers ``bool``.  Point queries on in-memory targets are served
    through the engine's hot-pair LRU cache; :meth:`ProvenanceSession.run_many`
    additionally fuses point queries on the same run into one batch.
    """

    source: Any
    target: Any
    run_id: Optional[int] = None


@dataclass(frozen=True)
class BatchQuery:
    """A whole workload of ``(source, target)`` reachability questions.

    Answers one boolean per pair, in order.  Give either *pairs* (vertex
    objects, resolved once at the boundary) or the pre-interned
    *source_ids*/*target_ids* parallel handle arrays (the zero-parse replay
    form — e.g. a binary workload file resolved against a stored run's
    persisted interner).
    """

    pairs: Optional[Sequence[tuple]] = None
    run_id: Optional[int] = None
    source_ids: Optional[Sequence[int]] = None
    target_ids: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        by_pairs = self.pairs is not None
        by_ids = self.source_ids is not None or self.target_ids is not None
        if by_ids and (self.source_ids is None or self.target_ids is None):
            raise QueryPlanError(
                "BatchQuery needs both source_ids and target_ids for a "
                "handle-native batch"
            )
        if by_pairs == by_ids:
            raise QueryPlanError(
                "BatchQuery takes exactly one of pairs or "
                "(source_ids, target_ids)"
            )

    @property
    def handle_native(self) -> bool:
        """Whether the workload arrives pre-interned as handle arrays."""
        return self.source_ids is not None


@dataclass(frozen=True)
class DownstreamQuery:
    """Every execution that depends on *execution* (excluding itself).

    The "which downstream results were affected by this bad input" sweep of
    the paper's introduction.  Answers a list of executions.

    ``pushdown`` overrides the store planner's SQL-vs-kernel choice for
    this query alone: ``"always"`` forces the indexed-SQL sweep (an error
    on schemes without the capability), ``"never"`` forces the streamed
    kernel, ``"auto"`` applies the capability-and-size heuristic, and
    ``None`` (default) defers to the session's setting.  Ignored by
    in-memory targets, which have no SQL to push into.
    """

    execution: Any
    run_id: Optional[int] = None
    pushdown: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_pushdown("DownstreamQuery", self.pushdown)


@dataclass(frozen=True)
class UpstreamQuery:
    """Every execution that *execution* depends on (excluding itself).

    The "which inputs and tools produced this result" sweep.  Answers a
    list of executions.  ``pushdown`` behaves as on
    :class:`DownstreamQuery`.
    """

    execution: Any
    run_id: Optional[int] = None
    pushdown: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_pushdown("UpstreamQuery", self.pushdown)


@dataclass(frozen=True)
class CrossRunQuery:
    """One dependency sweep over **all** stored runs of a specification.

    The scaling form of :class:`DownstreamQuery`/:class:`UpstreamQuery`:
    the spec-side kernel is compiled once and every run's label columns are
    streamed through it, instead of building a full per-run engine per run.
    Only store-backed sessions can plan it.  Answers a
    :class:`CrossRunSweepResult`.

    ``workers`` controls the parallel executor: ``None`` auto-sizes a
    thread pool from the CPU count (falling back to the sequential path
    for small run counts), ``1`` forces the sequential path, and any
    larger value pins the pool size.  ``pushdown`` behaves as on
    :class:`DownstreamQuery` (the sweep is pushed down only when every
    run's scheme declares the capability).
    """

    specification: str
    execution: Any
    direction: str = "downstream"
    workers: Optional[int] = None
    pushdown: Optional[str] = None

    def __post_init__(self) -> None:
        if self.direction not in ("downstream", "upstream"):
            raise QueryPlanError(
                f"CrossRunQuery direction must be 'downstream' or 'upstream', "
                f"got {self.direction!r}"
            )
        _validate_pushdown("CrossRunQuery", self.pushdown)


@dataclass(frozen=True)
class CrossRunBatchQuery:
    """The same pair workload asked of **every** stored run of a specification.

    The generalization of :class:`CrossRunQuery` from one anchored sweep to
    an arbitrary batch: every run of *specification* answers the same
    ``(source, target)`` pairs, yielding a runs x pairs boolean matrix.
    Each run contributes only a streamed label-column fetch plus one
    vectorized kernel evaluation through the shared per-specification
    kernel — no per-run engines — and the per-run payloads execute in
    parallel (see :class:`CrossRunQuery` for the ``workers`` semantics).
    Only store-backed sessions can plan it.  Answers a
    :class:`CrossRunBatchResult`.
    """

    specification: str
    pairs: Sequence[tuple]
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.pairs:
            raise QueryPlanError("CrossRunBatchQuery needs at least one pair")


@dataclass(frozen=True)
class CrossRunPointQuery:
    """One reachability question asked of **every** stored run of a specification.

    "Did *source* reach *target* in each recorded execution of this
    workflow?" — the monitoring form of :class:`PointQuery`.  Compiled as a
    single-pair :class:`CrossRunBatchQuery`, so it rides the same streamed
    parallel executor.  Answers a :class:`CrossRunPointResult`.
    """

    specification: str
    source: Any
    target: Any
    workers: Optional[int] = None


@dataclass(frozen=True)
class DataDependencyQuery:
    """Does data item *item* depend on another item or a module execution?

    Give exactly one of *on_item* (item-to-item dependency, Section 6) or
    *on_module* (item-to-execution dependency).  Answers ``bool``.
    """

    item: str
    on_item: Optional[str] = None
    on_module: Optional[Any] = None
    run_id: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.on_item is None) == (self.on_module is None):
            raise QueryPlanError(
                "DataDependencyQuery takes exactly one of on_item or on_module"
            )


@dataclass(frozen=True)
class CrossRunSweepResult:
    """The outcome of one :class:`CrossRunQuery`.

    ``per_run`` maps each swept run id to its affected executions (in
    stored-handle order); runs of the specification that never executed the
    anchor are listed in ``skipped_runs`` instead of being silently absent.
    """

    specification: str
    execution: tuple
    direction: str
    per_run: dict = field(default_factory=dict)
    skipped_runs: list = field(default_factory=list)

    @property
    def run_count(self) -> int:
        """Number of runs the sweep answered (excluding skipped ones)."""
        return len(self.per_run)

    @property
    def affected_count(self) -> int:
        """Total number of affected executions across all swept runs."""
        return sum(len(found) for found in self.per_run.values())


@dataclass(frozen=True)
class CrossRunBatchResult:
    """The outcome of one :class:`CrossRunBatchQuery`: a runs x pairs matrix.

    ``per_run`` maps each answered run id to one boolean per queried pair,
    in pair order.  Runs of the specification missing any queried endpoint
    are listed in ``skipped_runs`` instead of contributing a partial row,
    so every present row is a complete answer vector.
    """

    specification: str
    pairs: list
    per_run: dict = field(default_factory=dict)
    skipped_runs: list = field(default_factory=list)

    @property
    def run_ids(self) -> list:
        """Answered run ids, ascending — the row order of :meth:`matrix`."""
        return sorted(self.per_run)

    @property
    def run_count(self) -> int:
        """Number of runs that answered the batch (excluding skipped ones)."""
        return len(self.per_run)

    def matrix(self):
        """The runs x pairs answers, rows in :attr:`run_ids` order.

        A numpy boolean array when numpy is installed, a list of lists
        otherwise.
        """
        rows = [self.per_run[run_id] for run_id in self.run_ids]
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy-less installs
            return [list(row) for row in rows]
        return np.asarray(rows, dtype=bool).reshape(len(rows), len(self.pairs))


@dataclass(frozen=True)
class CrossRunPointResult:
    """The outcome of one :class:`CrossRunPointQuery`.

    ``per_run`` maps each run id to the boolean answer; runs that never
    executed one of the endpoints are listed in ``skipped_runs``.
    """

    specification: str
    source: tuple
    target: tuple
    per_run: dict = field(default_factory=dict)
    skipped_runs: list = field(default_factory=list)

    @property
    def run_count(self) -> int:
        """Number of runs that answered the question."""
        return len(self.per_run)

    @property
    def reachable_count(self) -> int:
        """In how many runs *source* reached *target*."""
        return sum(1 for answer in self.per_run.values() if answer)
