"""The declarative query objects of the unified provenance surface.

A query is pure data: what to ask, not how to answer it.  The session
(:class:`~repro.api.session.ProvenanceSession`) compiles each query into an
executable plan over the kernel layer (:mod:`repro.engine`) for whatever
target it fronts — a live index, a labeled or online run, or a provenance
store — so the same query object runs unchanged against any of them.

Executions may be written as :class:`~repro.workflow.run.RunVertex`
instances or plain ``(module, instance)`` tuples, matching the provenance
store's convention.  ``run_id`` selects the stored run for store-backed
sessions and must be omitted for in-memory targets (a session fronting one
index has exactly one run to query).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.exceptions import QueryPlanError

__all__ = [
    "PointQuery",
    "BatchQuery",
    "DownstreamQuery",
    "UpstreamQuery",
    "CrossRunQuery",
    "DataDependencyQuery",
    "CrossRunSweepResult",
]


@dataclass(frozen=True)
class PointQuery:
    """One reachability question: does *source* reach *target*?

    Answers ``bool``.  Point queries on in-memory targets are served
    through the engine's hot-pair LRU cache; :meth:`ProvenanceSession.run_many`
    additionally fuses point queries on the same run into one batch.
    """

    source: Any
    target: Any
    run_id: Optional[int] = None


@dataclass(frozen=True)
class BatchQuery:
    """A whole workload of ``(source, target)`` reachability questions.

    Answers one boolean per pair, in order.  Give either *pairs* (vertex
    objects, resolved once at the boundary) or the pre-interned
    *source_ids*/*target_ids* parallel handle arrays (the zero-parse replay
    form — e.g. a binary workload file resolved against a stored run's
    persisted interner).
    """

    pairs: Optional[Sequence[tuple]] = None
    run_id: Optional[int] = None
    source_ids: Optional[Sequence[int]] = None
    target_ids: Optional[Sequence[int]] = None

    def __post_init__(self) -> None:
        by_pairs = self.pairs is not None
        by_ids = self.source_ids is not None or self.target_ids is not None
        if by_ids and (self.source_ids is None or self.target_ids is None):
            raise QueryPlanError(
                "BatchQuery needs both source_ids and target_ids for a "
                "handle-native batch"
            )
        if by_pairs == by_ids:
            raise QueryPlanError(
                "BatchQuery takes exactly one of pairs or "
                "(source_ids, target_ids)"
            )

    @property
    def handle_native(self) -> bool:
        """Whether the workload arrives pre-interned as handle arrays."""
        return self.source_ids is not None


@dataclass(frozen=True)
class DownstreamQuery:
    """Every execution that depends on *execution* (excluding itself).

    The "which downstream results were affected by this bad input" sweep of
    the paper's introduction.  Answers a list of executions.
    """

    execution: Any
    run_id: Optional[int] = None


@dataclass(frozen=True)
class UpstreamQuery:
    """Every execution that *execution* depends on (excluding itself).

    The "which inputs and tools produced this result" sweep.  Answers a
    list of executions.
    """

    execution: Any
    run_id: Optional[int] = None


@dataclass(frozen=True)
class CrossRunQuery:
    """One dependency sweep over **all** stored runs of a specification.

    The scaling form of :class:`DownstreamQuery`/:class:`UpstreamQuery`:
    the spec-side kernel is compiled once and every run's label columns are
    streamed through it, instead of building a full per-run engine per run.
    Only store-backed sessions can plan it.  Answers a
    :class:`CrossRunSweepResult`.
    """

    specification: str
    execution: Any
    direction: str = "downstream"

    def __post_init__(self) -> None:
        if self.direction not in ("downstream", "upstream"):
            raise QueryPlanError(
                f"CrossRunQuery direction must be 'downstream' or 'upstream', "
                f"got {self.direction!r}"
            )


@dataclass(frozen=True)
class DataDependencyQuery:
    """Does data item *item* depend on another item or a module execution?

    Give exactly one of *on_item* (item-to-item dependency, Section 6) or
    *on_module* (item-to-execution dependency).  Answers ``bool``.
    """

    item: str
    on_item: Optional[str] = None
    on_module: Optional[Any] = None
    run_id: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.on_item is None) == (self.on_module is None):
            raise QueryPlanError(
                "DataDependencyQuery takes exactly one of on_item or on_module"
            )


@dataclass(frozen=True)
class CrossRunSweepResult:
    """The outcome of one :class:`CrossRunQuery`.

    ``per_run`` maps each swept run id to its affected executions (in
    stored-handle order); runs of the specification that never executed the
    anchor are listed in ``skipped_runs`` instead of being silently absent.
    """

    specification: str
    execution: tuple
    direction: str
    per_run: dict = field(default_factory=dict)
    skipped_runs: list = field(default_factory=list)

    @property
    def run_count(self) -> int:
        """Number of runs the sweep answered (excluding skipped ones)."""
        return len(self.per_run)

    @property
    def affected_count(self) -> int:
        """Total number of affected executions across all swept runs."""
        return sum(len(found) for found in self.per_run.values())
