"""The unified provenance query session.

:class:`ProvenanceSession` is the one declarative entry point over every
query target this library knows:

* a live :class:`~repro.labeling.base.ReachabilityIndex` or
  :class:`~repro.skeleton.skl.SkeletonLabeledRun` (in-memory runs);
* an :class:`~repro.skeleton.online.OnlineRun` still executing (queries
  stay correct across appends — the session re-compiles its engine whenever
  the run's version token moves);
* a :class:`~repro.storage.store.ProvenanceStore` (stored runs, selected by
  ``run_id``, plus cross-run sweeps over all runs of one specification).

Usage is compile-once / execute-many::

    session = ProvenanceSession(store)            # or .for_index / .for_online
    session.run(PointQuery(("a", 1), ("h", 1), run_id=1))
    session.run(BatchQuery(pairs=workload, run_id=1))
    session.run(CrossRunQuery("my-spec", ("a", 1), "downstream"))

``session.run(query)`` is shorthand for ``session.compile(query).execute()``;
holding on to the compiled plan lets a monitoring loop re-execute without
re-planning.  ``session.run_many(queries)`` additionally fuses point queries
on the same run into one batched kernel call.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.api.plans import QueryPlan, compile_plan
from repro.api.queries import PUSHDOWN_MODES, BatchQuery, PointQuery
from repro.engine.query import QueryEngine
from repro.exceptions import LabelingError, QueryPlanError, StorageError

__all__ = ["ProvenanceSession", "PROMOTE_AFTER_DEFAULT"]

#: after this many point queries against one stored run the session
#: transparently promotes the run from per-pair SQL to its compiled
#: QueryEngine (configurable per session via ``promote_after``)
PROMOTE_AFTER_DEFAULT = 8


class _IndexTarget:
    """A live labeling index / labeled run (one run, no run ids)."""

    kind = "index"

    def __init__(self, index: Any) -> None:
        self.index = index
        self._engine: Optional[QueryEngine] = None

    def engine(self) -> QueryEngine:
        if self._engine is None:
            self._engine = QueryEngine(self.index)
        return self._engine

    def version_token(self):
        """The index's edge-update token (``None`` for immutable targets)."""
        return getattr(self.index, "update_version", None)

    def describe(self) -> str:
        return f"a live {type(self.index).__name__}"


class _OnlineTarget:
    """A run still executing, served by one incrementally maintained kernel.

    The compiled :class:`~repro.engine.online.OnlineKernel` persists across
    appends: executions recorded into already-nonempty scopes extend its
    label arrays **in place** (only the hot-pair LRU is invalidated), and
    only structural changes that can move existing labels — a scope turning
    nonempty for the first time — trigger a full recompile.  Answers always
    reflect the run recorded so far, like the per-append rebuild this
    replaces, but an append-heavy monitoring loop no longer pays a
    recompile per event.
    """

    kind = "online"

    def __init__(self, online: Any) -> None:
        self.online = online
        self._kernel: Optional[Any] = None

    def engine(self) -> Any:
        if self._kernel is None:
            from repro.engine.online import OnlineKernel

            self._kernel = OnlineKernel(self.online)
        self._kernel.sync()
        return self._kernel

    @property
    def index(self) -> Any:
        return self.engine().index

    def version_token(self):
        """The online run's append token (plans re-check it per execute)."""
        return self.online.version_token()

    def describe(self) -> str:
        return f"the online run {self.online.name!r}"


class _StoreTarget:
    """A provenance store; queries carry the run id they address.

    The target also hosts the session's **adaptive promotion** policy for
    point queries: a cold run answers each pair with per-pair SQL (two
    label SELECTs — the right trade for a handful of interactive queries),
    but once a run has absorbed ``promote_after`` point queries the target
    promotes it to the store's compiled :class:`QueryEngine`, after which
    point queries replay through the engine's label cache and hot-pair LRU
    with **zero** SQL.
    """

    kind = "store"

    def __init__(
        self,
        store: Any,
        promote_after: int = PROMOTE_AFTER_DEFAULT,
        pushdown: str = "auto",
    ) -> None:
        self.store = store
        if promote_after < 1:
            raise QueryPlanError(
                f"promote_after must be a positive integer, got {promote_after}"
            )
        if pushdown not in PUSHDOWN_MODES:
            raise QueryPlanError(
                f"pushdown must be one of {PUSHDOWN_MODES}, got {pushdown!r}"
            )
        self.promote_after = int(promote_after)
        #: the session-wide default the sweep planner reads when a query
        #: carries no per-query ``pushdown`` override
        self.pushdown = pushdown
        self._point_hits: dict[int, int] = {}
        self._promoted: set[int] = set()

    def require_run_id(self, query: Any) -> int:
        if query.run_id is None:
            raise QueryPlanError(
                f"{type(query).__name__} against a store-backed session "
                "needs a run_id"
            )
        return int(query.run_id)

    def point_query(self, run_id: int, source: tuple, target: tuple) -> bool:
        """One point query, promoted to the compiled engine once hot."""
        if run_id not in self._promoted:
            hits = self._point_hits.get(run_id, 0) + 1
            self._point_hits[run_id] = hits
            if hits < self.promote_after:
                return self.store._reaches(run_id, source, target)
            self._promoted.add(run_id)
            # warm the engine now (one SQL round trip for the full label
            # set); every later point query on this run is SQL-free
        try:
            return self.store.query_engine(run_id).reaches(source, target)
        except LabelingError as exc:
            # match the cold per-pair path's error contract: unknown
            # executions are a storage-level error carrying the run context,
            # before and after promotion alike
            raise StorageError(f"run {run_id}: {exc}") from None

    def version_token(self):
        """Stores have no single token: each cached run view versions itself."""
        return None

    def cache_stats(self) -> dict:
        return {
            "target_kind": self.kind,
            "promote_after": self.promote_after,
            "pushdown_mode": self.pushdown,
            "point_hits": dict(self._point_hits),
            "promoted_runs": sorted(self._promoted),
            "promotions": len(self._promoted),
            **self.store.cache_stats(),
        }

    def describe(self) -> str:
        return f"the provenance store at {self.store.path!r}"


class ProvenanceSession:
    """One declarative query surface over indexes, runs and stores.

    The constructor sniffs the target's declared surface rather than its
    class: anything with ``query_engine``/``list_runs`` is treated as a
    provenance store, anything with ``query_view``/``version_token`` as an
    online run, and anything with the ``(D, φ, π)`` duck type
    (``label_of``/``reaches_labels``) as a live index.  The explicit
    :meth:`for_index` / :meth:`for_online` constructors skip the sniffing.
    """

    def __init__(
        self,
        target: Any,
        *,
        promote_after: int = PROMOTE_AFTER_DEFAULT,
        pushdown: str = "auto",
    ) -> None:
        if target is None:
            raise QueryPlanError("ProvenanceSession needs a query target")
        if hasattr(target, "query_engine") and hasattr(target, "list_runs"):
            self._target = _StoreTarget(
                target, promote_after=promote_after, pushdown=pushdown
            )
        elif hasattr(target, "query_view") and hasattr(target, "version_token"):
            self._target = _OnlineTarget(target)
        elif hasattr(target, "label_of") and hasattr(target, "reaches_labels"):
            self._target = _IndexTarget(target)
        else:
            raise QueryPlanError(
                f"cannot build a session over {type(target).__name__}: "
                "expected a provenance store, an online run, or a labeling "
                "index / labeled run"
            )

    @classmethod
    def for_index(cls, index: Any) -> "ProvenanceSession":
        """A session over one live index or labeled run."""
        session = cls.__new__(cls)
        session._target = _IndexTarget(index)
        return session

    @classmethod
    def for_online(cls, online: Any) -> "ProvenanceSession":
        """A session over a run still executing (append-safe)."""
        session = cls.__new__(cls)
        session._target = _OnlineTarget(online)
        return session

    # ------------------------------------------------------------------
    # the compile-once / execute-many split
    # ------------------------------------------------------------------
    @property
    def target_kind(self) -> str:
        """Which kind of target this session fronts: index, online or store."""
        return self._target.kind

    def cache_stats(self) -> dict:
        """Occupancy, promotion and eviction statistics of the session's caches.

        For store-backed sessions this reports the adaptive point-query
        promotion state (per-run hit counters, promoted runs, the
        ``promote_after`` threshold) merged with the store's cache
        occupancy and LRU eviction counters; for online sessions it
        reports the incremental kernel's extension/rebuild counters; for
        plain index sessions, the engine's query counters.
        """
        target = self._target
        if target.kind == "store":
            return target.cache_stats()
        stats: dict = {"target_kind": target.kind}
        if target.kind == "online":
            stats.update(target.engine().cache_stats())
            return stats
        engine = target.engine()
        stats.update(
            queries=engine.stats.queries,
            batches=engine.stats.batches,
            cache_hits=engine.stats.cache_hits,
        )
        return stats

    def compile(self, query: Any) -> QueryPlan:
        """Compile one declarative query into a reusable executable plan."""
        return compile_plan(self._target, query)

    def run(self, query: Any):
        """Compile and execute one query (the everyday entry point)."""
        return compile_plan(self._target, query).execute()

    def run_many(self, queries: Iterable[Any]) -> list:
        """Execute several queries, fusing compatible ones.

        Point queries addressing the same run are answered as **one**
        batched kernel call instead of one dispatch each; everything else
        executes in order.  Answers come back in input order.
        """
        queries = list(queries)
        answers: list = [None] * len(queries)
        point_groups: dict[Optional[int], list[int]] = {}
        for position, query in enumerate(queries):
            if type(query) is PointQuery:
                point_groups.setdefault(query.run_id, []).append(position)
            else:
                answers[position] = self.run(query)
        for run_id, positions in point_groups.items():
            if len(positions) == 1:
                position = positions[0]
                answers[position] = self.run(queries[position])
                continue
            batch = self.run(
                BatchQuery(
                    pairs=[
                        (queries[i].source, queries[i].target) for i in positions
                    ],
                    run_id=run_id,
                )
            )
            for position, answer in zip(positions, batch):
                answers[position] = bool(answer)
        return answers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProvenanceSession(over {self._target.describe()})"
