"""The unified provenance query session.

:class:`ProvenanceSession` is the one declarative entry point over every
query target this library knows:

* a live :class:`~repro.labeling.base.ReachabilityIndex` or
  :class:`~repro.skeleton.skl.SkeletonLabeledRun` (in-memory runs);
* an :class:`~repro.skeleton.online.OnlineRun` still executing (queries
  stay correct across appends — the session re-compiles its engine whenever
  the run's version token moves);
* a :class:`~repro.storage.store.ProvenanceStore` (stored runs, selected by
  ``run_id``, plus cross-run sweeps over all runs of one specification).

Usage is compile-once / execute-many::

    session = ProvenanceSession(store)            # or .for_index / .for_online
    session.run(PointQuery(("a", 1), ("h", 1), run_id=1))
    session.run(BatchQuery(pairs=workload, run_id=1))
    session.run(CrossRunQuery("my-spec", ("a", 1), "downstream"))

``session.run(query)`` is shorthand for ``session.compile(query).execute()``;
holding on to the compiled plan lets a monitoring loop re-execute without
re-planning.  ``session.run_many(queries)`` additionally fuses point queries
on the same run into one batched kernel call.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.api.plans import QueryPlan, compile_plan
from repro.api.queries import BatchQuery, PointQuery
from repro.engine.query import QueryEngine
from repro.exceptions import QueryPlanError

__all__ = ["ProvenanceSession"]


class _IndexTarget:
    """A live labeling index / labeled run (one run, no run ids)."""

    kind = "index"

    def __init__(self, index: Any) -> None:
        self.index = index
        self._engine: Optional[QueryEngine] = None

    def engine(self) -> QueryEngine:
        if self._engine is None:
            self._engine = QueryEngine(self.index)
        return self._engine

    def describe(self) -> str:
        return f"a live {type(self.index).__name__}"


class _OnlineTarget:
    """A run still executing, with per-append plan invalidation.

    The engine is compiled over :meth:`OnlineRun.query_view` and thrown
    away whenever the run's :meth:`~OnlineRun.version_token` moves (an
    execution was appended or a fork/loop copy started) — stale vertex
    handles are never replayed, and the fresh view re-interns the grown
    vertex set.
    """

    kind = "online"

    def __init__(self, online: Any) -> None:
        self.online = online
        self._engine: Optional[QueryEngine] = None
        self._token: Any = None

    def engine(self) -> QueryEngine:
        token = self.online.version_token()
        if self._engine is None or token != self._token:
            self._engine = QueryEngine(self.online.query_view())
            self._token = token
        return self._engine

    @property
    def index(self) -> Any:
        return self.engine().index

    def describe(self) -> str:
        return f"the online run {self.online.name!r}"


class _StoreTarget:
    """A provenance store; queries carry the run id they address."""

    kind = "store"

    def __init__(self, store: Any) -> None:
        self.store = store

    def require_run_id(self, query: Any) -> int:
        if query.run_id is None:
            raise QueryPlanError(
                f"{type(query).__name__} against a store-backed session "
                "needs a run_id"
            )
        return int(query.run_id)

    def describe(self) -> str:
        return f"the provenance store at {self.store.path!r}"


class ProvenanceSession:
    """One declarative query surface over indexes, runs and stores.

    The constructor sniffs the target's declared surface rather than its
    class: anything with ``query_engine``/``list_runs`` is treated as a
    provenance store, anything with ``query_view``/``version_token`` as an
    online run, and anything with the ``(D, φ, π)`` duck type
    (``label_of``/``reaches_labels``) as a live index.  The explicit
    :meth:`for_index` / :meth:`for_online` constructors skip the sniffing.
    """

    def __init__(self, target: Any) -> None:
        if target is None:
            raise QueryPlanError("ProvenanceSession needs a query target")
        if hasattr(target, "query_engine") and hasattr(target, "list_runs"):
            self._target = _StoreTarget(target)
        elif hasattr(target, "query_view") and hasattr(target, "version_token"):
            self._target = _OnlineTarget(target)
        elif hasattr(target, "label_of") and hasattr(target, "reaches_labels"):
            self._target = _IndexTarget(target)
        else:
            raise QueryPlanError(
                f"cannot build a session over {type(target).__name__}: "
                "expected a provenance store, an online run, or a labeling "
                "index / labeled run"
            )

    @classmethod
    def for_index(cls, index: Any) -> "ProvenanceSession":
        """A session over one live index or labeled run."""
        session = cls.__new__(cls)
        session._target = _IndexTarget(index)
        return session

    @classmethod
    def for_online(cls, online: Any) -> "ProvenanceSession":
        """A session over a run still executing (append-safe)."""
        session = cls.__new__(cls)
        session._target = _OnlineTarget(online)
        return session

    # ------------------------------------------------------------------
    # the compile-once / execute-many split
    # ------------------------------------------------------------------
    @property
    def target_kind(self) -> str:
        """Which kind of target this session fronts: index, online or store."""
        return self._target.kind

    def compile(self, query: Any) -> QueryPlan:
        """Compile one declarative query into a reusable executable plan."""
        return compile_plan(self._target, query)

    def run(self, query: Any):
        """Compile and execute one query (the everyday entry point)."""
        return compile_plan(self._target, query).execute()

    def run_many(self, queries: Iterable[Any]) -> list:
        """Execute several queries, fusing compatible ones.

        Point queries addressing the same run are answered as **one**
        batched kernel call instead of one dispatch each; everything else
        executes in order.  Answers come back in input order.
        """
        queries = list(queries)
        answers: list = [None] * len(queries)
        point_groups: dict[Optional[int], list[int]] = {}
        for position, query in enumerate(queries):
            if type(query) is PointQuery:
                point_groups.setdefault(query.run_id, []).append(position)
            else:
                answers[position] = self.run(query)
        for run_id, positions in point_groups.items():
            if len(positions) == 1:
                position = positions[0]
                answers[position] = self.run(queries[position])
                continue
            batch = self.run(
                BatchQuery(
                    pairs=[
                        (queries[i].source, queries[i].target) for i in positions
                    ],
                    run_id=run_id,
                )
            )
            for position, answer in zip(positions, batch):
                answers[position] = bool(answer)
        return answers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProvenanceSession(over {self._target.describe()})"
