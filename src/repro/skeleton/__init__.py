"""The skeleton-based labeling scheme (the paper's core contribution)."""

from repro.skeleton.construct import PlanConstructionResult, construct_plan
from repro.skeleton.labels import RunLabel, context_bits, run_label_bits
from repro.skeleton.online import GroupHandle, OnlineRun, OnlineRunView, PlusScope
from repro.skeleton.orders import ContextEncoding, encode_contexts, generate_three_orders
from repro.skeleton.skl import (
    LabelingTimings,
    QueryPath,
    SkeletonLabeledRun,
    SkeletonLabeler,
    classify_query,
    skeleton_predicate,
)
from repro.workflow.plan import ExecutionPlan, PlanNode, PlanNodeKind

__all__ = [
    "PlanConstructionResult",
    "construct_plan",
    "RunLabel",
    "context_bits",
    "run_label_bits",
    "GroupHandle",
    "OnlineRun",
    "OnlineRunView",
    "PlusScope",
    "ContextEncoding",
    "encode_contexts",
    "generate_three_orders",
    "LabelingTimings",
    "QueryPath",
    "SkeletonLabeledRun",
    "SkeletonLabeler",
    "classify_query",
    "skeleton_predicate",
    "ExecutionPlan",
    "PlanNode",
    "PlanNodeKind",
]
