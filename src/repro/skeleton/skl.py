"""The skeleton-based labeling scheme ``SKL`` (Section 4, Algorithms 2 and 3).

:class:`SkeletonLabeler` implements the two-phase scheme that is the paper's
core contribution:

1. the *specification* is labeled once by any reachability scheme for
   directed graphs (the skeleton labels — TCM, BFS, tree cover, ...);
2. each *run* is labeled in linear time with
   ``φr(v) = (q1, q2, q3, φg(Orig(v)))`` where ``(q1, q2, q3)`` encodes the
   vertex's context in the execution plan (Algorithm 1) and ``φg`` is the
   skeleton label of its origin.

Reachability between two run vertices is decided by the constant-time
predicate ``πr`` (Algorithm 3): if the context coordinates show that the two
contexts sit under distinct copies of the same fork (unreachable) or the same
loop (reachable, direction given by ``q1``), the answer is immediate;
otherwise the query falls through to the skeleton predicate ``πg`` on the two
origins (Lemma 4.4).
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional, Type, Union

from repro.exceptions import LabelingError, VertexNotFoundError
from repro.labeling.base import ReachabilityIndex, VertexHandleAPI
from repro.labeling.registry import get_scheme
from repro.skeleton.construct import construct_plan
from repro.skeleton.labels import RunLabel, context_bits, run_label_bits
from repro.skeleton.orders import ContextEncoding, encode_contexts
from repro.workflow.plan import ExecutionPlan
from repro.workflow.run import RunVertex, WorkflowRun
from repro.workflow.specification import WorkflowSpecification

__all__ = [
    "QueryPath",
    "skeleton_predicate",
    "skeleton_predicate_many",
    "classify_query",
    "SkeletonLabeledRun",
    "SkeletonLabeler",
    "LabelingTimings",
]


class QueryPath:
    """How a query was answered: by the fork rule, loop rule or skeleton labels."""

    FORK = "fork"
    LOOP = "loop"
    SKELETON = "skeleton"


def classify_query(first: RunLabel, second: RunLabel) -> str:
    """Return which rule of Algorithm 3 applies to the two labels."""
    if (first.q2 - second.q2) * (first.q3 - second.q3) < 0:
        if (first.q1 - second.q1) * (first.q3 - second.q3) < 0:
            return QueryPath.LOOP
        return QueryPath.FORK
    return QueryPath.SKELETON


def skeleton_predicate(first: RunLabel, second: RunLabel, spec_index: ReachabilityIndex) -> bool:
    """``πr``: decide whether the first label's vertex reaches the second's.

    This is a faithful transcription of Algorithm 3: compare the context
    coordinates first and only consult the skeleton labels when the least
    common ancestor of the two contexts is a ``+`` node.
    """
    if (first.q2 - second.q2) * (first.q3 - second.q3) < 0:
        return first.q1 < second.q1 and first.q3 > second.q3
    return spec_index.reaches_labels(first.skeleton, second.skeleton)


def skeleton_predicate_many(
    label_pairs: Sequence[tuple[RunLabel, RunLabel]],
    spec_index: ReachabilityIndex,
) -> list[bool]:
    """Batch form of :func:`skeleton_predicate`, one answer per label pair.

    Algorithm 3 splits each query into a context-coordinate fast path and a
    skeleton fall-through; this function answers the fast-path queries with
    inline arithmetic and forwards *all* fall-through queries to the
    specification index's own ``reaches_many`` batch path in a single call,
    so the layering of the two schemes is preserved batch-wise.  Used by the
    query engine (via :meth:`SkeletonLabeledRun.reaches_many`) and by the
    provenance store's batched queries.
    """
    answers: list[bool] = [False] * len(label_pairs)
    fallthrough_positions: list[int] = []
    fallthrough_pairs: list[tuple] = []
    for position, (first, second) in enumerate(label_pairs):
        if (first.q2 - second.q2) * (first.q3 - second.q3) < 0:
            answers[position] = first.q1 < second.q1 and first.q3 > second.q3
        else:
            fallthrough_positions.append(position)
            fallthrough_pairs.append((first.skeleton, second.skeleton))
    if fallthrough_pairs:
        skeleton_answers = spec_index.reaches_many(fallthrough_pairs)
        for position, answer in zip(fallthrough_positions, skeleton_answers):
            answers[position] = answer
    return answers


@dataclass(frozen=True)
class LabelingTimings:
    """Wall-clock breakdown of one :meth:`SkeletonLabeler.label_run` call (seconds)."""

    plan_seconds: float
    encoding_seconds: float
    assignment_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total construction time of the run labels."""
        return self.plan_seconds + self.encoding_seconds + self.assignment_seconds


class SkeletonLabeledRun(VertexHandleAPI):
    """A run labeled by the skeleton-based scheme.

    Instances behave like a reachability index over the run: they hand out
    labels, answer reachability queries in constant time and report label
    lengths for the benchmark harness.  Like every index they also expose
    the interned vertex-handle surface (:class:`~repro.labeling.base.VertexHandleAPI`):
    :meth:`intern` / :meth:`intern_pairs` map run vertices to dense integer
    handles once, and :meth:`reaches_ids` / :meth:`reaches_many_ids` answer
    queries from handles alone.  The run's label set is frozen at labeling
    time, so its handles never go stale (even over a traversal-backed
    specification index).
    """

    #: tells :func:`repro.engine.kernels.build_kernel` to compile the
    #: skeleton kernel for any object with this surface (e.g. the provenance
    #: store's cached stored-run indexes), not just this exact class
    kernel_hint = "skl"

    def __init__(
        self,
        run: WorkflowRun,
        spec_index: ReachabilityIndex,
        labels: dict[RunVertex, RunLabel],
        encoding: ContextEncoding,
        plan: ExecutionPlan,
        context: dict[RunVertex, int],
        timings: LabelingTimings,
    ) -> None:
        self.run = run
        self.spec_index = spec_index
        self._labels = labels
        self.encoding = encoding
        self.plan = plan
        self.context = context
        self.timings = timings
        spec_size = run.specification.vertex_count
        self._skeleton_reference_bits = max(1, math.ceil(math.log2(max(2, spec_size))))

    # ------------------------------------------------------------------
    # the (D, φ, π) interface over the run
    # ------------------------------------------------------------------
    @property
    def stable_labels(self) -> bool:
        """Whether answers derived from the labels stay valid over time.

        The run labels themselves are frozen at :meth:`SkeletonLabeler.label_run`
        time, but the skeleton fall-through consults the specification index,
        so stability is inherited from it: a traversal-backed spec index
        (``bfs``/``dfs``) answers from the live specification graph and must
        not be memoized or snapshotted by consumers.
        """
        return getattr(self.spec_index, "stable_labels", True)

    @property
    def update_version(self):
        """Invalidation token inherited from the specification index.

        The run labels are frozen, so the only thing that can move under a
        labeled run is its specification: a mutated spec index bumps this
        token and every derived layer (compiled skeleton kernels, hot-pair
        caches, plans) recompiles its fall-through state.  Note the frozen
        ``skeleton`` components embedded in the run labels are copies taken
        at labeling time — after a spec mutation the run must be relabeled
        for its answers to track the new specification; the token makes the
        staleness *visible* to caches, it does not repair run labels.
        """
        return getattr(self.spec_index, "update_version", None)

    def label_of(self, vertex: RunVertex) -> RunLabel:
        """Return ``φr(v)``."""
        try:
            return self._labels[vertex]
        except KeyError:
            raise LabelingError(f"vertex was not labeled: {vertex!r}") from None

    def labels(self) -> dict[RunVertex, RunLabel]:
        """Return a copy of the full label assignment."""
        return dict(self._labels)

    # -- vertex-handle template hooks (see VertexHandleAPI) -------------
    def _handle_vertices(self):
        # Handles are assigned in label order (= run-graph insertion order),
        # frozen at labeling time; the label set never changes afterwards,
        # so no staleness token is needed even for unstable spec indexes.
        return self._labels

    def _handle_labels_cacheable(self) -> bool:
        # The run labels are frozen at labeling time even when the spec
        # index is traversal-backed (stable_labels False) — only the
        # fall-through *predicate* is live, never the labels themselves.
        return True

    def vertex_at(self, identifier: int) -> RunVertex:
        """Return the run vertex a handle from :meth:`intern` refers to."""
        try:
            return self.interner.vertex_at(identifier)
        except VertexNotFoundError:
            raise LabelingError(f"unknown vertex handle: {identifier!r}") from None

    def reaches_labels(self, first: RunLabel, second: RunLabel) -> bool:
        """``πr``: constant-time reachability from two labels."""
        return skeleton_predicate(first, second, self.spec_index)

    def reaches(self, source: RunVertex, target: RunVertex) -> bool:
        """Decide whether *source* reaches *target* in the run."""
        return self.reaches_labels(self.label_of(source), self.label_of(target))

    def reaches_many(self, label_pairs: Sequence[tuple[RunLabel, RunLabel]]) -> list[bool]:
        """Batch form of :meth:`reaches_labels` (Algorithm 3, batch-wise).

        Fast-path queries are answered with inline coordinate arithmetic;
        every skeleton fall-through is forwarded to the specification
        index's ``reaches_many`` in one call.  This is the method the batch
        query engine (:mod:`repro.engine`) dispatches to.
        """
        return skeleton_predicate_many(label_pairs, self.spec_index)

    def query_path(self, source: RunVertex, target: RunVertex) -> str:
        """Return which Algorithm 3 rule answers the query (ablation hook)."""
        return classify_query(self.label_of(source), self.label_of(target))

    def downstream_of(self, vertex: RunVertex) -> list[RunVertex]:
        """Every module execution that depends on *vertex* (excluding itself).

        This is the "which downstream results were affected by a bad result"
        query of the introduction, answered purely from the labels (one
        constant-time predicate evaluation per candidate vertex).
        """
        source_label = self.label_of(vertex)
        return [
            other
            for other, label in self._labels.items()
            if other != vertex and self.reaches_labels(source_label, label)
        ]

    def upstream_of(self, vertex: RunVertex) -> list[RunVertex]:
        """Every module execution that *vertex* depends on (excluding itself).

        The "which inputs and tools produced this result" query of the
        introduction.
        """
        target_label = self.label_of(vertex)
        return [
            other
            for other, label in self._labels.items()
            if other != vertex and self.reaches_labels(label, target_label)
        ]

    # ------------------------------------------------------------------
    # metrics (Section 8 measurements)
    # ------------------------------------------------------------------
    @property
    def nonempty_plus_count(self) -> int:
        """``n+T``: number of nonempty ``+`` nodes in the execution plan."""
        return self.encoding.nonempty_count

    @property
    def skeleton_reference_bits(self) -> int:
        """Bits charged per label for referencing a skeleton label (``log nG``)."""
        return self._skeleton_reference_bits

    def label_length_bits(self, vertex: RunVertex) -> int:
        """Actual bits of the vertex's label: variable-size coordinates + reference.

        Coordinates are counted with zero-based variable-width encoding
        (position ``q`` costs ``bitlen(q - 1)`` bits, at least one), so the
        per-vertex lengths vary — as in Figure 12 — while the maximum never
        exceeds the fixed-width ``3·ceil(log2 n+T)`` of Lemma 4.7.
        """
        label = self.label_of(vertex)
        coordinate_bits = sum(max(1, (q - 1).bit_length()) for q in label.context)
        return coordinate_bits + self._skeleton_reference_bits

    def max_label_length_bits(self) -> int:
        """Largest label over all run vertices (Figure 12, 'Maximum Label Length')."""
        return max(self.label_length_bits(v) for v in self._labels)

    def average_label_length_bits(self) -> float:
        """Mean label length over all run vertices (Figure 12, 'Average Label Length')."""
        total = sum(self.label_length_bits(v) for v in self._labels)
        return total / len(self._labels)

    def worst_case_label_bits(self) -> int:
        """The Lemma 4.7 bound ``3·ceil(log2 n+T) + ceil(log2 nG)``."""
        return run_label_bits(self.nonempty_plus_count, self._skeleton_reference_bits)

    def context_bits_per_coordinate(self) -> int:
        """Bits per context coordinate, ``ceil(log2 n+T)``."""
        return context_bits(self.nonempty_plus_count)

    def fast_path_fraction(self, queries) -> float:
        """Fraction of the given (source, target) queries answered without skeleton labels."""
        pairs = list(queries)
        if not pairs:
            return 0.0
        fast = sum(
            1
            for source, target in pairs
            if self.query_path(source, target) != QueryPath.SKELETON
        )
        return fast / len(pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SkeletonLabeledRun(run={self.run.name!r}, nR={self.run.vertex_count}, "
            f"n_plus={self.nonempty_plus_count}, "
            f"spec_scheme={self.spec_index.scheme_name!r})"
        )


class SkeletonLabeler:
    """Label runs of a fixed specification with the skeleton-based scheme.

    Parameters
    ----------
    specification:
        The workflow specification all runs conform to.
    spec_scheme:
        The scheme used for the skeleton labels: a registry name
        (``"tcm"``, ``"bfs"``, ``"dfs"``, ``"tree-cover"``), a
        :class:`ReachabilityIndex` subclass, or an already-built index over
        the specification graph.  The index is built once and reused for
        every labeled run, which is exactly the amortization argument of
        Section 7.
    """

    def __init__(
        self,
        specification: WorkflowSpecification,
        spec_scheme: Union[str, Type[ReachabilityIndex], ReachabilityIndex] = "tcm",
    ) -> None:
        self.specification = specification
        started = time.perf_counter()
        self.spec_index = self._resolve_spec_index(specification, spec_scheme)
        self.spec_labeling_seconds = time.perf_counter() - started

    @staticmethod
    def _resolve_spec_index(
        specification: WorkflowSpecification,
        spec_scheme: Union[str, Type[ReachabilityIndex], ReachabilityIndex],
    ) -> ReachabilityIndex:
        if isinstance(spec_scheme, ReachabilityIndex):
            return spec_scheme
        if isinstance(spec_scheme, str):
            index_class = get_scheme(spec_scheme)
        elif isinstance(spec_scheme, type) and issubclass(spec_scheme, ReachabilityIndex):
            index_class = spec_scheme
        else:
            raise LabelingError(
                f"spec_scheme must be a name, index class or index instance, "
                f"got {spec_scheme!r}"
            )
        return index_class.build(specification.graph)

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def label_run(
        self,
        run: WorkflowRun,
        *,
        plan: Optional[ExecutionPlan] = None,
        context: Optional[dict[RunVertex, int]] = None,
    ) -> SkeletonLabeledRun:
        """Label *run* and return the queryable :class:`SkeletonLabeledRun`.

        ``plan`` and ``context`` may be supplied together when the workflow
        engine already recorded them (the Figure 13 "with execution plan &
        context" setting); otherwise they are reconstructed from the run
        graph by :func:`~repro.skeleton.construct.construct_plan`.
        """
        if run.specification is not self.specification and (
            run.specification.name != self.specification.name
        ):
            raise LabelingError(
                f"run {run.name!r} conforms to specification "
                f"{run.specification.name!r}, not {self.specification.name!r}"
            )
        if (plan is None) != (context is None):
            raise LabelingError("plan and context must be provided together")

        started = time.perf_counter()
        if plan is None:
            result = construct_plan(self.specification, run)
            plan, context = result.plan, result.context
        plan_seconds = time.perf_counter() - started

        started = time.perf_counter()
        encoding = encode_contexts(plan, context)
        encoding_seconds = time.perf_counter() - started

        started = time.perf_counter()
        labels: dict[RunVertex, RunLabel] = {}
        for vertex in run.graph.vertices():
            try:
                plus_node = context[vertex]
            except KeyError:
                raise LabelingError(
                    f"context assignment is missing run vertex {vertex!r}"
                ) from None
            q1, q2, q3 = encoding[plus_node]
            skeleton = self.spec_index.label_of(vertex.module)
            labels[vertex] = RunLabel(q1=q1, q2=q2, q3=q3, skeleton=skeleton)
        assignment_seconds = time.perf_counter() - started

        timings = LabelingTimings(
            plan_seconds=plan_seconds,
            encoding_seconds=encoding_seconds,
            assignment_seconds=assignment_seconds,
        )
        return SkeletonLabeledRun(
            run=run,
            spec_index=self.spec_index,
            labels=labels,
            encoding=encoding,
            plan=plan,
            context=context,
            timings=timings,
        )
