"""``ConstructPlan``: extracting the execution plan and context from a run.

Section 5 of the paper shows that the execution plan ``TR`` and the context
function ``C`` can be computed from the bare run graph in linear time, using
only the specification, its fork/loop hierarchy ``TG`` and the module names
on the run vertices — no per-copy bookkeeping from the workflow engine is
needed.

The implementation follows the paper's strategy:

* regions are processed bottom-up over ``TG`` (every region after all of its
  descendants);
* the copies of a region are recovered as the weakly connected components of
  the surviving run vertices whose origin lies in the region's dominating set
  (Lemma 5.1 guarantees each copy forms one component once its descendants
  have been contracted);
* fork copies sharing a source and sink are grouped into one ``F-``
  execution, loop copies are split and ordered along the serial-composition
  edges into one ``L-`` execution per chain;
* each processed group is *contracted*: its vertices are removed and replaced
  by a single special edge, which carries the pending ``-`` node until the
  enclosing ``+`` copy is discovered and adopts it.

Contexts are assigned on the way (deepest copy first), and whatever remains
uncovered at the end belongs to the ``G+`` root.  The procedure doubles as a
conformance check: runs that do not derive from the specification fail with
:class:`~repro.exceptions.PlanConstructionError`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.exceptions import PlanConstructionError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import weakly_connected_components
from repro.workflow.hierarchy import ROOT_NAME
from repro.workflow.plan import ExecutionPlan, PlanNodeKind
from repro.workflow.run import RunVertex, WorkflowRun
from repro.workflow.specification import WorkflowSpecification
from repro.workflow.subgraphs import ResolvedRegion

__all__ = ["PlanConstructionResult", "construct_plan"]


@dataclass
class PlanConstructionResult:
    """Output of :func:`construct_plan`.

    Attributes
    ----------
    plan:
        The reconstructed execution plan ``TR``.
    context:
        The context function ``C``: run vertex -> ``+`` plan node identifier.
    """

    plan: ExecutionPlan
    context: dict[RunVertex, int]


def construct_plan(spec: WorkflowSpecification, run: WorkflowRun) -> PlanConstructionResult:
    """Compute the execution plan and context of *run* (Algorithms 4 and 5).

    Raises :class:`PlanConstructionError` when the run graph cannot have been
    produced by fork/loop executions of *spec*.
    """
    builder = _PlanBuilder(spec, run)
    return builder.build()


class _PlanBuilder:
    """Stateful implementation of the bottom-up plan construction."""

    def __init__(self, spec: WorkflowSpecification, run: WorkflowRun) -> None:
        self.spec = spec
        self.run = run
        self.hierarchy = spec.hierarchy
        self.work: DiGraph = run.graph.copy()
        self.plan = ExecutionPlan()
        self.root_id = self.plan.add_root()
        self.context: dict[RunVertex, int] = {}
        # Special edges carrying not-yet-attached group nodes:
        # edge -> list of (minus node id, parent region name expected to adopt it)
        self.pending: dict[tuple, list[tuple[int, str]]] = {}

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def build(self) -> PlanConstructionResult:
        for hnode in self.hierarchy.iter_postorder():
            if hnode.is_root:
                continue
            region = hnode.region
            parent_name = hnode.parent
            candidates = [
                v for v in self.work.vertices() if v.module in region.dom_set
            ]
            if not candidates:
                raise PlanConstructionError(
                    f"run {self.run.name!r} contains no copy of region {region.name!r}"
                )
            components = weakly_connected_components(self.work, restrict_to=candidates)
            if region.is_fork:
                self._process_fork(region, parent_name, components)
            else:
                self._process_loop(region, parent_name, components)

        self._finish_root()
        self.plan.validate()
        return PlanConstructionResult(plan=self.plan, context=self.context)

    def _finish_root(self) -> None:
        """Assign remaining contexts to ``G+`` and adopt top-level groups."""
        for vertex in self.work.vertices():
            self.context.setdefault(vertex, self.root_id)
        unattached: list[tuple] = []
        for edge, entries in self.pending.items():
            still_waiting: list[tuple[int, str]] = []
            for minus_id, parent_name in entries:
                if parent_name == ROOT_NAME:
                    if not self.work.has_edge(*edge):
                        raise PlanConstructionError(
                            f"special edge {edge!r} for region group {minus_id} vanished "
                            "before it could be attached to the root"
                        )
                    self.plan.attach(minus_id, self.root_id)
                else:
                    still_waiting.append((minus_id, parent_name))
            if still_waiting:
                unattached.append(edge)
        if unattached:
            raise PlanConstructionError(
                f"some fork/loop executions could not be attached to an enclosing "
                f"copy: special edges {unattached!r}; the run does not conform to "
                f"the specification"
            )

    # ------------------------------------------------------------------
    # fork regions
    # ------------------------------------------------------------------
    def _process_fork(
        self,
        region: ResolvedRegion,
        parent_name: str,
        components: list[set],
    ) -> None:
        copies: list[tuple[set, RunVertex, RunVertex]] = []
        for component in components:
            source, sink = self._fork_copy_terminals(region, component)
            copies.append((component, source, sink))

        groups: dict[tuple[RunVertex, RunVertex], list[set]] = {}
        for component, source, sink in copies:
            groups.setdefault((source, sink), []).append(component)

        for (source, sink), group_components in groups.items():
            minus_id = self.plan.add_node(PlanNodeKind.FORK_GROUP, region.name)
            for component in group_components:
                plus_id = self.plan.add_node(
                    PlanNodeKind.FORK_COPY, region.name, parent=minus_id
                )
                self._adopt_pending(
                    plus_id,
                    region.name,
                    scan_vertices=component,
                    allowed_vertices=component | {source, sink},
                )
                for vertex in component:
                    self.context.setdefault(vertex, plus_id)
            # Contract: drop every internal vertex of the group and stand in a
            # single special edge from the shared source to the shared sink.
            for component in group_components:
                self.work.remove_vertices(component)
            if not self.work.has_edge(source, sink):
                self.work.add_edge(source, sink)
            self.pending.setdefault((source, sink), []).append((minus_id, parent_name))

    def _fork_copy_terminals(
        self, region: ResolvedRegion, component: set
    ) -> tuple[RunVertex, RunVertex]:
        """Find the shared source and sink of one fork copy."""
        outside_predecessors: set = set()
        outside_successors: set = set()
        for vertex in component:
            for predecessor in self.work.predecessors(vertex):
                if predecessor not in component:
                    outside_predecessors.add(predecessor)
            for successor in self.work.successors(vertex):
                if successor not in component:
                    outside_successors.add(successor)
        if len(outside_predecessors) != 1 or len(outside_successors) != 1:
            raise PlanConstructionError(
                f"fork {region.name!r}: a copy is not self-contained in the run "
                f"(outside predecessors {sorted(map(str, outside_predecessors))}, "
                f"outside successors {sorted(map(str, outside_successors))})"
            )
        source = next(iter(outside_predecessors))
        sink = next(iter(outside_successors))
        if source.module != region.source or sink.module != region.sink:
            raise PlanConstructionError(
                f"fork {region.name!r}: copy terminals {source}/{sink} do not "
                f"originate from {region.source!r}/{region.sink!r}"
            )
        return source, sink

    # ------------------------------------------------------------------
    # loop regions
    # ------------------------------------------------------------------
    def _process_loop(
        self,
        region: ResolvedRegion,
        parent_name: str,
        components: list[set],
    ) -> None:
        for component in components:
            serial_edges = self._serial_edges(region, component)
            copies = self._split_component(component, serial_edges)
            ordered = self._order_copies(region, copies, serial_edges)

            minus_id = self.plan.add_node(PlanNodeKind.LOOP_GROUP, region.name)
            for copy_vertices in ordered:
                plus_id = self.plan.add_node(
                    PlanNodeKind.LOOP_COPY, region.name, parent=minus_id
                )
                self._adopt_pending(
                    plus_id,
                    region.name,
                    scan_vertices=copy_vertices,
                    allowed_vertices=copy_vertices,
                )
                for vertex in copy_vertices:
                    self.context.setdefault(vertex, plus_id)

            first_source = self._unique_by_module(region, ordered[0], region.source)
            last_sink = self._unique_by_module(region, ordered[-1], region.sink)
            removable = set(component) - {first_source, last_sink}
            self.work.remove_vertices(removable)
            if not self.work.has_edge(first_source, last_sink):
                self.work.add_edge(first_source, last_sink)
            self.pending.setdefault((first_source, last_sink), []).append(
                (minus_id, parent_name)
            )

    def _serial_edges(self, region: ResolvedRegion, component: set) -> set[tuple]:
        """Edges from a sink-origin vertex to a source-origin vertex inside the chain."""
        serial: set[tuple] = set()
        for vertex in component:
            if vertex.module != region.sink:
                continue
            for successor in self.work.successors(vertex):
                if successor in component and successor.module == region.source:
                    serial.add((vertex, successor))
        return serial

    def _split_component(self, component: set, serial_edges: set[tuple]) -> list[set]:
        """Split a loop chain into individual copies by cutting the serial edges."""
        remaining = set(component)
        copies: list[set] = []
        while remaining:
            start = next(iter(remaining))
            copy = {start}
            remaining.discard(start)
            queue: deque = deque([start])
            while queue:
                current = queue.popleft()
                neighbors = [
                    n
                    for n in self.work.successors(current)
                    if (current, n) not in serial_edges
                ] + [
                    n
                    for n in self.work.predecessors(current)
                    if (n, current) not in serial_edges
                ]
                for neighbor in neighbors:
                    if neighbor in remaining:
                        remaining.discard(neighbor)
                        copy.add(neighbor)
                        queue.append(neighbor)
            copies.append(copy)
        return copies

    def _order_copies(
        self,
        region: ResolvedRegion,
        copies: list[set],
        serial_edges: set[tuple],
    ) -> list[set]:
        """Order loop copies along the serial-composition edges."""
        if len(copies) == 1:
            return copies
        copy_of: dict[RunVertex, int] = {}
        for index, copy_vertices in enumerate(copies):
            for vertex in copy_vertices:
                copy_of[vertex] = index

        next_of: dict[int, int] = {}
        has_previous: set[int] = set()
        for tail, head in serial_edges:
            tail_copy, head_copy = copy_of[tail], copy_of[head]
            if tail_copy == head_copy or tail_copy in next_of or head_copy in has_previous:
                raise PlanConstructionError(
                    f"loop {region.name!r}: serial edges do not form a simple chain"
                )
            next_of[tail_copy] = head_copy
            has_previous.add(head_copy)

        start_candidates = [i for i in range(len(copies)) if i not in has_previous]
        if len(start_candidates) != 1:
            raise PlanConstructionError(
                f"loop {region.name!r}: could not identify the first copy of the chain"
            )
        order: list[set] = []
        current = start_candidates[0]
        seen: set[int] = set()
        while True:
            if current in seen:
                raise PlanConstructionError(
                    f"loop {region.name!r}: serial edges form a cycle"
                )
            seen.add(current)
            order.append(copies[current])
            if current not in next_of:
                break
            current = next_of[current]
        if len(order) != len(copies):
            raise PlanConstructionError(
                f"loop {region.name!r}: the serial chain does not cover every copy"
            )
        return order

    def _unique_by_module(
        self, region: ResolvedRegion, vertices: set, module: str
    ) -> RunVertex:
        matches = [v for v in vertices if v.module == module]
        if len(matches) != 1:
            raise PlanConstructionError(
                f"loop {region.name!r}: expected exactly one {module!r} execution in a "
                f"copy, found {len(matches)}"
            )
        return matches[0]

    # ------------------------------------------------------------------
    # pending group adoption
    # ------------------------------------------------------------------
    def _adopt_pending(
        self,
        plus_id: int,
        region_name: str,
        *,
        scan_vertices: set,
        allowed_vertices: set,
    ) -> None:
        """Attach child group nodes whose special edge lies inside this copy.

        A pending ``-`` node is adopted only if its special edge has both
        endpoints inside the copy (including the copy's terminals for forks)
        and its region's hierarchy parent is the region of this ``+`` copy —
        the latter guards against shared boundary vertices of unrelated
        regions.
        """
        for vertex in scan_vertices:
            incident = [
                (predecessor, vertex) for predecessor in self.work.predecessors(vertex)
            ] + [
                (vertex, successor) for successor in self.work.successors(vertex)
            ]
            for edge in incident:
                entries = self.pending.get(edge)
                if not entries:
                    continue
                tail, head = edge
                if tail not in allowed_vertices or head not in allowed_vertices:
                    continue
                keep: list[tuple[int, str]] = []
                for minus_id, parent_name in entries:
                    if parent_name == region_name:
                        self.plan.attach(minus_id, plus_id)
                    else:
                        keep.append((minus_id, parent_name))
                if keep:
                    self.pending[edge] = keep
                else:
                    del self.pending[edge]
