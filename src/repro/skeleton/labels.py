"""Run labels of the skeleton-based labeling scheme (Section 4.4).

Every run vertex receives a label from ``Dr = N^3 x Dg``: the three context
coordinates ``(q1, q2, q3)`` plus the skeleton label of the vertex's origin.
This module defines the label type and the bit accounting used to reproduce
the label-length experiments (Lemma 4.7 and Figures 12, 15 and 18).
"""

from __future__ import annotations

import math
from typing import Any, NamedTuple

__all__ = ["RunLabel", "context_bits", "run_label_bits"]


class RunLabel(NamedTuple):
    """A skeleton-based run label ``(q1, q2, q3, skeleton)``.

    ``q1``, ``q2`` and ``q3`` are the positions of the vertex's context in the
    three total orders of Algorithm 1; ``skeleton`` is the reachability label
    of the vertex's origin under the specification labeling scheme.
    """

    q1: int
    q2: int
    q3: int
    skeleton: Any

    @property
    def context(self) -> tuple[int, int, int]:
        """The three context coordinates."""
        return (self.q1, self.q2, self.q3)


def context_bits(nonempty_plus_nodes: int) -> int:
    """Bits needed for one context coordinate: ``ceil(log2(n+T))`` (at least 1)."""
    if nonempty_plus_nodes <= 1:
        return 1
    return math.ceil(math.log2(nonempty_plus_nodes))


def run_label_bits(nonempty_plus_nodes: int, skeleton_bits: int) -> int:
    """Total bits of a run label: three coordinates plus the skeleton label.

    This mirrors the accounting of Lemma 4.7: ``3 log n+T + |skeleton|`` where
    the skeleton term is whatever the specification scheme charges (``log nG``
    for an amortized identifier, ``nG`` for a raw TCM row, 0 for BFS).
    """
    return 3 * context_bits(nonempty_plus_nodes) + skeleton_bits
