"""Online skeleton labeling: label a run *while it is still executing*.

Section 9 of the paper names this as the natural next step: "design efficient
and compact dynamic or online labeling schemes, so that data can be labeled
and stored in a database along with its label as soon as it is generated ...
this would enable efficient provenance queries on intermediate data results
even before the workflow completes."

:class:`OnlineRun` implements that scenario for engines that know which fork
copy / loop iteration they are currently executing (exactly the information a
system such as Taverna records in its log, as the paper notes for Figure 13).
The engine drives a small event API:

* :meth:`PlusScope.execute` — a module execution finished inside a scope;
* :meth:`PlusScope.begin_execution` / :meth:`GroupHandle.new_copy` — a fork or
  loop of the specification starts executing / gains one more copy;
* :meth:`OnlineRun.connect` — a data channel between two executions.

The execution plan and the context function are therefore maintained
incrementally and never need to be reconstructed.  Reachability queries are
available at any moment; the three-order context encoding is recomputed
lazily (only when the plan changed since the last query), so a query burst
between structural changes costs the same O(1) per query as in the offline
scheme.

Correctness on a growing run follows from the prefix property of workflow
execution: the visible part of a run is always predecessor-closed (a module
execution only appears after everything it depends on), and on a
predecessor-closed prefix the reachability relation between already-visible
vertices equals the relation in the eventual complete run.  The Algorithm 3
predicate therefore returns final answers even for queries asked mid-run.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.exceptions import LabelingError, RunConformanceError
from repro.graphs.digraph import DiGraph
from repro.labeling.base import ReachabilityIndex, VertexHandleAPI
from repro.skeleton.construct import construct_plan
from repro.skeleton.labels import RunLabel
from repro.skeleton.orders import ContextEncoding, encode_contexts
from repro.skeleton.skl import (
    LabelingTimings,
    SkeletonLabeledRun,
    SkeletonLabeler,
    skeleton_predicate,
    skeleton_predicate_many,
)
from repro.workflow.execution import owned_vertices
from repro.workflow.hierarchy import ROOT_NAME
from repro.workflow.plan import ExecutionPlan, PlanNodeKind
from repro.workflow.run import RunVertex, WorkflowRun
from repro.workflow.specification import WorkflowSpecification

__all__ = ["GroupHandle", "PlusScope", "OnlineRun", "OnlineRunView"]


class GroupHandle:
    """One execution of a fork or loop (an ``F-``/``L-`` plan node) in progress."""

    def __init__(self, run: "OnlineRun", node_id: int, region_name: str) -> None:
        self._run = run
        self.node_id = node_id
        self.region_name = region_name

    def new_copy(self) -> "PlusScope":
        """Start one more copy of the region (parallel branch or next iteration).

        For loops, copies must be created in serial order — the order of
        ``new_copy`` calls defines the iteration order.
        """
        return self._run._new_copy(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroupHandle(region={self.region_name!r}, node={self.node_id})"


class PlusScope:
    """A single fork/loop copy (or the whole run) currently being executed."""

    def __init__(self, run: "OnlineRun", node_id: int, hierarchy_name: str) -> None:
        self._run = run
        self.node_id = node_id
        self.hierarchy_name = hierarchy_name

    def execute(self, module: str, instance: Optional[int] = None) -> RunVertex:
        """Record one execution of *module* whose context is this scope."""
        return self._run._execute(self, module, instance)

    def begin_execution(self, region_name: str) -> GroupHandle:
        """Start executing the child region *region_name* inside this scope."""
        return self._run._begin_execution(self, region_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlusScope(region={self.hierarchy_name!r}, node={self.node_id})"


class OnlineRun:
    """A run under execution, labeled incrementally (dynamic SKL).

    Parameters
    ----------
    labeler:
        Either a :class:`~repro.skeleton.skl.SkeletonLabeler` (reused across
        runs, sharing its skeleton labels) or a
        :class:`~repro.workflow.specification.WorkflowSpecification`, in which
        case a TCM-backed labeler is created.
    name:
        Name of the run being recorded.
    validate_edges:
        When ``True`` (default), :meth:`connect` rejects edges whose origins
        are neither a specification edge nor a loop-back (serial composition)
        edge — cheap protection against mis-wired events.
    """

    #: labels shift while the run is being recorded (positions in the three
    #: orders move as copies arrive), so consumers such as the batch query
    #: engine must never memoize answers or labels derived from this index
    stable_labels = False

    def __init__(
        self,
        labeler: Union[SkeletonLabeler, WorkflowSpecification],
        *,
        name: str = "online-run",
        validate_edges: bool = True,
    ) -> None:
        if isinstance(labeler, WorkflowSpecification):
            labeler = SkeletonLabeler(labeler, "tcm")
        self.labeler = labeler
        self.specification: WorkflowSpecification = labeler.specification
        self.spec_index: ReachabilityIndex = labeler.spec_index
        self.name = name
        self.validate_edges = validate_edges

        self._hierarchy = self.specification.hierarchy
        self._owned = owned_vertices(self.specification)
        self._allowed_edges = self._allowed_origin_edges()

        self.graph = DiGraph()
        self.plan = ExecutionPlan()
        self.context: dict[RunVertex, int] = {}
        # the append log: every recorded execution with its context node, in
        # event order.  Incremental consumers (OnlineKernel) read suffixes
        # of this list instead of walking the whole context dict, so one
        # sync costs O(appended), not O(recorded so far).
        self._append_log: list[tuple[RunVertex, int]] = []
        self._instance_counters: dict[str, int] = {}
        self._groups_per_scope: dict[tuple[int, str], int] = {}
        self._scope_of_node: dict[int, str] = {}

        root_id = self.plan.add_root()
        self._scope_of_node[root_id] = ROOT_NAME
        self.root_scope = PlusScope(self, root_id, ROOT_NAME)

        self._encoding: Optional[ContextEncoding] = None
        self._dirty = True
        self.relabel_count = 0

        # data provenance recorded as the run executes (Section 6 + Section 9)
        self._data_producer: dict[str, RunVertex] = {}
        self._data_consumers: dict[str, set[RunVertex]] = {}

    # ------------------------------------------------------------------
    # event API (driven by the workflow engine)
    # ------------------------------------------------------------------
    def _execute(
        self, scope: PlusScope, module: str, instance: Optional[int]
    ) -> RunVertex:
        if not self.specification.has_module(module):
            raise RunConformanceError(f"unknown module {module!r}")
        owned = self._owned[scope.hierarchy_name]
        if module not in owned:
            raise RunConformanceError(
                f"module {module!r} is not executed directly inside "
                f"{'the top-level workflow' if scope.hierarchy_name == ROOT_NAME else scope.hierarchy_name!r}; "
                f"expected one of {sorted(map(str, owned))}"
            )
        if instance is None:
            self._instance_counters[module] = self._instance_counters.get(module, 0) + 1
            instance = self._instance_counters[module]
        else:
            self._instance_counters[module] = max(
                self._instance_counters.get(module, 0), instance
            )
        vertex = RunVertex(module, instance)
        if self.graph.has_vertex(vertex):
            raise RunConformanceError(f"execution {vertex} was already recorded")
        self.graph.add_vertex(vertex)
        self.context[vertex] = scope.node_id
        self._append_log.append((vertex, scope.node_id))
        self._dirty = True
        return vertex

    def _begin_execution(self, scope: PlusScope, region_name: str) -> GroupHandle:
        if region_name not in self._hierarchy:
            raise RunConformanceError(f"unknown fork/loop region {region_name!r}")
        node = self._hierarchy.node(region_name)
        if node.parent != scope.hierarchy_name:
            raise RunConformanceError(
                f"region {region_name!r} is not nested directly inside "
                f"{'the top-level workflow' if scope.hierarchy_name == ROOT_NAME else scope.hierarchy_name!r}"
            )
        key = (scope.node_id, region_name)
        if key in self._groups_per_scope:
            raise RunConformanceError(
                f"region {region_name!r} was already started inside this scope; "
                "add further copies through the existing GroupHandle"
            )
        kind = PlanNodeKind.FORK_GROUP if node.is_fork else PlanNodeKind.LOOP_GROUP
        group_id = self.plan.add_node(kind, region_name, parent=scope.node_id)
        self._groups_per_scope[key] = group_id
        self._dirty = True
        return GroupHandle(self, group_id, region_name)

    def _new_copy(self, group: GroupHandle) -> PlusScope:
        node = self._hierarchy.node(group.region_name)
        kind = PlanNodeKind.FORK_COPY if node.is_fork else PlanNodeKind.LOOP_COPY
        copy_id = self.plan.add_node(kind, group.region_name, parent=group.node_id)
        self._scope_of_node[copy_id] = group.region_name
        self._dirty = True
        return PlusScope(self, copy_id, group.region_name)

    def connect(self, producer: RunVertex, consumer: RunVertex) -> None:
        """Record a data channel from *producer* to *consumer*."""
        for vertex in (producer, consumer):
            if not self.graph.has_vertex(vertex):
                raise RunConformanceError(f"unknown execution {vertex}")
        if self.validate_edges:
            origin_pair = (producer.module, consumer.module)
            if origin_pair not in self._allowed_edges:
                raise RunConformanceError(
                    f"edge {producer} -> {consumer} does not correspond to a "
                    "specification edge or a loop iteration boundary"
                )
        self.graph.add_edge(producer, consumer)
        # Edges never change contexts or the plan, so queries stay valid.

    def attach_data(
        self, producer: RunVertex, consumer: RunVertex, items: "list[str] | tuple[str, ...]"
    ) -> None:
        """Record data items flowing over an existing edge, as soon as they exist.

        This is the future-work scenario of Section 9: every data item becomes
        queryable (:meth:`data_depends_on_data`, :meth:`data_depends_on_module`)
        the moment it is produced, long before the workflow completes.  Items
        must respect the single-writer rule of Section 6.
        """
        if not self.graph.has_edge(producer, consumer):
            raise RunConformanceError(
                f"cannot attach data to {producer} -> {consumer}: no such channel yet"
            )
        for item in items:
            item_id = str(item)
            known = self._data_producer.get(item_id)
            if known is not None and known != producer:
                raise RunConformanceError(
                    f"data item {item_id!r} is produced by both {known} and {producer}"
                )
            self._data_producer[item_id] = producer
            self._data_consumers.setdefault(item_id, set()).add(consumer)

    def data_items(self) -> list[str]:
        """Identifiers of every data item recorded so far."""
        return list(self._data_producer)

    def _item_producer(self, item: str) -> RunVertex:
        try:
            return self._data_producer[str(item)]
        except KeyError:
            raise RunConformanceError(f"unknown data item {item!r}") from None

    def data_depends_on_data(self, item: str, other: str) -> bool:
        """Does *item* depend on *other* in the run recorded so far?"""
        producer = self._item_producer(item)
        consumers = self._data_consumers.get(str(other), set())
        self._item_producer(other)  # raise on unknown items
        return any(self.reaches(consumer, producer) for consumer in consumers)

    def data_depends_on_module(self, item: str, module: RunVertex) -> bool:
        """Does data item *item* depend on module execution *module*?"""
        return self.reaches(module, self._item_producer(item))

    def _allowed_origin_edges(self) -> set[tuple[str, str]]:
        allowed = set(self.specification.graph.iter_edges())
        for loop in self.specification.loops:
            allowed.add((loop.sink, loop.source))
        return allowed

    # ------------------------------------------------------------------
    # queries on the partial run
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        """Number of module executions recorded so far."""
        return self.graph.vertex_count

    @property
    def edge_count(self) -> int:
        """Number of data channels recorded so far."""
        return self.graph.edge_count

    def _current_encoding(self) -> ContextEncoding:
        if self._dirty or self._encoding is None:
            self._encoding = encode_contexts(self.plan, self.context)
            self._dirty = False
            self.relabel_count += 1
        return self._encoding

    def context_encoding(self) -> ContextEncoding:
        """The up-to-date three-order context encoding of the run so far.

        Recomputed lazily (only when the recorded structure changed since
        the last query); consumers that maintain compiled label arrays
        incrementally — :class:`~repro.engine.online.OnlineKernel` — read
        node positions from here instead of going through
        :meth:`label_of` per vertex.
        """
        return self._current_encoding()

    def label_of(self, vertex: RunVertex) -> RunLabel:
        """Return the vertex's label under the *current* state of the run.

        Labels may change as further copies are recorded (positions in the
        three orders shift); :meth:`reaches` always uses the current labels,
        so query answers are stable even though the encodings are not final
        until :meth:`finalize`.
        """
        if vertex not in self.context:
            raise LabelingError(f"execution {vertex} has not been recorded")
        encoding = self._current_encoding()
        q1, q2, q3 = encoding[self.context[vertex]]
        return RunLabel(q1=q1, q2=q2, q3=q3, skeleton=self.spec_index.label_of(vertex.module))

    def reaches(self, source: RunVertex, target: RunVertex) -> bool:
        """Decide reachability between two already-recorded executions."""
        return skeleton_predicate(
            self.label_of(source), self.label_of(target), self.spec_index
        )

    def appended_executions(self, since: int = 0) -> list[tuple[RunVertex, int]]:
        """The executions recorded after the first *since*, in event order.

        Each entry is ``(vertex, context_node_id)``.  This is the append
        log behind O(appended) incremental maintenance: a consumer that
        already folded ``since`` executions (e.g.
        :class:`~repro.engine.online.OnlineKernel`) fetches exactly the
        suffix it is missing instead of re-walking the whole context
        function per sync.
        """
        if since < 0:
            raise ValueError(f"since must be non-negative, got {since}")
        return self._append_log[since:]

    def version_token(self) -> tuple[int, int]:
        """A token that changes whenever recorded structure can move labels.

        Covers both appended executions (the vertex set grew, so any handed
        out vertex handles are stale) and new fork/loop copies (plan nodes
        shift positions in the three context orders, so labels move even
        with an unchanged vertex set).  Consumers that compile anything from
        this run — the session planner's engine over :meth:`query_view` —
        compare tokens before executing and rebuild on change.
        """
        return (self.graph.vertex_version, len(self.plan))

    def query_view(self) -> "OnlineRunView":
        """A live ``(D, φ, π)`` + vertex-handle view of the run so far.

        Unlike :meth:`snapshot` this is *not* independent of the online
        object: it always answers from the current labels (and therefore
        stays correct across appends), at the price of declaring
        ``stable_labels = False`` so consumers never memoize through it.
        """
        return OnlineRunView(self)

    # ------------------------------------------------------------------
    # snapshots and finalization
    # ------------------------------------------------------------------
    def snapshot(self) -> SkeletonLabeledRun:
        """Return a queryable labeled view of the run recorded so far.

        The snapshot is independent of the online object: further events do
        not change it.  The partial graph is not required to be a complete
        flow network, so run validation is skipped.
        """
        run = WorkflowRun(
            self.specification, self.graph.copy(), name=f"{self.name}@{self.vertex_count}",
            validate=False,
        )
        encoding = self._current_encoding()
        labels = {
            vertex: RunLabel(
                *encoding[node_id], skeleton=self.spec_index.label_of(vertex.module)
            )
            for vertex, node_id in self.context.items()
        }
        return SkeletonLabeledRun(
            run=run,
            spec_index=self.spec_index,
            labels=labels,
            encoding=encoding,
            plan=self.plan,
            context=dict(self.context),
            timings=LabelingTimings(0.0, 0.0, 0.0),
        )

    def finalize(self, *, cross_check: bool = True) -> SkeletonLabeledRun:
        """Validate the completed run and return its labeled form.

        With ``cross_check`` enabled (default) the incrementally maintained
        execution plan is verified against an independent reconstruction by
        :func:`~repro.skeleton.construct.construct_plan` — a strong guarantee
        that the event stream and the final graph tell the same story.
        """
        self.plan.validate()
        run = WorkflowRun(self.specification, self.graph.copy(), name=self.name)
        if cross_check:
            reconstructed = construct_plan(self.specification, run)
            if reconstructed.plan.signature() != self.plan.signature():
                raise RunConformanceError(
                    "the incrementally maintained execution plan does not match the "
                    "plan reconstructed from the final run graph"
                )
        return self.labeler.label_run(run, plan=self.plan, context=dict(self.context))


class OnlineRunView(VertexHandleAPI):
    """The batch-queryable adapter over an :class:`OnlineRun` in progress.

    :class:`OnlineRun` itself only offers the per-pair event-loop API; this
    view completes the ``(D, φ, π)`` duck type (``reaches_labels`` /
    ``reaches_many``) plus the :class:`~repro.labeling.base.VertexHandleAPI`
    surface, so the query engine and the session planner accept a run that
    is still executing like any other index.

    The view stays *live*: answers always reflect the run recorded so far.
    It declares ``stable_labels = False``, which makes every consumer
    re-resolve labels per batch and disables answer memoization, and its
    vertex handles are validated against the run graph's vertex version —
    once a new execution is appended, stale handles raise instead of
    mis-answering, and callers re-intern against a fresh view (the session
    does this automatically per append).
    """

    #: labels shift while the run is recorded; never memoize through this view
    stable_labels = False

    def __init__(self, online: OnlineRun) -> None:
        self._online = online
        self.spec_index = online.spec_index

    @property
    def online(self) -> OnlineRun:
        """The online run this view adapts."""
        return self._online

    # -- vertex-handle template hooks (see VertexHandleAPI) -------------
    def _handle_vertices(self):
        # context preserves event order, so handles follow append order
        return list(self._online.context)

    def _handle_version(self):
        return self._online.graph.vertex_version

    # -- the (D, φ, π) surface over the partial run ----------------------
    def label_of(self, vertex: RunVertex) -> RunLabel:
        """The vertex's label under the *current* state of the run."""
        return self._online.label_of(vertex)

    def reaches_labels(self, first: RunLabel, second: RunLabel) -> bool:
        """``πr`` over two current labels (Algorithm 3)."""
        return skeleton_predicate(first, second, self.spec_index)

    def reaches(self, source: RunVertex, target: RunVertex) -> bool:
        """Decide reachability between two already-recorded executions."""
        return self._online.reaches(source, target)

    def reaches_many(self, label_pairs) -> list[bool]:
        """Batch ``πr`` with one spec-index call for all fall-throughs."""
        return skeleton_predicate_many(label_pairs, self.spec_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineRunView(run={self._online.name!r}, "
            f"recorded={self._online.vertex_count})"
        )
