"""Three-dimensional context encoding (Section 4.3, Algorithm 1).

Given an execution plan and the set of *nonempty* ``+`` nodes (those that are
the context of at least one run vertex), this module produces the three total
orders ``O1``, ``O2``, ``O3`` of Algorithm 1 and encodes every nonempty ``+``
node by its positions in them.

The three preorder traversals differ only in how the children of group nodes
are visited:

* ``O1`` visits all children left to right;
* ``O2`` reverses the children of ``F-`` nodes;
* ``O3`` reverses the children of ``L-`` nodes.

Lemma 4.5 then lets the query predicate classify the least common ancestor of
two contexts (``F-``, ``L-`` or ``+``) from the pairwise order of their
positions alone.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.exceptions import LabelingError
from repro.workflow.plan import ExecutionPlan, PlanNode, PlanNodeKind

__all__ = ["ContextEncoding", "generate_three_orders", "encode_contexts"]


@dataclass(frozen=True)
class ContextEncoding:
    """Positions of the nonempty ``+`` nodes in the three total orders.

    ``positions[node_id] == (q1, q2, q3)`` with 1-based positions.
    """

    positions: dict[int, tuple[int, int, int]]

    def __getitem__(self, node_id: int) -> tuple[int, int, int]:
        try:
            return self.positions[node_id]
        except KeyError:
            raise LabelingError(
                f"plan node {node_id} is empty or unknown and has no context encoding"
            ) from None

    def __contains__(self, node_id: object) -> bool:
        return node_id in self.positions

    def __len__(self) -> int:
        return len(self.positions)

    @property
    def nonempty_count(self) -> int:
        """``n+T``: the number of nonempty ``+`` nodes (Lemma 4.7)."""
        return len(self.positions)


def _traversal_positions(
    plan: ExecutionPlan,
    nonempty: set[int],
    reverse_kind: PlanNodeKind | None,
) -> dict[int, int]:
    """Record positions of nonempty ``+`` nodes in one preorder traversal."""

    def child_order(node: PlanNode) -> list[int]:
        if reverse_kind is not None and node.kind is reverse_kind:
            return list(reversed(node.children))
        return list(node.children)

    positions: dict[int, int] = {}
    counter = 0
    for node in plan.iter_preorder(child_order):
        if node.is_plus and node.node_id in nonempty:
            counter += 1
            positions[node.node_id] = counter
    return positions


def generate_three_orders(
    plan: ExecutionPlan, nonempty: Iterable[int]
) -> tuple[dict[int, int], dict[int, int], dict[int, int]]:
    """Return the ``O1``, ``O2``, ``O3`` positions of the nonempty ``+`` nodes."""
    nonempty_set = set(nonempty)
    order_one = _traversal_positions(plan, nonempty_set, reverse_kind=None)
    order_two = _traversal_positions(plan, nonempty_set, reverse_kind=PlanNodeKind.FORK_GROUP)
    order_three = _traversal_positions(plan, nonempty_set, reverse_kind=PlanNodeKind.LOOP_GROUP)
    return order_one, order_two, order_three


def encode_contexts(plan: ExecutionPlan, context: dict) -> ContextEncoding:
    """Build the three-dimensional encoding for a context assignment.

    ``context`` maps run vertices to ``+`` plan node identifiers; only the
    nodes that actually appear (the nonempty ones) receive positions.
    """
    nonempty = set(context.values())
    for node_id in nonempty:
        node = plan.node(node_id)
        if not node.is_plus:
            raise LabelingError(
                f"context assignment references non-+ plan node {node_id} ({node.kind.value})"
            )
    order_one, order_two, order_three = generate_three_orders(plan, nonempty)
    positions = {
        node_id: (order_one[node_id], order_two[node_id], order_three[node_id])
        for node_id in nonempty
    }
    return ContextEncoding(positions=positions)
