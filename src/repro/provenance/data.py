"""Data items flowing over the edges of a run (Section 6).

The workflow model treats every edge of a run as a data channel carrying a
set of data items produced by the edge's tail module and consumed by its head
module.  :class:`DataFlow` stores that association and validates the model's
single-writer rule: every data item is produced by exactly one module
execution, although it may be read by many.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.exceptions import RunConformanceError
from repro.workflow.run import RunVertex, WorkflowRun

__all__ = ["DataItem", "DataFlow", "generate_dataflow"]


@dataclass(frozen=True)
class DataItem:
    """A logical data unit exchanged between module executions."""

    item_id: str

    def __str__(self) -> str:
        return self.item_id


@dataclass
class DataFlow:
    """The association of data items with the edges of one run.

    ``assignments`` maps run edges ``(producer, consumer)`` to the tuple of
    data items flowing over them.  The class maintains the derived
    ``Output(x)`` (unique producer) and ``Inputs(x)`` (set of consumers)
    functions used by the data labeling of Section 6.
    """

    run: WorkflowRun
    assignments: dict[tuple[RunVertex, RunVertex], tuple[DataItem, ...]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        self._producer: dict[DataItem, RunVertex] = {}
        self._consumers: dict[DataItem, set[RunVertex]] = {}
        for edge, items in self.assignments.items():
            self._register(edge, items)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def attach(
        self,
        producer: RunVertex,
        consumer: RunVertex,
        items: Iterable[DataItem | str],
    ) -> None:
        """Attach *items* to the run edge ``producer -> consumer``."""
        normalized = tuple(
            item if isinstance(item, DataItem) else DataItem(str(item)) for item in items
        )
        edge = (producer, consumer)
        existing = self.assignments.get(edge, ())
        self.assignments[edge] = existing + normalized
        self._register(edge, normalized)

    def _register(
        self, edge: tuple[RunVertex, RunVertex], items: tuple[DataItem, ...]
    ) -> None:
        producer, consumer = edge
        if not self.run.graph.has_edge(producer, consumer):
            raise RunConformanceError(
                f"cannot attach data to {producer} -> {consumer}: the run has no such edge"
            )
        for item in items:
            known_producer = self._producer.get(item)
            if known_producer is not None and known_producer != producer:
                raise RunConformanceError(
                    f"data item {item} is produced by both {known_producer} and "
                    f"{producer}; the model requires a unique producer"
                )
            self._producer[item] = producer
            self._consumers.setdefault(item, set()).add(consumer)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def items(self) -> list[DataItem]:
        """All data items, in first-registration order."""
        return list(self._producer)

    def data_on(self, producer: RunVertex, consumer: RunVertex) -> tuple[DataItem, ...]:
        """Return ``Data(e)`` for the edge ``producer -> consumer``."""
        return self.assignments.get((producer, consumer), ())

    def output_of(self, item: DataItem | str) -> RunVertex:
        """Return ``Output(x)``: the unique module execution that wrote *item*."""
        item = item if isinstance(item, DataItem) else DataItem(str(item))
        try:
            return self._producer[item]
        except KeyError:
            raise RunConformanceError(f"unknown data item: {item}") from None

    def inputs_of(self, item: DataItem | str) -> set[RunVertex]:
        """Return ``Inputs(x)``: every module execution that read *item*."""
        item = item if isinstance(item, DataItem) else DataItem(str(item))
        if item not in self._producer:
            raise RunConformanceError(f"unknown data item: {item}")
        return set(self._consumers.get(item, set()))

    def __contains__(self, item: object) -> bool:
        normalized = item if isinstance(item, DataItem) else DataItem(str(item))
        return normalized in self._producer

    def __len__(self) -> int:
        return len(self._producer)

    @property
    def max_fanout(self) -> int:
        """``k``: the largest number of input modules of any data item."""
        return max((len(consumers) for consumers in self._consumers.values()), default=0)

    def total_assignments(self) -> int:
        """``Σ_e |Data(e)|`` — the input size of data labeling."""
        return sum(len(items) for items in self.assignments.values())


def generate_dataflow(
    run: WorkflowRun,
    *,
    items_per_edge: int = 1,
    shared_fraction: float = 0.2,
    rng: random.Random | None = None,
) -> DataFlow:
    """Generate a synthetic data flow for *run*.

    Every edge receives *items_per_edge* fresh data items produced by its
    tail; additionally, a *shared_fraction* of producers re-send one of their
    items over each further outgoing edge, so that some items have several
    input modules (exercising the ``k > 1`` case of the label-length analysis).
    """
    rng = rng or random.Random(0)
    flow = DataFlow(run=run)
    counter = 0
    first_item_of: dict[RunVertex, DataItem] = {}
    for producer, consumer in run.graph.iter_edges():
        fresh_items = []
        for _ in range(items_per_edge):
            counter += 1
            fresh_items.append(DataItem(f"x{counter}"))
        if fresh_items:
            first_item_of.setdefault(producer, fresh_items[0])
        if producer in first_item_of and rng.random() < shared_fraction:
            shared = first_item_of[producer]
            if shared not in fresh_items:
                fresh_items.append(shared)
        flow.attach(producer, consumer, fresh_items)
    return flow
