"""Data labels: extending module reachability labels to data items (Section 6).

A data item ``x`` is labeled by ``(φ(Output(x)), {φ(v) | v ∈ Inputs(x)})`` —
the reachability label of its producing module execution plus the labels of
every module execution that reads it.  With these labels, data-to-data and
data-to-module dependencies reduce to constant-many module reachability
checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["DataLabel", "data_label_bits"]


@dataclass(frozen=True)
class DataLabel:
    """The reachability label of a data item.

    Attributes
    ----------
    output:
        ``φ(Output(x))`` — label of the unique producer.
    inputs:
        ``{φ(v) | v ∈ Inputs(x)}`` — labels of all consumers, stored as a
        tuple in registration order.
    """

    output: Any
    inputs: tuple[Any, ...]

    @property
    def fanout(self) -> int:
        """Number of input modules of the item (the ``k`` of Section 6)."""
        return len(self.inputs)


def data_label_bits(module_label_bits: int, fanout: int) -> int:
    """Length of a data label given the module label length and the item fanout.

    Section 6: the label length increases by a factor of ``k + 1`` where ``k``
    is the number of input modules.
    """
    return module_label_bits * (fanout + 1)
