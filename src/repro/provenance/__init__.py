"""Data provenance: data items, data labels and dependency queries (Section 6)."""

from repro.provenance.data import DataFlow, DataItem, generate_dataflow
from repro.provenance.labels import DataLabel, data_label_bits
from repro.provenance.queries import ProvenanceIndex

__all__ = [
    "DataFlow",
    "DataItem",
    "generate_dataflow",
    "DataLabel",
    "data_label_bits",
    "ProvenanceIndex",
]
