"""Provenance query engine over a labeled run with data flow (Section 6).

:class:`ProvenanceIndex` combines a reachability-labeled run (any object with
``label_of`` / ``reaches_labels`` — normally a
:class:`~repro.skeleton.skl.SkeletonLabeledRun`) with a
:class:`~repro.provenance.data.DataFlow`, and answers the dependency queries
that motivate the paper:

* does data item ``x`` depend on data item ``x'``?
* does data item ``x`` depend on module execution ``v``?
* does module execution ``v`` depend on data item ``x``?
* which data items were affected by (depend on) a given item — the
  "downstream of a bad result" query of the introduction.
"""

from __future__ import annotations

from repro.provenance.data import DataFlow, DataItem
from repro.provenance.labels import DataLabel
from repro.workflow.run import RunVertex

__all__ = ["ProvenanceIndex"]


class ProvenanceIndex:
    """Answer data/module dependency queries using reachability labels."""

    def __init__(self, labeled_run, dataflow: DataFlow) -> None:
        self.labeled_run = labeled_run
        self.dataflow = dataflow
        self._data_labels: dict[DataItem, DataLabel] = {}
        for item in dataflow.items():
            output_vertex = dataflow.output_of(item)
            input_vertices = sorted(dataflow.inputs_of(item))
            self._data_labels[item] = DataLabel(
                output=labeled_run.label_of(output_vertex),
                inputs=tuple(labeled_run.label_of(v) for v in input_vertices),
            )

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------
    def data_label(self, item: DataItem | str) -> DataLabel:
        """Return the data label of *item*."""
        normalized = item if isinstance(item, DataItem) else DataItem(str(item))
        return self._data_labels[normalized]

    def items(self) -> list[DataItem]:
        """All labeled data items."""
        return list(self._data_labels)

    # ------------------------------------------------------------------
    # dependency predicates
    # ------------------------------------------------------------------
    def data_depends_on_data(self, item: DataItem | str, other: DataItem | str) -> bool:
        """Does *item* depend on *other*?

        Section 6: ``x`` depends on ``x'`` iff some input module of ``x'``
        reaches the output module of ``x``.
        """
        target = self.data_label(item)
        source = self.data_label(other)
        return any(
            self.labeled_run.reaches_labels(input_label, target.output)
            for input_label in source.inputs
        )

    def data_depends_on_module(self, item: DataItem | str, module: RunVertex) -> bool:
        """Does data item *item* depend on module execution *module*?"""
        target = self.data_label(item)
        module_label = self.labeled_run.label_of(module)
        return self.labeled_run.reaches_labels(module_label, target.output)

    def module_depends_on_data(self, module: RunVertex, item: DataItem | str) -> bool:
        """Does module execution *module* depend on data item *item*?

        A module depends on a data item when some module that read the item
        reaches it, or when it read the item directly.
        """
        source = self.data_label(item)
        module_label = self.labeled_run.label_of(module)
        if any(
            consumer == module
            for consumer in self.dataflow.inputs_of(item)
        ):
            return True
        return any(
            self.labeled_run.reaches_labels(input_label, module_label)
            for input_label in source.inputs
        )

    def module_depends_on_module(self, later: RunVertex, earlier: RunVertex) -> bool:
        """Does *later* depend on *earlier* (i.e. is *later* reachable from it)?"""
        return self.labeled_run.reaches(earlier, later)

    # ------------------------------------------------------------------
    # bulk queries
    # ------------------------------------------------------------------
    def downstream_items(self, item: DataItem | str) -> list[DataItem]:
        """Return every data item that depends on *item* (excluding itself)."""
        normalized = item if isinstance(item, DataItem) else DataItem(str(item))
        return [
            candidate
            for candidate in self._data_labels
            if candidate != normalized and self.data_depends_on_data(candidate, normalized)
        ]

    def upstream_items(self, item: DataItem | str) -> list[DataItem]:
        """Return every data item that *item* depends on (excluding itself)."""
        normalized = item if isinstance(item, DataItem) else DataItem(str(item))
        return [
            candidate
            for candidate in self._data_labels
            if candidate != normalized and self.data_depends_on_data(normalized, candidate)
        ]

    def max_data_label_fanout(self) -> int:
        """Largest fanout among the labeled items (the ``k`` of the analysis)."""
        return max((label.fanout for label in self._data_labels.values()), default=0)
