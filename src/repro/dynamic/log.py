"""The per-index record of applied edge updates.

Every mutable :class:`~repro.labeling.base.ReachabilityIndex` owns one
:class:`UpdateLog` (created lazily by its ``update_log`` accessor).  Each
applied ``insert_edge`` / ``delete_edge`` appends an :class:`UpdateRecord`
naming the strategy that served it — the scheme's delta repair, the live
path of the traversal schemes, or the dirty-region rebuild fallback — and
how many labels it touched.  Tests and the incremental-updates bench read
the log to assert an update stayed on the cheap path instead of silently
degenerating to relabel-from-scratch.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["UpdateRecord", "UpdateLog"]

#: strategy names an UpdateRecord may carry
STRATEGIES = (
    "live",  # traversal schemes: the graph mutation is the repair
    "subtree-renumber",  # interval: fresh postorder block for one tree
    "region-recompute",  # tree-cover / chain: recompute labels over the dirty region
    "chain-split",  # chain: a deleted chain link split one chain in two
    "row-patch",  # tcm: or / recompute closure rows over the dirty region
    "hop-patch",  # 2-hop: patch hop sets along the edge's frontier
    "rebuild",  # fallback: the delta could not handle it; labels rebuilt
)


@dataclass(frozen=True)
class UpdateRecord:
    """One applied edge update and how the index absorbed it."""

    #: ``"insert"`` or ``"delete"``
    op: str
    #: edge tail (the update's ``u``)
    tail: Any
    #: edge head (the update's ``v``)
    head: Any
    #: which repair path served the update (one of :data:`STRATEGIES`)
    strategy: str
    #: number of vertex labels the repair rewrote (0 on the live path)
    touched: int


class UpdateLog:
    """Append-only history of the updates applied to one index."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: list[UpdateRecord] = []

    def append(self, record: UpdateRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[UpdateRecord]:
        return iter(self._records)

    def __getitem__(self, position: int) -> UpdateRecord:
        return self._records[position]

    @property
    def last(self) -> UpdateRecord | None:
        """The most recent record, or ``None`` before any update."""
        return self._records[-1] if self._records else None

    @property
    def strategy_counts(self) -> dict[str, int]:
        """How many updates each strategy served (missing = zero)."""
        return dict(Counter(record.strategy for record in self._records))

    @property
    def rebuilds(self) -> int:
        """How many updates fell back to a rebuild."""
        return sum(1 for record in self._records if record.strategy == "rebuild")

    @property
    def touched_total(self) -> int:
        """Total labels rewritten across all updates (repair work done)."""
        return sum(record.touched for record in self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UpdateLog({self.strategy_counts!r})"
