"""Per-scheme delta strategies for edge updates on labeled indexes.

:func:`apply_insert` / :func:`apply_delete` are the single entry points
behind ``ReachabilityIndex.insert_edge`` / ``delete_edge``.  They run the
shared validation (endpoints must already be labeled, inserts must not
create a cycle), mutate the graph, dispatch to the scheme's registered
strategy, and record the outcome in the index's
:class:`~repro.dynamic.log.UpdateLog`.

A repaired index does **not** promise the same labels a fresh build would
produce — only the same *answers*.  That contract is what makes the
strategies local:

* ``interval`` — a detached or re-attached subtree is renumbered with a
  fresh postorder block strictly above every number ever assigned, so
  the rest of the forest keeps its labels untouched.  Vacated number
  ranges are never reused, which keeps old containment tests sound.
* ``tree-cover`` — the spanning forest is kept as mutable state; updates
  recompute the compressed interval sets only over the dirty region (the
  ancestor closure of the touched edge), and deleting a spanning-forest
  edge renumbers just that forest subtree before the region sweep.
* ``chain`` — inserts recompute earliest-reach maps over the ancestor
  closure of the tail; deleting a chain link splits the chain, moving
  the suffix to a fresh chain id, then repairs the same region.
* ``2-hop`` — incremental ancestor/descendant bitmasks locate the
  update's frontier; inserts add the edge tail as a hop center on every
  new path, deletes filter hop entries that no longer lie on a path and
  re-cover any pair that lost its only center.
* ``tcm`` — inserts OR the head's closure row into every ancestor row of
  the tail; deletes recompute closure rows over the ancestor region.
* traversal (``bfs``/``dfs``) — free: the graph mutation *is* the
  repair, answers are computed live.

Mutable schemes without a registered strategy fall back to a full
rebuild (``type(index).__init__``), logged as ``"rebuild"``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.exceptions import EdgeNotFoundError, GraphError, LabelingError
from repro.dynamic.log import UpdateRecord

__all__ = ["apply_insert", "apply_delete", "register_strategy"]

#: scheme name -> (insert strategy, delete strategy); each strategy mutates
#: the graph itself (after scheme-specific validation), repairs the labels,
#: and returns ``(strategy_name, labels_touched)``
_INSERT: dict[str, Callable] = {}
_DELETE: dict[str, Callable] = {}


def register_strategy(scheme_name: str, insert, delete) -> None:
    """Register the delta strategies serving one scheme's edge updates.

    Mutable schemes without registered strategies fall back to a full
    rebuild on every update, which is correct but defeats the point.
    """
    _INSERT[scheme_name] = insert
    _DELETE[scheme_name] = delete


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def apply_insert(index, tail, head) -> None:
    """Insert ``tail -> head`` into *index*'s graph and repair its labels."""
    graph = index.graph
    if tail == head:
        raise GraphError(f"self loops are not supported: {tail!r}")
    for endpoint in (tail, head):
        if not graph.has_vertex(endpoint):
            raise LabelingError(
                "the update surface repairs labels for existing vertices; "
                f"vertex {endpoint!r} was never labeled (appends go through "
                "OnlineRun)"
            )
    if graph.has_edge(tail, head):
        return  # idempotent: nothing changed, no version bump, no log entry
    if index.reaches(head, tail):
        raise GraphError(
            f"inserting edge {tail!r} -> {head!r} would create a cycle"
        )
    strategy = _INSERT.get(index.scheme_name, _fallback_insert)
    name, touched = strategy(index, tail, head)
    index._handle_label_table = None
    index.update_log.append(
        UpdateRecord(op="insert", tail=tail, head=head, strategy=name, touched=touched)
    )


def apply_delete(index, tail, head) -> None:
    """Remove ``tail -> head`` from *index*'s graph and repair its labels."""
    graph = index.graph
    if not graph.has_edge(tail, head):
        raise EdgeNotFoundError(tail, head)
    strategy = _DELETE.get(index.scheme_name, _fallback_delete)
    name, touched = strategy(index, tail, head)
    index._handle_label_table = None
    index.update_log.append(
        UpdateRecord(op="delete", tail=tail, head=head, strategy=name, touched=touched)
    )


# ----------------------------------------------------------------------
# shared region machinery
# ----------------------------------------------------------------------
def _ancestor_closure(graph, seeds) -> set:
    """Every vertex that reaches a seed, seeds included (reverse BFS)."""
    seen = set(seeds)
    queue = deque(seen)
    while queue:
        current = queue.popleft()
        for predecessor in graph.predecessors(current):
            if predecessor not in seen:
                seen.add(predecessor)
                queue.append(predecessor)
    return seen


def _region_reverse_topo(graph, region) -> list:
    """Order *region* so every in-region graph successor comes first.

    Region-local Kahn's algorithm: cost is O(|region| + edges touching
    the region), independent of the graph size — the property that keeps
    dirty-region repairs cheaper than a global topological sort.
    """
    pending = {
        vertex: sum(1 for s in graph.successors(vertex) if s in region)
        for vertex in region
    }
    ready = deque(v for v, degree in pending.items() if degree == 0)
    ordered = []
    while ready:
        vertex = ready.popleft()
        ordered.append(vertex)
        for predecessor in graph.predecessors(vertex):
            if predecessor in region:
                pending[predecessor] -= 1
                if pending[predecessor] == 0:
                    ready.append(predecessor)
    return ordered


def _region_forward_topo(graph, region) -> list:
    """Order *region* so every in-region graph predecessor comes first."""
    pending = {
        vertex: sum(1 for p in graph.predecessors(vertex) if p in region)
        for vertex in region
    }
    ready = deque(v for v, degree in pending.items() if degree == 0)
    ordered = []
    while ready:
        vertex = ready.popleft()
        ordered.append(vertex)
        for successor in graph.successors(vertex):
            if successor in region:
                pending[successor] -= 1
                if pending[successor] == 0:
                    ready.append(successor)
    return ordered


def _mask_vertices(mask: int, order) -> list:
    """Decode a bitmask into the vertices it names (``order[bit]``)."""
    vertices = []
    while mask:
        low_bit = mask & -mask
        vertices.append(order[low_bit.bit_length() - 1])
        mask ^= low_bit
    return vertices


# ----------------------------------------------------------------------
# fallback: full rebuild in place
# ----------------------------------------------------------------------
_DYN_STATE_ATTRS = ("_dyn_next_post", "_dyn_forest", "_dyn_chains", "_dyn_masks")


def _full_rebuild(index):
    """Rebuild the index in place against its (already mutated) graph."""
    for attr in _DYN_STATE_ATTRS:
        try:
            delattr(index, attr)
        except AttributeError:
            pass
    type(index).__init__(index, index.graph)
    return "rebuild", index.graph.vertex_count


def _fallback_insert(index, tail, head):
    index.graph.add_edge(tail, head)
    return _full_rebuild(index)


def _fallback_delete(index, tail, head):
    index.graph.remove_edge(tail, head)
    return _full_rebuild(index)


# ----------------------------------------------------------------------
# traversal schemes: the mutation is the repair
# ----------------------------------------------------------------------
def _live_insert(index, tail, head):
    index.graph.add_edge(tail, head)
    return "live", 0


def _live_delete(index, tail, head):
    index.graph.remove_edge(tail, head)
    return "live", 0


# ----------------------------------------------------------------------
# interval: fresh postorder block for the touched tree
# ----------------------------------------------------------------------
def _renumber_tree(index, root) -> int:
    """Assign a fresh contiguous postorder block to the tree under *root*.

    The counter is monotone across the index's lifetime, so the new block
    is disjoint from every number ever assigned: untouched trees keep
    their labels and cross-tree containment tests stay ``False``.
    """
    from repro.labeling.interval import IntervalLabel

    graph = index.graph
    counter = getattr(index, "_dyn_next_post", None)
    if counter is None:
        counter = max((label.post for label in index._labels.values()), default=0)
    labels = index._labels
    low_of: dict = {}
    touched = 0
    stack = [(root, False)]
    while stack:
        vertex, expanded = stack.pop()
        if not expanded:
            stack.append((vertex, True))
            for child in reversed(graph.successors(vertex)):
                stack.append((child, False))
            continue
        children = graph.successors(vertex)
        counter += 1
        post = counter
        low = min([low_of[c] for c in children], default=post)
        low = min(low, post)
        low_of[vertex] = low
        labels[vertex] = IntervalLabel(post=post, low=low)
        touched += 1
    index._dyn_next_post = counter
    index._bits = max(index._bits, counter.bit_length())
    return touched


def _interval_insert(index, tail, head):
    graph = index.graph
    if graph.in_degree(head) != 0:
        raise GraphError(
            f"interval labeling requires a forest; vertex {head!r} already "
            "has a parent"
        )
    graph.add_edge(tail, head)
    root = tail
    while True:
        parents = graph.predecessors(root)
        if not parents:
            break
        root = parents[0]
    return "subtree-renumber", _renumber_tree(index, root)


def _interval_delete(index, tail, head):
    index.graph.remove_edge(tail, head)
    # the detached subtree becomes its own tree; renumbering it out of the
    # ancestors' intervals is the whole repair (their ranges keep covering
    # the vacated numbers, which no vertex holds anymore)
    return "subtree-renumber", _renumber_tree(index, head)


# ----------------------------------------------------------------------
# tree-cover: dirty-region recompute over a maintained spanning forest
# ----------------------------------------------------------------------
def _tree_cover_state(index) -> dict:
    """The index's spanning-forest state, reconstructed on first update.

    The constructor's forest is a pure deterministic function of the
    graph (first predecessor in topological order), so re-deriving it
    *before* the first mutation reproduces exactly the forest the current
    labels encode — no rebuild needed to start updating.
    """
    state = getattr(index, "_dyn_forest", None)
    if state is None:
        from repro.graphs.digraph import DiGraph
        from repro.graphs.traversal import topological_sort
        from repro.labeling.interval import compute_tree_intervals

        graph = index.graph
        order = topological_sort(graph)
        position = {vertex: i for i, vertex in enumerate(order)}
        forest = DiGraph(vertices=order)
        parent: dict = {}
        for vertex in order:
            predecessors = graph.predecessors(vertex)
            if predecessors:
                parent[vertex] = min(predecessors, key=position.__getitem__)
                forest.add_edge(parent[vertex], vertex)
            else:
                parent[vertex] = None
        tree_labels = compute_tree_intervals(forest)
        state = {
            "forest": forest,
            "parent": parent,
            "tree_labels": tree_labels,
            "next_post": max((l.post for l in tree_labels.values()), default=0),
        }
        index._dyn_forest = state
    return state


def _tree_cover_recompute(index, state, region) -> int:
    """Recompute compressed interval sets over an ancestor-closed region."""
    from repro.labeling.tree_cover import TreeCoverLabel, compress_intervals

    graph = index.graph
    labels = index._labels
    tree_labels = state["tree_labels"]
    fresh: dict = {}
    for vertex in _region_reverse_topo(graph, region):
        own = tree_labels[vertex]
        gathered = [(own.low, own.post)]
        for successor in graph.successors(vertex):
            if successor in fresh:
                gathered.extend(fresh[successor])
            else:
                gathered.extend(labels[successor].intervals)
        fresh[vertex] = compress_intervals(gathered)
    for vertex, intervals in fresh.items():
        labels[vertex] = TreeCoverLabel(
            post=tree_labels[vertex].post, intervals=intervals
        )
    return len(fresh)


def _tree_cover_insert(index, tail, head):
    state = _tree_cover_state(index)
    graph = index.graph
    graph.add_edge(tail, head)
    # the forest needs no change: correctness only requires forest edges to
    # be graph edges, so the new edge simply feeds the interval-set sweep
    region = _ancestor_closure(graph, (tail,))
    return "region-recompute", _tree_cover_recompute(index, state, region)


def _renumber_forest_subtree(state, root) -> list:
    """Fresh-number the forest subtree under *root*; returns its vertices."""
    from repro.labeling.interval import IntervalLabel

    forest = state["forest"]
    tree_labels = state["tree_labels"]
    counter = state["next_post"]
    low_of: dict = {}
    renumbered: list = []
    stack = [(root, False)]
    while stack:
        vertex, expanded = stack.pop()
        if not expanded:
            stack.append((vertex, True))
            for child in reversed(forest.successors(vertex)):
                stack.append((child, False))
            continue
        children = forest.successors(vertex)
        counter += 1
        post = counter
        low = min([low_of[c] for c in children], default=post)
        low = min(low, post)
        low_of[vertex] = low
        tree_labels[vertex] = IntervalLabel(post=post, low=low)
        renumbered.append(vertex)
    state["next_post"] = counter
    return renumbered


def _tree_cover_delete(index, tail, head):
    state = _tree_cover_state(index)
    graph = index.graph
    graph.remove_edge(tail, head)
    if state["parent"].get(head) == tail:
        # the deleted edge carried the spanning forest: detach the subtree,
        # renumber it out of its old ancestors' tree intervals, and repair
        # every interval set that referenced the renumbered block
        state["forest"].remove_edge(tail, head)
        state["parent"][head] = None
        renumbered = _renumber_forest_subtree(state, head)
        index._number_bits = max(
            index._number_bits, state["next_post"].bit_length()
        )
        region = _ancestor_closure(graph, set(renumbered) | {tail})
    else:
        region = _ancestor_closure(graph, (tail,))
    return "region-recompute", _tree_cover_recompute(index, state, region)


# ----------------------------------------------------------------------
# chain: region recompute, splitting a chain when its link is deleted
# ----------------------------------------------------------------------
def _chain_state(index) -> dict:
    """Chain membership lists (by position), rebuilt lazily from labels."""
    chains = getattr(index, "_dyn_chains", None)
    if chains is None:
        chains = {}
        for vertex, label in index._labels.items():
            chains.setdefault(label.chain, []).append(vertex)
        labels = index._labels
        for members in chains.values():
            members.sort(key=lambda v: labels[v].position)
        index._dyn_chains = chains
    return chains


def _chain_recompute(index, region) -> int:
    """Recompute earliest-reach maps over an ancestor-closed region."""
    from repro.labeling.chain import ChainLabel

    graph = index.graph
    labels = index._labels
    fresh: dict = {}
    for vertex in _region_reverse_topo(graph, region):
        own_label = labels[vertex]
        own: dict = {own_label.chain: own_label.position}
        for successor in graph.successors(vertex):
            if successor in fresh:
                entries = fresh[successor].items()
            else:
                entries = labels[successor].reach
            for chain, pos in entries:
                if chain not in own or pos < own[chain]:
                    own[chain] = pos
        fresh[vertex] = own
    for vertex, own in fresh.items():
        old = labels[vertex]
        labels[vertex] = ChainLabel(
            chain=old.chain, position=old.position, reach=tuple(sorted(own.items()))
        )
    return len(fresh)


def _chain_insert(index, tail, head):
    graph = index.graph
    graph.add_edge(tail, head)
    region = _ancestor_closure(graph, (tail,))
    return "region-recompute", _chain_recompute(index, region)


def _chain_delete(index, tail, head):
    from repro.labeling.chain import ChainLabel

    graph = index.graph
    labels = index._labels
    tail_label, head_label = labels[tail], labels[head]
    chain_link = (
        tail_label.chain == head_label.chain
        and head_label.position == tail_label.position + 1
    )
    graph.remove_edge(tail, head)
    if not chain_link:
        region = _ancestor_closure(graph, (tail,))
        return "region-recompute", _chain_recompute(index, region)

    # the deleted edge was a chain's internal link: the suffix is no longer
    # a path continuation, so it becomes a fresh chain with renumbered
    # positions, and every vertex that could reach the suffix re-derives
    # its reach map against the new coordinates
    chains = _chain_state(index)
    old_chain = tail_label.chain
    members = chains[old_chain]
    suffix = members[head_label.position :]
    chains[old_chain] = members[: head_label.position]
    new_chain = index._chain_count
    index._chain_count = new_chain + 1
    chains[new_chain] = suffix
    for pos, vertex in enumerate(suffix):
        old = labels[vertex]
        labels[vertex] = ChainLabel(chain=new_chain, position=pos, reach=old.reach)
    region = _ancestor_closure(graph, set(suffix) | {tail})
    return "chain-split", _chain_recompute(index, region)


# ----------------------------------------------------------------------
# tcm: closure-row patching over the ancestor region
# ----------------------------------------------------------------------
def _tcm_replace_rows(index, rows) -> int:
    from repro.graphs.transitive_closure import TransitiveClosure
    from repro.labeling.tcm import TCMLabel

    old = index._closure
    closure = TransitiveClosure(index=old.index, order=old.order, rows=tuple(rows))
    index._closure = closure
    labels = index._labels
    changed = 0
    for vertex, i in old.index.items():
        if closure.rows[i] != old.rows[i]:
            labels[vertex] = TCMLabel(index=i, row=closure.rows[i])
            changed += 1
    return changed


def _tcm_insert(index, tail, head):
    graph = index.graph
    graph.add_edge(tail, head)
    closure = index._closure
    positions = closure.index
    tail_bit = positions[tail]
    head_row = closure.rows[positions[head]]
    rows = list(closure.rows)
    for i, row in enumerate(rows):
        if (row >> tail_bit) & 1:
            rows[i] = row | head_row
    return "row-patch", _tcm_replace_rows(index, rows)


def _tcm_delete(index, tail, head):
    graph = index.graph
    closure = index._closure
    positions = closure.index
    tail_bit = positions[tail]
    region = {
        vertex for vertex, i in positions.items() if (closure.rows[i] >> tail_bit) & 1
    }
    graph.remove_edge(tail, head)
    rows = list(closure.rows)
    for vertex in _region_reverse_topo(graph, region):
        row = 1 << positions[vertex]
        for successor in graph.successors(vertex):
            row |= rows[positions[successor]]
        rows[positions[vertex]] = row
    return "row-patch", _tcm_replace_rows(index, rows)


# ----------------------------------------------------------------------
# 2-hop: hop-set patching along the edge's frontier
# ----------------------------------------------------------------------
def _twohop_state(index) -> dict:
    """Reflexive ancestor/descendant bitmasks, built on first update."""
    state = getattr(index, "_dyn_masks", None)
    if state is None:
        from repro.graphs.traversal import topological_sort

        graph = index.graph
        order = topological_sort(graph)
        position = {vertex: i for i, vertex in enumerate(order)}
        desc: dict = {}
        for vertex in reversed(order):
            mask = 1 << position[vertex]
            for successor in graph.successors(vertex):
                mask |= desc[successor]
            desc[vertex] = mask
        anc: dict = {}
        for vertex in order:
            mask = 1 << position[vertex]
            for predecessor in graph.predecessors(vertex):
                mask |= anc[predecessor]
            anc[vertex] = mask
        state = {"order": order, "position": position, "desc": desc, "anc": anc}
        index._dyn_masks = state
    return state


def _twohop_insert(index, tail, head):
    from repro.labeling.twohop import TwoHopLabel

    state = _twohop_state(index)
    graph = index.graph
    graph.add_edge(tail, head)
    desc, anc, order = state["desc"], state["anc"], state["order"]
    sources = _mask_vertices(anc[tail], order)  # reach the tail (incl. itself)
    targets = _mask_vertices(desc[head], order)  # reached from the head
    for a in sources:
        desc[a] |= desc[head]
    anc_tail = anc[tail]
    for b in targets:
        anc[b] |= anc_tail
    # every new path runs through the new edge, so the tail covers every
    # newly reachable pair as a hop center
    labels = index._labels
    for a in sources:
        label = labels[a]
        if tail not in label.out_hops:
            labels[a] = TwoHopLabel(
                out_hops=label.out_hops | {tail}, in_hops=label.in_hops
            )
    for b in targets:
        label = labels[b]
        if tail not in label.in_hops:
            labels[b] = TwoHopLabel(
                out_hops=label.out_hops, in_hops=label.in_hops | {tail}
            )
    return "hop-patch", len(sources) + len(targets)


def _twohop_delete(index, tail, head):
    from repro.labeling.twohop import TwoHopLabel

    state = _twohop_state(index)
    graph = index.graph
    desc, anc = state["desc"], state["anc"]
    order, position = state["order"], state["position"]
    dirty_sources = set(_mask_vertices(anc[tail], order))
    dirty_targets = set(_mask_vertices(desc[head], order))
    graph.remove_edge(tail, head)
    for vertex in _region_reverse_topo(graph, dirty_sources):
        mask = 1 << position[vertex]
        for successor in graph.successors(vertex):
            mask |= desc[successor]
        desc[vertex] = mask
    for vertex in _region_forward_topo(graph, dirty_targets):
        mask = 1 << position[vertex]
        for predecessor in graph.predecessors(vertex):
            mask |= anc[predecessor]
        anc[vertex] = mask
    labels = index._labels
    # drop hop entries that no longer lie on any path
    for a in dirty_sources:
        label = labels[a]
        kept = frozenset(
            c for c in label.out_hops if (desc[a] >> position[c]) & 1
        )
        if kept != label.out_hops:
            labels[a] = TwoHopLabel(out_hops=kept, in_hops=label.in_hops)
    for b in dirty_targets:
        label = labels[b]
        kept = frozenset(c for c in label.in_hops if (anc[b] >> position[c]) & 1)
        if kept != label.in_hops:
            labels[b] = TwoHopLabel(out_hops=label.out_hops, in_hops=kept)
    # re-cover: a pair whose only center was filtered gets its source as a
    # fresh center over exactly the still-reachable uncovered targets
    in_mask_of: dict = {}
    for vertex, label in labels.items():
        bit = 1 << position[vertex]
        for center in label.in_hops:
            in_mask_of[center] = in_mask_of.get(center, 0) | bit
    for a in sorted(dirty_sources, key=position.__getitem__):
        label = labels[a]
        covered = 0
        for center in label.out_hops:
            covered |= in_mask_of.get(center, 0)
        uncovered = desc[a] & ~covered
        if uncovered:
            labels[a] = TwoHopLabel(
                out_hops=label.out_hops | {a}, in_hops=labels[a].in_hops
            )
            for b in _mask_vertices(uncovered, order):
                b_label = labels[b]
                labels[b] = TwoHopLabel(
                    out_hops=b_label.out_hops, in_hops=b_label.in_hops | {a}
                )
            in_mask_of[a] = in_mask_of.get(a, 0) | uncovered
    return "hop-patch", len(dirty_sources) + len(dirty_targets)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
register_strategy("traversal", _live_insert, _live_delete)
register_strategy("bfs", _live_insert, _live_delete)
register_strategy("dfs", _live_insert, _live_delete)
register_strategy("interval", _interval_insert, _interval_delete)
register_strategy("tree-cover", _tree_cover_insert, _tree_cover_delete)
register_strategy("chain", _chain_insert, _chain_delete)
register_strategy("tcm", _tcm_insert, _tcm_delete)
register_strategy("2-hop", _twohop_insert, _twohop_delete)
