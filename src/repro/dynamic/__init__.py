"""Incremental label maintenance under edge updates.

Every labeling scheme in :mod:`repro.labeling` freezes its labels at
construction; this package makes them survive mutation.  The public
surface lives on :class:`~repro.labeling.base.ReachabilityIndex`
(``insert_edge`` / ``delete_edge``, gated by the ``mutable`` capability
flag); this package supplies the machinery behind it:

* :mod:`repro.dynamic.strategies` — the per-scheme delta strategies.
  Interval and tree-cover repair only affected subtrees, chain patches
  the decomposition segments an update crosses, 2-hop patches hop sets
  along the edge's frontier, TCM ors/recomputes closure rows over the
  dirty region, and the traversal schemes are free because they answer
  from the live graph.  Updates a delta cannot handle cheaply fall back
  to a partial/full rebuild.
* :mod:`repro.dynamic.log` — :class:`UpdateLog`, the per-index record of
  which strategy served each update and how many labels it touched, so
  tests and benches can assert an update stayed on the delta path.

Invalidation is by version token: every applied update bumps the graph's
``update_version``, which the index mirrors and every derived layer
(compiled kernels, hot-pair caches, session plans, stored-run views)
snapshots and re-checks.  A mutated index therefore never serves a
pre-update answer from any cache.
"""

from repro.dynamic.log import UpdateLog, UpdateRecord
from repro.dynamic.strategies import apply_delete, apply_insert, register_strategy

__all__ = [
    "UpdateLog",
    "UpdateRecord",
    "apply_insert",
    "apply_delete",
    "register_strategy",
]
