"""A small, purpose-built directed graph container.

The labeling algorithms in this package need precise control over vertex
identity, deterministic iteration order and cheap structural surgery
(contracting whole regions into single "special" edges).  This module
provides :class:`DiGraph`, an insertion-ordered adjacency structure with the
exact operations the rest of the library needs, and nothing more.

Vertices may be any hashable object.  Parallel edges are not stored (adding
an existing edge is a no-op), self loops are rejected, and edge direction is
always ``tail -> head``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any, Optional

from repro.exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError

__all__ = ["DiGraph"]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


class DiGraph:
    """A simple directed graph with insertion-ordered adjacency.

    The graph stores, for every vertex, the ordered set of successors and the
    ordered set of predecessors.  All mutating operations keep the two maps
    consistent.

    Parameters
    ----------
    vertices:
        Optional iterable of vertices to insert up front.
    edges:
        Optional iterable of ``(tail, head)`` pairs.  Endpoints that are not
        already present are added automatically.
    """

    __slots__ = ("_succ", "_pred", "_edge_count", "_vertex_version", "_update_version")

    def __init__(
        self,
        vertices: Optional[Iterable[Vertex]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        # dict-of-dict keeps insertion order and gives O(1) membership tests.
        self._succ: dict[Vertex, dict[Vertex, None]] = {}
        self._pred: dict[Vertex, dict[Vertex, None]] = {}
        self._edge_count = 0
        self._vertex_version = 0
        self._update_version = 0
        if vertices is not None:
            for vertex in vertices:
                self.add_vertex(vertex)
        if edges is not None:
            for tail, head in edges:
                self.add_edge(tail, head)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        """Number of vertices in the graph."""
        return len(self._succ)

    @property
    def edge_count(self) -> int:
        """Number of edges in the graph."""
        return self._edge_count

    @property
    def vertex_version(self) -> int:
        """Monotone counter bumped whenever the vertex *set* changes.

        Edge mutations do not affect it: vertex identity (and therefore any
        interned handle) survives edge surgery, which is what lets the
        traversal schemes serve handle-native queries against a live graph.
        Consumers holding a :class:`~repro.graphs.handles.VertexInterner`
        snapshot compare this counter to detect stale handles.
        """
        return self._vertex_version

    @property
    def update_version(self) -> int:
        """Monotone counter bumped on every *edge* insertion or removal.

        The sibling of :attr:`vertex_version` for edge surgery: adding or
        removing an edge changes reachability without touching vertex
        identity, so handles stay valid while any compiled kernel, memoized
        answer or label snapshot taken before the bump is stale.  Consumers
        (the query engine, mutable indexes, cached plans) snapshot this
        counter and recompile when it moves.  No-op mutations (re-adding an
        existing edge) do not bump it.
        """
        return self._update_version

    def __len__(self) -> int:
        return len(self._succ)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._succ

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._succ)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(vertices={self.vertex_count}, "
            f"edges={self.edge_count})"
        )

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` if *vertex* is in the graph."""
        return vertex in self._succ

    def has_edge(self, tail: Vertex, head: Vertex) -> bool:
        """Return ``True`` if the edge ``tail -> head`` is in the graph."""
        successors = self._succ.get(tail)
        return successors is not None and head in successors

    def vertices(self) -> list[Vertex]:
        """Return all vertices in insertion order."""
        return list(self._succ)

    def edges(self) -> list[Edge]:
        """Return all edges as ``(tail, head)`` pairs in insertion order."""
        return [
            (tail, head)
            for tail, successors in self._succ.items()
            for head in successors
        ]

    def iter_edges(self) -> Iterator[Edge]:
        """Iterate over all edges lazily."""
        for tail, successors in self._succ.items():
            for head in successors:
                yield (tail, head)

    def successors(self, vertex: Vertex) -> list[Vertex]:
        """Return the ordered list of direct successors of *vertex*."""
        try:
            return list(self._succ[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def predecessors(self, vertex: Vertex) -> list[Vertex]:
        """Return the ordered list of direct predecessors of *vertex*."""
        try:
            return list(self._pred[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def out_degree(self, vertex: Vertex) -> int:
        """Number of edges leaving *vertex*."""
        try:
            return len(self._succ[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def in_degree(self, vertex: Vertex) -> int:
        """Number of edges entering *vertex*."""
        try:
            return len(self._pred[vertex])
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def degree(self, vertex: Vertex) -> int:
        """Total degree (in + out) of *vertex*."""
        return self.in_degree(vertex) + self.out_degree(vertex)

    def neighbors(self, vertex: Vertex) -> list[Vertex]:
        """Return successors and predecessors of *vertex*, without duplicates."""
        try:
            successors = self._succ[vertex]
            predecessors = self._pred[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None
        combined: dict[Vertex, None] = dict.fromkeys(successors)
        combined.update(dict.fromkeys(predecessors))
        return list(combined)

    def sources(self) -> list[Vertex]:
        """Return all vertices with no incoming edges."""
        return [v for v, preds in self._pred.items() if not preds]

    def sinks(self) -> list[Vertex]:
        """Return all vertices with no outgoing edges."""
        return [v for v, succs in self._succ.items() if not succs]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        """Insert *vertex*; inserting an existing vertex is a no-op."""
        if vertex not in self._succ:
            self._succ[vertex] = {}
            self._pred[vertex] = {}
            self._vertex_version += 1

    def add_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Insert every vertex from *vertices*."""
        for vertex in vertices:
            self.add_vertex(vertex)

    def add_edge(self, tail: Vertex, head: Vertex) -> None:
        """Insert the edge ``tail -> head``, adding endpoints as needed.

        Self loops are rejected because the workflow model only deals with
        acyclic flow networks; re-adding an existing edge is a no-op.
        """
        if tail == head:
            raise GraphError(f"self loops are not supported: {tail!r}")
        self.add_vertex(tail)
        self.add_vertex(head)
        if head not in self._succ[tail]:
            self._succ[tail][head] = None
            self._pred[head][tail] = None
            self._edge_count += 1
            self._update_version += 1

    def add_edges(self, edges: Iterable[Edge]) -> None:
        """Insert every edge from *edges*."""
        for tail, head in edges:
            self.add_edge(tail, head)

    def remove_edge(self, tail: Vertex, head: Vertex) -> None:
        """Remove the edge ``tail -> head``; missing edges raise."""
        if not self.has_edge(tail, head):
            raise EdgeNotFoundError(tail, head)
        del self._succ[tail][head]
        del self._pred[head][tail]
        self._edge_count -= 1
        self._update_version += 1

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove *vertex* and every incident edge."""
        if vertex not in self._succ:
            raise VertexNotFoundError(vertex)
        for head in list(self._succ[vertex]):
            self.remove_edge(vertex, head)
        for tail in list(self._pred[vertex]):
            self.remove_edge(tail, vertex)
        del self._succ[vertex]
        del self._pred[vertex]
        self._vertex_version += 1

    def remove_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Remove every vertex in *vertices* with its incident edges."""
        for vertex in vertices:
            self.remove_vertex(vertex)

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def intern_vertices(self):
        """Snapshot the vertex set into a fresh interner (vertex <-> dense id).

        Returns a :class:`repro.graphs.handles.VertexInterner` assigning ids
        in the graph's insertion order, so it agrees with the interner of any
        :class:`~repro.graphs.csr.CSRGraph` snapshot taken at the same time.
        """
        from repro.graphs.handles import VertexInterner

        return VertexInterner(self._succ)

    def to_csr(self):
        """Snapshot the graph into read-optimized CSR form.

        Returns a :class:`repro.graphs.csr.CSRGraph` — an immutable
        integer-interned copy with the same vertices, edges and iteration
        order, used by the batch query engine for traversal-heavy work.
        """
        from repro.graphs.csr import CSRGraph

        return CSRGraph.from_digraph(self)

    def copy(self) -> "DiGraph":
        """Return an independent copy of the graph."""
        clone = DiGraph()
        for vertex in self._succ:
            clone.add_vertex(vertex)
        for tail, head in self.iter_edges():
            clone.add_edge(tail, head)
        return clone

    def subgraph(self, vertices: Iterable[Vertex]) -> "DiGraph":
        """Return the induced subgraph on *vertices*.

        Unknown vertices are ignored, which makes the method convenient for
        "intersect this vertex set with the graph" use sites.
        """
        keep = {v for v in vertices if v in self._succ}
        induced = DiGraph()
        for vertex in self._succ:
            if vertex in keep:
                induced.add_vertex(vertex)
        for tail, head in self.iter_edges():
            if tail in keep and head in keep:
                induced.add_edge(tail, head)
        return induced

    def edge_subgraph(self, edges: Iterable[Edge]) -> "DiGraph":
        """Return the subgraph containing exactly *edges* and their endpoints."""
        induced = DiGraph()
        for tail, head in edges:
            if not self.has_edge(tail, head):
                raise EdgeNotFoundError(tail, head)
            induced.add_edge(tail, head)
        return induced

    def reverse(self) -> "DiGraph":
        """Return a copy of the graph with every edge reversed."""
        reversed_graph = DiGraph()
        for vertex in self._succ:
            reversed_graph.add_vertex(vertex)
        for tail, head in self.iter_edges():
            reversed_graph.add_edge(head, tail)
        return reversed_graph

    def relabeled(self, mapping: dict[Vertex, Vertex]) -> "DiGraph":
        """Return a copy with vertices renamed through *mapping*.

        Vertices absent from *mapping* keep their identity.  The mapping must
        not merge two distinct vertices into one.
        """
        new_names = [mapping.get(v, v) for v in self._succ]
        if len(set(new_names)) != len(new_names):
            raise GraphError("relabeling would merge distinct vertices")
        renamed = DiGraph()
        for vertex in self._succ:
            renamed.add_vertex(mapping.get(vertex, vertex))
        for tail, head in self.iter_edges():
            renamed.add_edge(mapping.get(tail, tail), mapping.get(head, head))
        return renamed

    # ------------------------------------------------------------------
    # equality and serialization helpers
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            set(self._succ) == set(other._succ)
            and set(self.iter_edges()) == set(other.iter_edges())
        )

    def __hash__(self) -> int:  # graphs are mutable containers
        raise TypeError("DiGraph objects are unhashable")

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-friendly adjacency description of the graph."""
        return {
            "vertices": list(self._succ),
            "edges": [list(edge) for edge in self.iter_edges()],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DiGraph":
        """Rebuild a graph from :meth:`to_dict` output."""
        graph = cls()
        for vertex in payload.get("vertices", []):
            graph.add_vertex(vertex)
        for tail, head in payload.get("edges", []):
            graph.add_edge(tail, head)
        return graph
