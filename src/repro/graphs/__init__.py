"""Directed-graph substrate used by the workflow and labeling layers."""

from repro.graphs.csr import CSRGraph
from repro.graphs.digraph import DiGraph
from repro.graphs.handles import VertexInterner, resolve_pair_ids
from repro.graphs.flow_network import (
    find_sink,
    find_source,
    internal_vertices,
    is_acyclic_flow_network,
    parallel_composition,
    replace_subgraph,
    serial_composition,
    validate_flow_network,
)
from repro.graphs.transitive_closure import TransitiveClosure, transitive_closure
from repro.graphs.traversal import (
    all_pairs_reachability,
    ancestors,
    bfs_reachable,
    descendants,
    dfs_reachable,
    is_dag,
    is_reachable,
    is_weakly_connected,
    topological_sort,
    weakly_connected_components,
)

__all__ = [
    "DiGraph",
    "CSRGraph",
    "VertexInterner",
    "resolve_pair_ids",
    "find_sink",
    "find_source",
    "internal_vertices",
    "is_acyclic_flow_network",
    "parallel_composition",
    "replace_subgraph",
    "serial_composition",
    "validate_flow_network",
    "TransitiveClosure",
    "transitive_closure",
    "all_pairs_reachability",
    "ancestors",
    "bfs_reachable",
    "descendants",
    "dfs_reachable",
    "is_dag",
    "is_reachable",
    "is_weakly_connected",
    "topological_sort",
    "weakly_connected_components",
]
