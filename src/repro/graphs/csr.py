"""Integer-interned compressed-sparse-row (CSR) graph backing store.

:class:`DiGraph` stores adjacency as dict-of-dict over arbitrary hashable
vertices, which is the right shape for the structural surgery the labeling
algorithms perform but the wrong shape for answering millions of queries:
every hop pays a hash lookup and every vertex set is a boxed container.
This module provides the read-optimized counterpart used by the batch query
engine (:mod:`repro.engine`):

* :class:`CSRGraph` — an immutable snapshot of a directed graph whose
  successor and predecessor adjacency are each stored as two flat integer
  arrays (``indptr`` / ``indices``), the classical CSR layout.

The vertex <-> integer table backing a :class:`CSRGraph` is a
:class:`~repro.graphs.handles.VertexInterner`; it grew into the library-wide
identity layer and now lives in :mod:`repro.graphs.handles` (re-exported
here for backwards compatibility).

A :class:`CSRGraph` preserves the deterministic iteration order of the
:class:`DiGraph` it was built from: ``csr.vertices() == digraph.vertices()``
and ``csr.edges() == digraph.edges()``.  Like :class:`DiGraph` it rejects
self loops and collapses parallel edges.
"""

from __future__ import annotations

from array import array
from collections.abc import Hashable, Iterable, Iterator
from typing import TYPE_CHECKING, Optional

from repro.exceptions import GraphError, VertexNotFoundError
from repro.graphs.handles import VertexInterner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.graphs.digraph import DiGraph

__all__ = ["VertexInterner", "CSRGraph"]

Vertex = Hashable
Edge = tuple[Vertex, Vertex]

#: array typecode for vertex identifiers (signed 64-bit, plenty for any graph)
_ID_TYPECODE = "q"


class CSRGraph:
    """An immutable directed graph in compressed-sparse-row form.

    The successors of vertex ``i`` are
    ``indices[indptr[i] : indptr[i + 1]]`` (and symmetrically for the
    predecessor arrays).  Construction is linear in the graph size; all
    adjacency reads afterwards are array slices with no hashing.
    """

    __slots__ = (
        "_interner",
        "_indptr",
        "_indices",
        "_pred_indptr",
        "_pred_indices",
    )

    def __init__(
        self,
        vertices: Optional[Iterable[Vertex]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        interner = VertexInterner(vertices)
        successor_lists: list[list[int]] = [[] for _ in range(len(interner))]
        seen: set[tuple[int, int]] = set()
        if edges is not None:
            for tail, head in edges:
                if tail == head:
                    raise GraphError(f"self loops are not supported: {tail!r}")
                tail_id = interner.intern(tail)
                head_id = interner.intern(head)
                while len(successor_lists) < len(interner):
                    successor_lists.append([])
                if (tail_id, head_id) not in seen:
                    seen.add((tail_id, head_id))
                    successor_lists[tail_id].append(head_id)
        self._interner = interner
        self._build_arrays(successor_lists)

    def _build_arrays(self, successor_lists: list[list[int]]) -> None:
        indptr = array(_ID_TYPECODE, [0])
        indices = array(_ID_TYPECODE)
        for successors in successor_lists:
            indices.extend(successors)
            indptr.append(len(indices))
        self._indptr = indptr
        self._indices = indices
        # The predecessor arrays are derived lazily: the hottest consumer
        # (per-batch snapshots in the traversal schemes' ``reaches_many``)
        # only ever walks successors, so eagerly transposing every edge
        # would double the snapshot cost for nothing.
        self._pred_indptr: Optional[array] = None
        self._pred_indices: Optional[array] = None

    def _ensure_predecessors(self) -> tuple[array, array]:
        """Build the predecessor CSR arrays on first use.

        A counting sort of the edges by head keeps the deterministic
        (tail-insertion) order within each bucket.
        """
        if self._pred_indptr is not None:
            return self._pred_indptr, self._pred_indices
        size = len(self._interner)
        indptr = self._indptr
        indices = self._indices
        pred_counts = [0] * size
        for head in indices:
            pred_counts[head] += 1
        pred_indptr = array(_ID_TYPECODE, [0] * (size + 1))
        for i in range(size):
            pred_indptr[i + 1] = pred_indptr[i] + pred_counts[i]
        cursor = list(pred_indptr[:size])
        pred_indices = array(_ID_TYPECODE, [0] * len(indices))
        for tail in range(size):
            for slot in range(indptr[tail], indptr[tail + 1]):
                head = indices[slot]
                pred_indices[cursor[head]] = tail
                cursor[head] += 1
        self._pred_indptr = pred_indptr
        self._pred_indices = pred_indices
        return pred_indptr, pred_indices

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_digraph(cls, graph: "DiGraph") -> "CSRGraph":
        """Snapshot *graph* into CSR form, preserving its iteration order."""
        return cls(vertices=graph.vertices(), edges=graph.iter_edges())

    def to_digraph(self) -> "DiGraph":
        """Rebuild an equivalent mutable :class:`DiGraph` (round trip)."""
        from repro.graphs.digraph import DiGraph

        graph = DiGraph(vertices=self._interner)
        for tail, head in self.iter_edges():
            graph.add_edge(tail, head)
        return graph

    # ------------------------------------------------------------------
    # basic queries (vertex-object view)
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self._interner)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return len(self._indices)

    @property
    def interner(self) -> VertexInterner:
        """The vertex-interning table (vertex <-> dense integer id)."""
        return self._interner

    def __len__(self) -> int:
        return len(self._interner)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._interner

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._interner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(vertices={self.vertex_count}, "
            f"edges={self.edge_count})"
        )

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return ``True`` if *vertex* is in the graph."""
        return vertex in self._interner

    def has_edge(self, tail: Vertex, head: Vertex) -> bool:
        """Return ``True`` if the edge ``tail -> head`` is in the graph."""
        if tail not in self._interner or head not in self._interner:
            return False
        head_id = self._interner.id_of(head)
        return head_id in self.successor_ids(self._interner.id_of(tail))

    def vertices(self) -> list[Vertex]:
        """All vertices in interning (= original insertion) order."""
        return list(self._interner)

    def edges(self) -> list[Edge]:
        """All edges as ``(tail, head)`` pairs in deterministic order."""
        return list(self.iter_edges())

    def iter_edges(self) -> Iterator[Edge]:
        """Iterate over all edges lazily, in the original insertion order."""
        vertex_at = self._interner.vertex_at
        indptr = self._indptr
        indices = self._indices
        for tail_id in range(len(self._interner)):
            tail = vertex_at(tail_id)
            for slot in range(indptr[tail_id], indptr[tail_id + 1]):
                yield (tail, vertex_at(indices[slot]))

    def successors(self, vertex: Vertex) -> list[Vertex]:
        """Ordered successors of *vertex* (as vertex objects)."""
        vertex_at = self._interner.vertex_at
        return [vertex_at(i) for i in self.successor_ids(self._interner.id_of(vertex))]

    def predecessors(self, vertex: Vertex) -> list[Vertex]:
        """Ordered predecessors of *vertex* (as vertex objects)."""
        vertex_at = self._interner.vertex_at
        return [vertex_at(i) for i in self.predecessor_ids(self._interner.id_of(vertex))]

    def out_degree(self, vertex: Vertex) -> int:
        """Number of edges leaving *vertex*."""
        identifier = self._interner.id_of(vertex)
        return self._indptr[identifier + 1] - self._indptr[identifier]

    def in_degree(self, vertex: Vertex) -> int:
        """Number of edges entering *vertex*."""
        identifier = self._interner.id_of(vertex)
        pred_indptr, _ = self._ensure_predecessors()
        return pred_indptr[identifier + 1] - pred_indptr[identifier]

    # ------------------------------------------------------------------
    # identifier-level view (the hot-path API used by the query engine)
    # ------------------------------------------------------------------
    def id_of(self, vertex: Vertex) -> int:
        """Dense integer identifier of *vertex*."""
        return self._interner.id_of(vertex)

    def vertex_at(self, identifier: int) -> Vertex:
        """Vertex object with the given identifier."""
        return self._interner.vertex_at(identifier)

    def successor_ids(self, identifier: int) -> array:
        """Successor identifiers of vertex *identifier* (an array slice)."""
        if not 0 <= identifier < len(self._interner):
            raise VertexNotFoundError(identifier)
        return self._indices[self._indptr[identifier] : self._indptr[identifier + 1]]

    def predecessor_ids(self, identifier: int) -> array:
        """Predecessor identifiers of vertex *identifier* (an array slice)."""
        if not 0 <= identifier < len(self._interner):
            raise VertexNotFoundError(identifier)
        pred_indptr, pred_indices = self._ensure_predecessors()
        return pred_indices[pred_indptr[identifier] : pred_indptr[identifier + 1]]

    def reachable_ids(self, source_id: int, *, reverse: bool = False) -> set[int]:
        """BFS over the flat arrays: every identifier reachable from *source_id*.

        Includes the source itself (reachability is reflexive throughout the
        library).  With ``reverse=True`` the predecessor arrays are walked
        instead, yielding the ancestors.
        """
        if not 0 <= source_id < len(self._interner):
            raise VertexNotFoundError(source_id)
        if reverse:
            indptr, indices = self._ensure_predecessors()
        else:
            indptr, indices = self._indptr, self._indices
        seen = {source_id}
        frontier = [source_id]
        while frontier:
            next_frontier = []
            for vertex in frontier:
                for slot in range(indptr[vertex], indptr[vertex + 1]):
                    neighbor = indices[slot]
                    if neighbor not in seen:
                        seen.add(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return seen
