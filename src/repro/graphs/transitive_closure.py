"""Transitive closure computation with compact bitset rows.

The TCM labeling scheme of Section 7 assigns the *i*-th row of the transitive
closure matrix as the reachability label of the *i*-th vertex.  This module
computes that matrix.  Rows are represented as Python integers used as
bitsets, which gives word-parallel unions during the DAG sweep and a compact
``n``-bit label per vertex — exactly the ``nG`` bits charged in Table 2 of
the paper.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from repro.exceptions import VertexNotFoundError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import bfs_reachable, topological_sort
from repro.exceptions import NotADagError

__all__ = ["TransitiveClosure", "transitive_closure"]

Vertex = Hashable


@dataclass(frozen=True)
class TransitiveClosure:
    """The transitive closure of a directed graph.

    Attributes
    ----------
    index:
        Mapping from vertex to its row/column index.
    order:
        Vertices in index order (``order[index[v]] == v``).
    rows:
        ``rows[i]`` is an integer bitset whose ``j``-th bit is set when the
        ``i``-th vertex reaches the ``j``-th vertex.  Reachability is
        reflexive: bit ``i`` of ``rows[i]`` is always set.
    """

    index: dict[Vertex, int]
    order: tuple[Vertex, ...]
    rows: tuple[int, ...]

    @property
    def vertex_count(self) -> int:
        """Number of vertices covered by the closure."""
        return len(self.order)

    def row(self, vertex: Vertex) -> int:
        """Return the bitset row for *vertex*."""
        try:
            return self.rows[self.index[vertex]]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def reaches(self, source: Vertex, target: Vertex) -> bool:
        """Return ``True`` if *source* reaches *target* (reflexive)."""
        try:
            source_row = self.rows[self.index[source]]
            target_bit = self.index[target]
        except KeyError as exc:
            raise VertexNotFoundError(exc.args[0]) from None
        return bool((source_row >> target_bit) & 1)

    def reachable_set(self, source: Vertex) -> set[Vertex]:
        """Return every vertex reachable from *source*, including itself."""
        row = self.row(source)
        return {self.order[i] for i in range(len(self.order)) if (row >> i) & 1}

    def label_bits(self) -> int:
        """Length in bits of one TCM label (one matrix row)."""
        return len(self.order)

    def to_matrix(self) -> list[list[int]]:
        """Return the closure as a dense 0/1 matrix (row-major)."""
        size = len(self.order)
        return [
            [(row >> j) & 1 for j in range(size)]
            for row in self.rows
        ]


def transitive_closure(graph: DiGraph) -> TransitiveClosure:
    """Compute the reflexive transitive closure of *graph*.

    For DAGs the rows are accumulated in reverse topological order, so each
    edge is processed once with word-parallel bitset unions.  Graphs with
    cycles fall back to one BFS per vertex (the workflow specification and
    all runs are DAGs, so the fallback is only exercised by direct users of
    this module).
    """
    vertices = graph.vertices()
    index = {vertex: i for i, vertex in enumerate(vertices)}
    rows: list[int] = [0] * len(vertices)

    try:
        order = topological_sort(graph)
    except NotADagError:
        for vertex in vertices:
            row = 0
            for reached in bfs_reachable(graph, vertex):
                row |= 1 << index[reached]
            rows[index[vertex]] = row
        return TransitiveClosure(index=index, order=tuple(vertices), rows=tuple(rows))

    for vertex in reversed(order):
        row = 1 << index[vertex]
        for successor in graph.successors(vertex):
            row |= rows[index[successor]]
        rows[index[vertex]] = row
    return TransitiveClosure(index=index, order=tuple(vertices), rows=tuple(rows))
