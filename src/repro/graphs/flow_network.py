"""Acyclic flow networks: single-source, single-sink DAGs.

Section 3.2 of the paper works exclusively with *acyclic flow networks*: a
DAG with a unique source ``s(G)`` and a unique sink ``t(G)`` in which every
vertex lies on some source-to-sink path.  This module provides validation
helpers and the parallel / serial composition and replacement operations of
Definitions 4 and 5, which are the primitives from which workflow runs are
built.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence

from repro.exceptions import FlowNetworkError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import ancestors, bfs_reachable, is_dag

__all__ = [
    "find_source",
    "find_sink",
    "internal_vertices",
    "is_acyclic_flow_network",
    "validate_flow_network",
    "every_vertex_on_source_sink_path",
    "parallel_composition",
    "serial_composition",
    "replace_subgraph",
]

Vertex = Hashable


def find_source(graph: DiGraph) -> Vertex:
    """Return the unique source (vertex with no incoming edges).

    Raises :class:`FlowNetworkError` if there is no source or more than one.
    """
    sources = graph.sources()
    if len(sources) != 1:
        raise FlowNetworkError(
            f"expected exactly one source, found {len(sources)}: {sources!r}"
        )
    return sources[0]


def find_sink(graph: DiGraph) -> Vertex:
    """Return the unique sink (vertex with no outgoing edges).

    Raises :class:`FlowNetworkError` if there is no sink or more than one.
    """
    sinks = graph.sinks()
    if len(sinks) != 1:
        raise FlowNetworkError(
            f"expected exactly one sink, found {len(sinks)}: {sinks!r}"
        )
    return sinks[0]


def internal_vertices(graph: DiGraph) -> set[Vertex]:
    """Return ``V*(G)``: every vertex except the source and the sink."""
    source = find_source(graph)
    sink = find_sink(graph)
    return {v for v in graph.vertices() if v not in (source, sink)}


def every_vertex_on_source_sink_path(graph: DiGraph) -> bool:
    """Return ``True`` if every vertex lies on some source-to-sink path."""
    if graph.vertex_count == 0:
        return True
    source = find_source(graph)
    sink = find_sink(graph)
    from_source = bfs_reachable(graph, source)
    to_sink = ancestors(graph, sink) | {sink}
    return all(v in from_source and v in to_sink for v in graph.vertices())


def is_acyclic_flow_network(graph: DiGraph) -> bool:
    """Return ``True`` if *graph* is an acyclic flow network."""
    try:
        validate_flow_network(graph)
    except FlowNetworkError:
        return False
    return True


def validate_flow_network(graph: DiGraph) -> tuple[Vertex, Vertex]:
    """Validate *graph* as an acyclic flow network and return ``(source, sink)``.

    The checks are: non-empty, acyclic, unique source, unique sink, source
    distinct from sink, and every vertex on a source-to-sink path.
    """
    if graph.vertex_count == 0:
        raise FlowNetworkError("flow network must be non-empty")
    if not is_dag(graph):
        raise FlowNetworkError("flow network must be acyclic")
    source = find_source(graph)
    sink = find_sink(graph)
    if source == sink:
        raise FlowNetworkError("flow network must have distinct source and sink")
    if not every_vertex_on_source_sink_path(graph):
        raise FlowNetworkError(
            "every vertex must lie on some path from the source to the sink"
        )
    return source, sink


def _merged_vertex(preferred: Vertex, *_duplicates: Vertex) -> Vertex:
    """Identity used when two terminals are identified during composition."""
    return preferred


def parallel_composition(
    networks: Sequence[DiGraph],
    *,
    rename: Callable[[int, Vertex], Vertex] | None = None,
) -> DiGraph:
    """Compose *networks* in parallel (Definition 4).

    All sources are identified into a single source and all sinks into a
    single sink.  Because our graphs use plain vertex identity, the caller is
    responsible for ensuring that the *internal* vertices of the different
    networks are disjoint; the optional *rename* callback (taking the network
    index and the original vertex) can be used to enforce that.  The
    source/sink of the first network become the source/sink of the result.
    """
    if not networks:
        raise FlowNetworkError("parallel composition needs at least one network")

    prepared: list[tuple[DiGraph, Vertex, Vertex]] = []
    for index, network in enumerate(networks):
        source, sink = validate_flow_network(network)
        if rename is not None:
            mapping = {v: rename(index, v) for v in network.vertices()}
            network = network.relabeled(mapping)
            source, sink = mapping[source], mapping[sink]
        prepared.append((network, source, sink))

    merged_source = _merged_vertex(*[src for _, src, _ in prepared])
    merged_sink = _merged_vertex(*[snk for _, _, snk in prepared])

    combined = DiGraph()
    combined.add_vertex(merged_source)
    combined.add_vertex(merged_sink)
    for network, source, sink in prepared:
        translate = {source: merged_source, sink: merged_sink}
        for vertex in network.vertices():
            combined.add_vertex(translate.get(vertex, vertex))
        for tail, head in network.iter_edges():
            combined.add_edge(translate.get(tail, tail), translate.get(head, head))
    validate_flow_network(combined)
    return combined


def serial_composition(
    networks: Sequence[DiGraph],
    *,
    rename: Callable[[int, Vertex], Vertex] | None = None,
) -> DiGraph:
    """Compose *networks* in series (Definition 4).

    A new edge is added from the sink of each network to the source of the
    next.  Vertex sets must be disjoint (optionally enforced via *rename*).
    """
    if not networks:
        raise FlowNetworkError("serial composition needs at least one network")

    prepared: list[tuple[DiGraph, Vertex, Vertex]] = []
    for index, network in enumerate(networks):
        source, sink = validate_flow_network(network)
        if rename is not None:
            mapping = {v: rename(index, v) for v in network.vertices()}
            network = network.relabeled(mapping)
            source, sink = mapping[source], mapping[sink]
        prepared.append((network, source, sink))

    combined = DiGraph()
    for network, _, _ in prepared:
        for vertex in network.vertices():
            combined.add_vertex(vertex)
        for tail, head in network.iter_edges():
            combined.add_edge(tail, head)
    for (_, _, previous_sink), (_, next_source, _) in zip(prepared, prepared[1:]):
        combined.add_edge(previous_sink, next_source)
    validate_flow_network(combined)
    return combined


def replace_subgraph(
    graph: DiGraph,
    old_vertices: set[Vertex],
    old_source: Vertex,
    old_sink: Vertex,
    replacement: DiGraph,
    replacement_source: Vertex,
    replacement_sink: Vertex,
) -> DiGraph:
    """Replace a self-contained subgraph with another flow network (Definition 5).

    The vertices in *old_vertices* (which must include *old_source* and
    *old_sink*) are removed along with all edges between them; the
    *replacement* network is spliced in with its source identified with
    *old_source* and its sink identified with *old_sink*.  Edges between the
    rest of the graph and the old source/sink are preserved.

    The internal vertices of *replacement* must be disjoint from the vertices
    that remain in *graph*.
    """
    if old_source not in old_vertices or old_sink not in old_vertices:
        raise FlowNetworkError("old_vertices must contain the subgraph terminals")

    result = DiGraph()
    surviving = [v for v in graph.vertices() if v not in old_vertices or v in (old_source, old_sink)]
    for vertex in surviving:
        result.add_vertex(vertex)
    for tail, head in graph.iter_edges():
        tail_inside = tail in old_vertices
        head_inside = head in old_vertices
        if tail_inside and head_inside:
            continue  # replaced by the new subgraph
        if tail_inside and tail not in (old_source, old_sink):
            raise FlowNetworkError(
                "subgraph is not self-contained: internal vertex has an outside edge"
            )
        if head_inside and head not in (old_source, old_sink):
            raise FlowNetworkError(
                "subgraph is not self-contained: internal vertex has an outside edge"
            )
        result.add_edge(tail, head)

    translate = {replacement_source: old_source, replacement_sink: old_sink}
    for vertex in replacement.vertices():
        mapped = translate.get(vertex, vertex)
        if mapped not in (old_source, old_sink) and result.has_vertex(mapped):
            raise FlowNetworkError(
                f"replacement vertex collides with the surrounding graph: {mapped!r}"
            )
        result.add_vertex(mapped)
    for tail, head in replacement.iter_edges():
        result.add_edge(translate.get(tail, tail), translate.get(head, head))
    return result
