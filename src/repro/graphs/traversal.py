"""Graph traversal utilities: reachability, components, topological order.

These routines operate on :class:`repro.graphs.DiGraph` and form the
substrate for the BFS/DFS labeling schemes of Section 7 of the paper and for
the structural checks used throughout the workflow model.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.exceptions import NotADagError, VertexNotFoundError
from repro.graphs.digraph import DiGraph

__all__ = [
    "bfs_reachable",
    "dfs_reachable",
    "is_reachable",
    "descendants",
    "ancestors",
    "weakly_connected_components",
    "is_weakly_connected",
    "topological_sort",
    "is_dag",
    "all_pairs_reachability",
    "simple_paths_exist_matrix",
]

Vertex = Hashable


def bfs_reachable(graph: DiGraph, start: Vertex) -> set[Vertex]:
    """Return every vertex reachable from *start*, including *start* itself.

    The search is breadth first and runs in O(V + E) over the reachable part
    of the graph.
    """
    if not graph.has_vertex(start):
        raise VertexNotFoundError(start)
    seen = {start}
    queue: deque[Vertex] = deque([start])
    while queue:
        current = queue.popleft()
        for successor in graph.successors(current):
            if successor not in seen:
                seen.add(successor)
                queue.append(successor)
    return seen


def dfs_reachable(graph: DiGraph, start: Vertex) -> set[Vertex]:
    """Return every vertex reachable from *start* using an iterative DFS."""
    if not graph.has_vertex(start):
        raise VertexNotFoundError(start)
    seen = {start}
    stack = [start]
    while stack:
        current = stack.pop()
        for successor in graph.successors(current):
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return seen


def is_reachable(graph: DiGraph, source: Vertex, target: Vertex, *, method: str = "bfs") -> bool:
    """Return ``True`` if a directed path from *source* to *target* exists.

    ``method`` selects the traversal strategy (``"bfs"`` or ``"dfs"``); both
    short-circuit as soon as *target* is discovered.
    """
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    if not graph.has_vertex(target):
        raise VertexNotFoundError(target)
    if source == target:
        return True
    if method not in ("bfs", "dfs"):
        raise ValueError(f"unknown traversal method: {method!r}")

    seen = {source}
    frontier: deque[Vertex] = deque([source])
    pop = frontier.popleft if method == "bfs" else frontier.pop
    while frontier:
        current = pop()
        for successor in graph.successors(current):
            if successor == target:
                return True
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return False


def descendants(graph: DiGraph, vertex: Vertex) -> set[Vertex]:
    """Return all vertices reachable from *vertex*, excluding *vertex*."""
    reached = bfs_reachable(graph, vertex)
    reached.discard(vertex)
    return reached


def ancestors(graph: DiGraph, vertex: Vertex) -> set[Vertex]:
    """Return all vertices that can reach *vertex*, excluding *vertex*."""
    if not graph.has_vertex(vertex):
        raise VertexNotFoundError(vertex)
    seen = {vertex}
    queue: deque[Vertex] = deque([vertex])
    while queue:
        current = queue.popleft()
        for predecessor in graph.predecessors(current):
            if predecessor not in seen:
                seen.add(predecessor)
                queue.append(predecessor)
    seen.discard(vertex)
    return seen


def weakly_connected_components(
    graph: DiGraph, restrict_to: Iterable[Vertex] | None = None
) -> list[set[Vertex]]:
    """Return the weakly connected components of the graph.

    When *restrict_to* is given, connectivity is computed on the subgraph
    induced by that vertex set (unknown vertices are ignored); this is the
    form used by ``ConstructPlan`` to recover fork and loop copies.
    """
    if restrict_to is None:
        universe = set(graph.vertices())
    else:
        universe = {v for v in restrict_to if graph.has_vertex(v)}

    components: list[set[Vertex]] = []
    unvisited = dict.fromkeys(v for v in graph.vertices() if v in universe)
    while unvisited:
        start = next(iter(unvisited))
        component = {start}
        del unvisited[start]
        queue: deque[Vertex] = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in graph.neighbors(current):
                if neighbor in unvisited:
                    component.add(neighbor)
                    del unvisited[neighbor]
                    queue.append(neighbor)
        components.append(component)
    return components


def is_weakly_connected(graph: DiGraph) -> bool:
    """Return ``True`` if the graph has at most one weakly connected component."""
    if graph.vertex_count == 0:
        return True
    return len(weakly_connected_components(graph)) == 1


def topological_sort(graph: DiGraph) -> list[Vertex]:
    """Return a topological order of the vertices (Kahn's algorithm).

    Raises :class:`NotADagError` if the graph contains a directed cycle.
    """
    in_degree = {vertex: graph.in_degree(vertex) for vertex in graph.vertices()}
    ready: deque[Vertex] = deque(v for v, d in in_degree.items() if d == 0)
    order: list[Vertex] = []
    while ready:
        current = ready.popleft()
        order.append(current)
        for successor in graph.successors(current):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                ready.append(successor)
    if len(order) != graph.vertex_count:
        raise NotADagError("graph contains a directed cycle")
    return order


def is_dag(graph: DiGraph) -> bool:
    """Return ``True`` if the graph is a directed acyclic graph."""
    try:
        topological_sort(graph)
    except NotADagError:
        return False
    return True


def all_pairs_reachability(graph: DiGraph) -> dict[Vertex, set[Vertex]]:
    """Return, for every vertex, the set of vertices it can reach (inclusive).

    For DAGs the computation propagates reachable sets in reverse topological
    order, giving O(V * E / word) behaviour in practice; for general graphs
    it falls back to one BFS per vertex.
    """
    try:
        order = topological_sort(graph)
    except NotADagError:
        return {vertex: bfs_reachable(graph, vertex) for vertex in graph.vertices()}

    reach: dict[Vertex, set[Vertex]] = {}
    for vertex in reversed(order):
        reachable = {vertex}
        for successor in graph.successors(vertex):
            reachable |= reach[successor]
        reach[vertex] = reachable
    return reach


def simple_paths_exist_matrix(graph: DiGraph) -> dict[tuple[Vertex, Vertex], bool]:
    """Return a dense ``(u, v) -> bool`` reachability dictionary.

    Convenient for exhaustive cross-checks in tests; quadratic in the number
    of vertices, so only suitable for small graphs.
    """
    reach = all_pairs_reachability(graph)
    vertices = graph.vertices()
    return {
        (u, v): (v in reach[u])
        for u in vertices
        for v in vertices
    }
