"""The identity layer: interned integer vertex handles.

Every hot path in the library ultimately works on dense integer vertex
identifiers — the CSR arrays, the engine kernels, the stored run labels.
What used to be an implementation detail of :mod:`repro.graphs.csr` is a
first-class surface here:

* :class:`VertexInterner` — a bijective table between arbitrary hashable
  vertices and dense integer *handles* ``0 .. n-1`` in insertion order;
* :func:`resolve_pair_ids` — the one-pass boundary conversion from
  ``(source, target)`` vertex pairs to two parallel handle arrays
  (numpy-backed when numpy is installed).

The contract throughout the library is that the object -> handle mapping
happens **once** at the boundary of a workload: callers intern their
vertices (or whole query files) up front and every later tier — labeling
predicates, engine kernels, the provenance store — moves integers around.
"""

from __future__ import annotations

from array import array
from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import Optional

from repro.exceptions import LabelingError, VertexNotFoundError

try:  # numpy accelerates the boundary conversion but is strictly optional
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = ["VertexInterner", "resolve_pair_ids", "intern_pair_arrays"]

Vertex = Hashable

#: array typecode for vertex identifiers (signed 64-bit, plenty for any graph)
_ID_TYPECODE = "q"


class VertexInterner:
    """A bijective vertex <-> dense-integer table, in insertion order.

    Interning the same vertex twice returns the same identifier; identifiers
    are dense (``0 .. len-1``) so they can index flat arrays directly.
    """

    __slots__ = ("_id_of", "_vertex_at")

    def __init__(self, vertices: Optional[Iterable[Vertex]] = None) -> None:
        self._id_of: dict[Vertex, int] = {}
        self._vertex_at: list[Vertex] = []
        if vertices is not None:
            for vertex in vertices:
                self.intern(vertex)

    def intern(self, vertex: Vertex) -> int:
        """Return the identifier of *vertex*, assigning the next free one if new."""
        identifier = self._id_of.get(vertex)
        if identifier is None:
            identifier = len(self._vertex_at)
            self._id_of[vertex] = identifier
            self._vertex_at.append(vertex)
        return identifier

    def intern_many(self, vertices: Iterable[Vertex]) -> list[int]:
        """Intern every vertex of *vertices* and return their identifiers."""
        intern = self.intern
        return [intern(vertex) for vertex in vertices]

    def id_of(self, vertex: Vertex) -> int:
        """Return the identifier of a known vertex; unknown vertices raise."""
        try:
            return self._id_of[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def vertex_at(self, identifier: int) -> Vertex:
        """Return the vertex with the given identifier.

        Identifiers are the dense non-negative integers handed out by
        :meth:`intern`; anything else (including negative values, which
        plain list indexing would silently accept) raises.
        """
        if not 0 <= identifier < len(self._vertex_at):
            raise VertexNotFoundError(identifier)
        return self._vertex_at[identifier]

    @property
    def id_map(self) -> dict[Vertex, int]:
        """The vertex -> identifier dictionary (treat as read-only).

        Exposed so hot paths can bulk-resolve at C speed
        (``map(id_map.__getitem__, ...)``) without a Python-level method
        call per vertex.  Mutating it would corrupt the table.
        """
        return self._id_of

    def vertices(self) -> list[Vertex]:
        """All interned vertices in identifier order (``vertices()[i]`` has id ``i``)."""
        return list(self._vertex_at)

    def __len__(self) -> int:
        return len(self._vertex_at)

    def __contains__(self, vertex: object) -> bool:
        return vertex in self._id_of

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertex_at)


def resolve_pair_ids(id_map: dict, pairs: Sequence[tuple]):
    """Map ``(source, target)`` vertex pairs to two parallel handle arrays.

    The conversion is a single C-level pass (``numpy.fromiter`` over a
    ``map``); without numpy a ``array('q')`` stands in, so callers can rely
    on getting an indexable integer sequence either way.  A pair member
    missing from *id_map* raises :class:`~repro.exceptions.VertexNotFoundError`.
    """
    flattened = (vertex for pair in pairs for vertex in pair)
    try:
        if _np is not None:
            flat = _np.fromiter(
                map(id_map.__getitem__, flattened),
                dtype=_np.int64,
                count=2 * len(pairs),
            )
        else:
            flat = array(_ID_TYPECODE, map(id_map.__getitem__, flattened))
    except KeyError as exc:
        raise VertexNotFoundError(exc.args[0]) from None
    return flat[0::2], flat[1::2]


def intern_pair_arrays(id_map: dict, pairs: Sequence[tuple]):
    """:func:`resolve_pair_ids` with the canonical labeling-layer error.

    Every query surface that interns pairs against a label index (the
    handle API mixin, the engine, the kernels) reports an unknown vertex
    the same way; this is the single place that wording lives.
    """
    try:
        return resolve_pair_ids(id_map, pairs)
    except VertexNotFoundError as exc:
        raise LabelingError(
            f"vertex was not labeled by this index: {exc.vertex!r}"
        ) from None
