"""repro: skeleton-based reachability labeling for workflow provenance.

A reproduction of "An Optimal Labeling Scheme for Workflow Provenance Using
Skeleton Labels" (Bao, Davidson, Khanna, Roy — SIGMOD 2010).

The most common entry points are re-exported here:

* :class:`~repro.workflow.specification.WorkflowSpecification` and
  :class:`~repro.workflow.run.WorkflowRun` — the workflow model;
* :func:`~repro.workflow.execution.generate_run` /
  :func:`~repro.workflow.execution.generate_run_with_size` — run simulation;
* :class:`~repro.skeleton.skl.SkeletonLabeler` — the paper's labeling scheme;
* :mod:`repro.labeling` — the TCM / BFS / tree-cover baselines;
* :class:`~repro.api.session.ProvenanceSession` and the declarative query
  objects of :mod:`repro.api` — the one query surface over live indexes,
  online runs, stored runs and cross-run sweeps;
* :class:`~repro.engine.query.QueryEngine` — the batched kernel layer the
  session compiles onto (use the session unless you are building plans);
* :mod:`repro.provenance` — data-level provenance queries;
* :mod:`repro.datasets` — synthetic and catalog workloads;
* :mod:`repro.bench` — the experiment harness reproducing every figure/table.
"""

from repro.exceptions import (
    DatasetError,
    GraphError,
    LabelingError,
    PlanConstructionError,
    ReproError,
    RunConformanceError,
    SerializationError,
    SpecificationError,
    StorageError,
    WellNestednessError,
)
from repro.api import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunBatchResult,
    CrossRunPointQuery,
    CrossRunPointResult,
    CrossRunQuery,
    CrossRunSweepResult,
    DataDependencyQuery,
    DownstreamQuery,
    PointQuery,
    ProvenanceSession,
    UpstreamQuery,
)
from repro.engine import EngineStats, QueryEngine
from repro.graphs import CSRGraph, DiGraph, VertexInterner, resolve_pair_ids
from repro.labeling import (
    BFSIndex,
    DFSIndex,
    IntervalTreeIndex,
    ReachabilityIndex,
    TCMIndex,
    TreeCoverIndex,
    VertexHandleAPI,
    available_schemes,
    build_index,
)
from repro.skeleton import (
    OnlineRun,
    RunLabel,
    SkeletonLabeledRun,
    SkeletonLabeler,
    construct_plan,
)
from repro.workflow import (
    ConstantProfile,
    ExecutionPlan,
    GeneratedRun,
    PerRegionProfile,
    PlanNodeKind,
    RangeProfile,
    Region,
    RegionKind,
    RunVertex,
    WorkflowRun,
    WorkflowSpecification,
    generate_run,
    generate_run_with_size,
    materialize_plan,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "GraphError",
    "SpecificationError",
    "WellNestednessError",
    "RunConformanceError",
    "PlanConstructionError",
    "LabelingError",
    "SerializationError",
    "StorageError",
    "DatasetError",
    # graphs / identity layer
    "DiGraph",
    "CSRGraph",
    "VertexInterner",
    "resolve_pair_ids",
    # the declarative query surface
    "ProvenanceSession",
    "PointQuery",
    "BatchQuery",
    "DownstreamQuery",
    "UpstreamQuery",
    "CrossRunQuery",
    "CrossRunBatchQuery",
    "CrossRunPointQuery",
    "DataDependencyQuery",
    "CrossRunSweepResult",
    "CrossRunBatchResult",
    "CrossRunPointResult",
    # batch query engine (the kernel layer under the session)
    "QueryEngine",
    "EngineStats",
    # labeling
    "ReachabilityIndex",
    "VertexHandleAPI",
    "TCMIndex",
    "BFSIndex",
    "DFSIndex",
    "IntervalTreeIndex",
    "TreeCoverIndex",
    "available_schemes",
    "build_index",
    # workflow model
    "WorkflowSpecification",
    "WorkflowRun",
    "RunVertex",
    "Region",
    "RegionKind",
    "ExecutionPlan",
    "PlanNodeKind",
    "GeneratedRun",
    "ConstantProfile",
    "RangeProfile",
    "PerRegionProfile",
    "generate_run",
    "generate_run_with_size",
    "materialize_plan",
    # skeleton scheme
    "SkeletonLabeler",
    "SkeletonLabeledRun",
    "RunLabel",
    "construct_plan",
    "OnlineRun",
]
