"""Plain-text reporting of experiment results.

Every experiment returns an :class:`ExperimentResult` — a titled list of
uniform dict rows.  This module renders those as aligned ASCII tables (for
the benchmark console output and EXPERIMENTS.md) and as CSV (for plotting).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

__all__ = ["ExperimentResult", "format_table", "format_csv", "write_report"]

PathLike = Union[str, Path]


@dataclass
class ExperimentResult:
    """The outcome of one experiment: a table plus metadata.

    Attributes
    ----------
    experiment_id:
        Identifier matching the paper, e.g. ``"figure-12"`` or ``"table-1"``.
    title:
        Human-readable title.
    rows:
        Uniform dict rows.
    columns:
        Column order; defaults to the keys of the first row.
    notes:
        Free-form remarks (parameters, substitutions, caveats).
    """

    experiment_id: str
    title: str
    rows: list[dict]
    columns: Optional[list[str]] = None
    notes: list[str] = field(default_factory=list)

    def column_names(self) -> list[str]:
        """Return the effective column order."""
        if self.columns:
            return list(self.columns)
        if self.rows:
            return list(self.rows[0].keys())
        return []

    def to_text(self) -> str:
        """Render the result as an ASCII table with title and notes."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(format_table(self.rows, self.column_names()))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render the rows as CSV."""
        return format_csv(self.rows, self.column_names())


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Format dict rows as an aligned ASCII table."""
    if not rows:
        return "(no rows)"
    column_names = list(columns) if columns else list(rows[0].keys())
    rendered = [[_format_cell(row.get(name, "")) for name in column_names] for row in rows]
    widths = [
        max(len(column_names[i]), max(len(line[i]) for line in rendered))
        for i in range(len(column_names))
    ]
    header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(column_names))
    separator = "  ".join("-" * widths[i] for i in range(len(column_names)))
    body = [
        "  ".join(line[i].rjust(widths[i]) for i in range(len(column_names)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def format_csv(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Format dict rows as CSV text."""
    if not rows:
        return ""
    column_names = list(columns) if columns else list(rows[0].keys())
    lines = [",".join(column_names)]
    for row in rows:
        lines.append(",".join(_format_cell(row.get(name, "")) for name in column_names))
    return "\n".join(lines)


def write_report(result: ExperimentResult, directory: PathLike) -> Path:
    """Write a result into *directory* and return the text rendering's path.

    Two files are produced per experiment: the aligned-table rendering
    (``<experiment-id>.txt``, the path returned) and a machine-readable
    ``BENCH_<experiment-id>.json`` with the raw rows and notes — the file
    CI archives as a build artifact so throughput regressions can be
    compared across runs.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.txt"
    path.write_text(result.to_text() + "\n", encoding="utf-8")
    json_path = directory / f"BENCH_{result.experiment_id}.json"
    json_path.write_text(
        json.dumps(
            {
                "experiment_id": result.experiment_id,
                "title": result.title,
                "rows": result.rows,
                "notes": result.notes,
            },
            indent=2,
            default=str,
        )
        + "\n",
        encoding="utf-8",
    )
    return path
