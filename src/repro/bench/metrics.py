"""Measurement helpers shared by the experiment harness.

These functions implement the paper's accounting rules:

* label lengths are reported in bits, with the cost of labeling the
  specification optionally *amortized* over ``k`` runs (Table 2: the TCM
  skeleton adds ``nG² / (k · nR)`` bits per run vertex);
* construction times may include the amortized share of the specification
  labeling time;
* query times are averaged over a batch of random vertex pairs.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.skeleton.skl import SkeletonLabeledRun

__all__ = [
    "Stopwatch",
    "time_call",
    "sample_query_pairs",
    "measure_query_seconds",
    "amortized_label_bits",
    "amortized_construction_seconds",
    "SchemeMeasurement",
]


class Stopwatch:
    """Tiny context manager measuring wall-clock seconds."""

    def __enter__(self) -> "Stopwatch":
        self.seconds = 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start


def time_call(function: Callable, *args, **kwargs) -> tuple[object, float]:
    """Call *function* and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = function(*args, **kwargs)
    return result, time.perf_counter() - start


def sample_query_pairs(
    vertices: Sequence, count: int, rng: Optional[random.Random] = None
) -> list[tuple]:
    """Draw *count* random (source, target) pairs with replacement."""
    rng = rng or random.Random(0)
    pool = list(vertices)
    return [(rng.choice(pool), rng.choice(pool)) for _ in range(count)]


def measure_query_seconds(reaches: Callable, pairs: Sequence[tuple]) -> float:
    """Average seconds per query of ``reaches(source, target)`` over *pairs*."""
    if not pairs:
        return 0.0
    start = time.perf_counter()
    for source, target in pairs:
        reaches(source, target)
    return (time.perf_counter() - start) / len(pairs)


def amortized_label_bits(
    base_bits: float,
    spec_total_label_bits: int,
    run_vertex_count: int,
    runs_amortized: Optional[int],
) -> float:
    """Add the amortized per-vertex share of the specification index size.

    ``base_bits`` is the run label length (``3 log nR + log nG``); the
    specification index of ``spec_total_label_bits`` bits is spread over
    ``runs_amortized * run_vertex_count`` run vertices (Table 2).  When
    *runs_amortized* is ``None`` the specification cost is ignored entirely
    (the Section 8.1 setting).
    """
    if runs_amortized is None:
        return float(base_bits)
    if runs_amortized <= 0 or run_vertex_count <= 0:
        raise ValueError("runs_amortized and run_vertex_count must be positive")
    return float(base_bits) + spec_total_label_bits / (runs_amortized * run_vertex_count)


def amortized_construction_seconds(
    run_seconds: float,
    spec_seconds: float,
    runs_amortized: Optional[int],
) -> float:
    """Add the amortized share of the specification labeling time."""
    if runs_amortized is None:
        return run_seconds
    if runs_amortized <= 0:
        raise ValueError("runs_amortized must be positive")
    return run_seconds + spec_seconds / runs_amortized


@dataclass(frozen=True)
class SchemeMeasurement:
    """One (scheme, run size) measurement used by the comparison figures."""

    scheme: str
    run_size: int
    run_edges: int
    max_label_bits: float
    avg_label_bits: float
    construction_seconds: float
    query_seconds: float
    fast_path_fraction: Optional[float] = None

    def as_row(self) -> dict:
        """Flatten into a plain dict row for the reporting layer."""
        row = {
            "scheme": self.scheme,
            "run_size": self.run_size,
            "run_edges": self.run_edges,
            "max_label_bits": round(self.max_label_bits, 2),
            "avg_label_bits": round(self.avg_label_bits, 2),
            "construction_ms": round(self.construction_seconds * 1e3, 3),
            "query_us": round(self.query_seconds * 1e6, 3),
        }
        if self.fast_path_fraction is not None:
            row["fast_path_fraction"] = round(self.fast_path_fraction, 3)
        return row


def skeleton_label_stats(labeled: SkeletonLabeledRun) -> tuple[int, float]:
    """Return (max, average) label length in bits of a skeleton-labeled run."""
    return labeled.max_label_length_bits(), labeled.average_label_length_bits()
