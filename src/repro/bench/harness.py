"""Common machinery for the Section 8 experiments.

The harness knows the paper's experimental setup — run sizes from 0.1K to
102.4K vertices doubling each step, a fixed number of random reachability
queries per point, and the scheme combinations under comparison — and exposes
them behind three *scales* so that the same code serves unit tests (``smoke``),
the default benchmark run (``default``) and a full paper-sized reproduction
(``paper``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.bench.metrics import (
    SchemeMeasurement,
    measure_query_seconds,
    sample_query_pairs,
    time_call,
)
from repro.exceptions import DatasetError
from repro.labeling.registry import build_index
from repro.skeleton.skl import QueryPath, SkeletonLabeler
from repro.workflow.execution import generate_run_with_size
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

__all__ = [
    "BenchScale",
    "get_scale",
    "paper_run_sizes",
    "generate_run_series",
    "measure_skeleton_scheme",
    "measure_direct_scheme",
]

#: the paper's full sweep: 0.1K .. 102.4K vertices, doubling
PAPER_RUN_SIZES: tuple[int, ...] = (
    100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800, 25_600, 51_200, 102_400
)


@dataclass(frozen=True)
class BenchScale:
    """One experiment scale: which run sizes to sweep and how many queries to time."""

    name: str
    run_sizes: tuple[int, ...]
    query_count: int
    #: largest run size on which the quadratic-space TCM baseline is attempted
    direct_tcm_limit: int
    #: largest run size on which the per-query-linear BFS baseline is attempted
    direct_bfs_limit: int


_SCALES: dict[str, BenchScale] = {
    "smoke": BenchScale(
        name="smoke",
        run_sizes=(100, 200, 400),
        query_count=200,
        direct_tcm_limit=400,
        direct_bfs_limit=400,
    ),
    "default": BenchScale(
        name="default",
        run_sizes=(100, 200, 400, 800, 1_600, 3_200, 6_400, 12_800),
        query_count=2_000,
        direct_tcm_limit=6_400,
        direct_bfs_limit=12_800,
    ),
    "paper": BenchScale(
        name="paper",
        run_sizes=PAPER_RUN_SIZES,
        query_count=10_000,
        direct_tcm_limit=25_600,
        direct_bfs_limit=102_400,
    ),
}


def get_scale(scale: str | BenchScale) -> BenchScale:
    """Resolve a scale name (``smoke`` / ``default`` / ``paper``) to its preset."""
    if isinstance(scale, BenchScale):
        return scale
    try:
        return _SCALES[scale]
    except KeyError:
        raise DatasetError(
            f"unknown benchmark scale {scale!r}; available: {sorted(_SCALES)}"
        ) from None


def paper_run_sizes() -> tuple[int, ...]:
    """The full 0.1K–102.4K sweep used by the paper's figures."""
    return PAPER_RUN_SIZES


def generate_run_series(
    spec: WorkflowSpecification,
    run_sizes: tuple[int, ...],
    *,
    seed: int = 0,
) -> list:
    """Generate one run per requested size (ground-truth plan included)."""
    series = []
    for index, size in enumerate(run_sizes):
        target = max(size, spec.vertex_count)
        series.append(
            generate_run_with_size(
                spec, target, seed=seed + index, name=f"{spec.name}-{size}"
            )
        )
    return series


def measure_skeleton_scheme(
    labeler: SkeletonLabeler,
    run: WorkflowRun,
    *,
    query_count: int,
    rng: Optional[random.Random] = None,
    plan=None,
    context=None,
    scheme_label: Optional[str] = None,
) -> tuple[SchemeMeasurement, object]:
    """Label *run* with SKL and measure label length, construction and query time.

    Returns the measurement plus the labeled run (so callers can reuse it).
    """
    rng = rng or random.Random(0)
    labeled, construction_seconds = time_call(
        labeler.label_run, run, plan=plan, context=context
    )
    pairs = sample_query_pairs(run.vertices(), query_count, rng)
    query_seconds = measure_query_seconds(labeled.reaches, pairs)
    fast = sum(
        1 for source, target in pairs if labeled.query_path(source, target) != QueryPath.SKELETON
    )
    measurement = SchemeMeasurement(
        scheme=scheme_label or f"{labeled.spec_index.scheme_name}+skl",
        run_size=run.vertex_count,
        run_edges=run.edge_count,
        max_label_bits=labeled.max_label_length_bits(),
        avg_label_bits=labeled.average_label_length_bits(),
        construction_seconds=construction_seconds,
        query_seconds=query_seconds,
        fast_path_fraction=fast / len(pairs) if pairs else None,
    )
    return measurement, labeled


def measure_direct_scheme(
    scheme: str,
    run: WorkflowRun,
    *,
    query_count: int,
    rng: Optional[random.Random] = None,
) -> SchemeMeasurement:
    """Label the run graph directly with *scheme* (the TCM / BFS baselines)."""
    rng = rng or random.Random(0)
    index, construction_seconds = time_call(build_index, scheme, run.graph)
    pairs = sample_query_pairs(run.vertices(), query_count, rng)
    query_seconds = measure_query_seconds(index.reaches, pairs)
    return SchemeMeasurement(
        scheme=scheme,
        run_size=run.vertex_count,
        run_edges=run.edge_count,
        max_label_bits=index.max_label_length_bits(),
        avg_label_bits=index.average_label_length_bits(),
        construction_seconds=construction_seconds,
        query_seconds=query_seconds,
        fast_path_fraction=None,
    )


def run_series_callable(
    spec: WorkflowSpecification, sizes: tuple[int, ...], seed: int = 0
) -> Callable[[], list]:
    """Return a zero-argument callable generating the run series (for pytest-benchmark)."""

    def _generate() -> list:
        return generate_run_series(spec, sizes, seed=seed)

    return _generate
