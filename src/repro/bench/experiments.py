"""Experiment drivers reproducing every table and figure of Section 8.

Each ``figure_*`` / ``table_*`` function regenerates one published result and
returns an :class:`~repro.bench.reporting.ExperimentResult` whose rows mirror
the series plotted in the paper.  All functions take a *scale*
(``"smoke"``, ``"default"`` or ``"paper"``) controlling run sizes and query
counts, so the same code backs the unit tests, the default benchmark suite
and a full paper-sized reproduction.

Absolute milliseconds differ from the 2010 Java/Pentium testbed, so the
reproduction targets are the *shapes*: logarithmic label growth (Fig. 12),
linear construction time (Fig. 13, 16, 19), constant query time for the
TCM-backed variants (Fig. 14, 17), the amortization cross-over between
TCM+SKL and BFS+SKL (Fig. 15, 16), the orders-of-magnitude gap to the direct
TCM / BFS baselines (Fig. 16, 17) and the weak influence of the specification
size on large runs (Fig. 18-20).
"""

from __future__ import annotations

import math
import os
import random
import time
from collections import Counter
from typing import Optional

from repro.bench.harness import (
    BenchScale,
    generate_run_series,
    get_scale,
    measure_direct_scheme,
    measure_skeleton_scheme,
)
from repro.bench.metrics import (
    amortized_construction_seconds,
    amortized_label_bits,
    measure_query_seconds,
    sample_query_pairs,
    time_call,
)
from repro.bench.reporting import ExperimentResult
from repro.datasets.reallife import REAL_WORKFLOW_PROFILES, load_real_workflow
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.engine import QueryEngine
from repro.exceptions import ReproError
from repro.labeling.registry import build_index
from repro.skeleton.skl import SkeletonLabeler
from repro.workflow.execution import generate_run_with_size

__all__ = [
    "ablation_spec_schemes",
    "comparison_specification",
    "figure_12_label_length",
    "figure_13_construction_time",
    "figure_14_query_time",
    "scheme_comparison",
    "figure_15_label_length_comparison",
    "figure_16_construction_comparison",
    "figure_17_query_comparison",
    "spec_influence",
    "figure_18_spec_influence_label_length",
    "figure_19_spec_influence_construction",
    "figure_20_spec_influence_query",
    "table_1_real_workflows",
    "table_2_complexity",
    "throughput_query_engine",
    "throughput_handle_path",
    "throughput_cross_run",
    "throughput_parallel_cross_run",
    "throughput_sharded_ingest",
    "throughput_shard_rebalance",
    "throughput_server",
    "throughput_sql_pushdown",
    "throughput_incremental_updates",
    "all_experiments",
]

#: amortization settings of Figures 15 and 16 (number of runs sharing the spec labels)
AMORTIZATION_RUNS: tuple[int, ...] = (1, 2, 10)

#: the synthetic workflow of Sections 8.2/8.3: nG=100, mG=200, |TG|=10, [TG]=4
_COMPARISON_SPEC = SyntheticSpecConfig(
    n_modules=100, n_edges=200, hierarchy_size=10, hierarchy_depth=4,
    name="synthetic-100", seed=42,
)


def comparison_specification():
    """The synthetic specification of Sections 8.2/8.3 (nG=100, mG=200)."""
    return generate_specification(_COMPARISON_SPEC)


# backwards-compatible private alias used by earlier revisions
_comparison_specification = comparison_specification


def _spec_influence_specification(n_modules: int):
    return generate_specification(
        SyntheticSpecConfig(
            n_modules=n_modules,
            n_edges=2 * n_modules,
            hierarchy_size=10,
            hierarchy_depth=4,
            name=f"synthetic-{n_modules}",
            seed=42 + n_modules,
        )
    )


# ----------------------------------------------------------------------
# Section 8.1 — SKL performance on a real workflow (Figures 12-14)
# ----------------------------------------------------------------------
def figure_12_label_length(
    scale: str | BenchScale = "default", *, workflow: str = "QBLAST", seed: int = 0
) -> ExperimentResult:
    """Figure 12: maximum and average SKL label length vs run size."""
    preset = get_scale(scale)
    spec = load_real_workflow(workflow)
    labeler = SkeletonLabeler(spec, "tcm")
    rows: list[dict] = []
    for generated in generate_run_series(spec, preset.run_sizes, seed=seed):
        labeled = labeler.label_run(generated.run)
        run_size = generated.run.vertex_count
        rows.append(
            {
                "run_size": run_size,
                "max_label_bits": labeled.max_label_length_bits(),
                "avg_label_bits": round(labeled.average_label_length_bits(), 2),
                "bound_3log_nR": round(3 * math.log2(run_size), 2),
                "nonempty_plus_nodes": labeled.nonempty_plus_count,
            }
        )
    return ExperimentResult(
        experiment_id="figure-12",
        title=f"SKL label length for {workflow} (spec labeled by TCM)",
        rows=rows,
        notes=[
            "expected shape: both curves grow logarithmically with run size and the "
            "maximum stays below the 3*log2(nR) asymptote (Lemma 4.7)",
            f"scale={preset.name}; the specification labeling cost is excluded (Section 8.1)",
        ],
    )


def figure_13_construction_time(
    scale: str | BenchScale = "default", *, workflow: str = "QBLAST", seed: int = 0
) -> ExperimentResult:
    """Figure 13: SKL construction time, with and without a precomputed plan."""
    preset = get_scale(scale)
    spec = load_real_workflow(workflow)
    labeler = SkeletonLabeler(spec, "tcm")
    rows: list[dict] = []
    repetitions = 3  # best-of-3 guards single-shot timings against OS/GC hiccups
    for generated in generate_run_series(spec, preset.run_sizes, seed=seed):
        default_seconds = min(
            time_call(labeler.label_run, generated.run)[1] for _ in range(repetitions)
        )
        with_plan_seconds = min(
            time_call(
                labeler.label_run,
                generated.run,
                plan=generated.plan,
                context=generated.context,
            )[1]
            for _ in range(repetitions)
        )
        rows.append(
            {
                "run_size": generated.run.vertex_count,
                "run_edges": generated.run.edge_count,
                "default_ms": round(default_seconds * 1e3, 3),
                "with_plan_ms": round(with_plan_seconds * 1e3, 3),
            }
        )
    return ExperimentResult(
        experiment_id="figure-13",
        title=f"SKL construction time for {workflow}",
        rows=rows,
        notes=[
            "expected shape: both settings grow linearly with run size and the "
            "'with execution plan & context' setting is markedly cheaper (the plan "
            "reconstruction dominates the default setting)",
            f"scale={preset.name}",
        ],
    )


def figure_14_query_time(
    scale: str | BenchScale = "default", *, workflow: str = "QBLAST", seed: int = 0
) -> ExperimentResult:
    """Figure 14: SKL query time vs run size (constant, TCM skeleton labels)."""
    preset = get_scale(scale)
    spec = load_real_workflow(workflow)
    labeler = SkeletonLabeler(spec, "tcm")
    rng = random.Random(seed)
    rows: list[dict] = []
    for generated in generate_run_series(spec, preset.run_sizes, seed=seed):
        measurement, _ = measure_skeleton_scheme(
            labeler, generated.run, query_count=preset.query_count, rng=rng
        )
        rows.append(
            {
                "run_size": measurement.run_size,
                "query_us": round(measurement.query_seconds * 1e6, 4),
                "fast_path_fraction": round(measurement.fast_path_fraction or 0.0, 3),
            }
        )
    return ExperimentResult(
        experiment_id="figure-14",
        title=f"SKL query time for {workflow} (spec labeled by TCM)",
        rows=rows,
        notes=[
            "expected shape: flat (constant) query time across three orders of "
            "magnitude of run size",
            f"{preset.query_count} random queries per point (the paper uses 10^6)",
        ],
    )


# ----------------------------------------------------------------------
# Section 8.2 — TCM+SKL vs BFS+SKL vs direct TCM / BFS (Figures 15-17)
# ----------------------------------------------------------------------
def scheme_comparison(
    scale: str | BenchScale = "default", *, seed: int = 0
) -> ExperimentResult:
    """The shared sweep behind Figures 15, 16 and 17.

    Rows carry one (run size, scheme, amortization) combination with label
    length, construction time, query time and the fast-path fraction.
    """
    preset = get_scale(scale)
    spec = _comparison_specification()
    tcm_labeler = SkeletonLabeler(spec, "tcm")
    bfs_labeler = SkeletonLabeler(spec, "bfs")
    rng = random.Random(seed)
    rows: list[dict] = []

    for generated in generate_run_series(spec, preset.run_sizes, seed=seed):
        run = generated.run
        run_size = run.vertex_count

        tcm_measurement, tcm_labeled = measure_skeleton_scheme(
            tcm_labeler, run, query_count=preset.query_count, rng=rng,
            scheme_label="tcm+skl",
        )
        bfs_measurement, _ = measure_skeleton_scheme(
            bfs_labeler, run, query_count=preset.query_count, rng=rng,
            scheme_label="bfs+skl",
        )

        spec_bits = tcm_labeler.spec_index.total_label_bits()
        for runs_amortized in AMORTIZATION_RUNS:
            rows.append(
                {
                    "run_size": run_size,
                    "scheme": "tcm+skl",
                    "amortized_runs": runs_amortized,
                    "max_label_bits": round(
                        amortized_label_bits(
                            tcm_measurement.max_label_bits, spec_bits, run_size, runs_amortized
                        ),
                        2,
                    ),
                    "construction_ms": round(
                        amortized_construction_seconds(
                            tcm_measurement.construction_seconds,
                            tcm_labeler.spec_labeling_seconds,
                            runs_amortized,
                        )
                        * 1e3,
                        3,
                    ),
                    "query_us": round(tcm_measurement.query_seconds * 1e6, 4),
                    "fast_path_fraction": round(tcm_measurement.fast_path_fraction or 0.0, 3),
                }
            )
        rows.append(
            {
                "run_size": run_size,
                "scheme": "bfs+skl",
                "amortized_runs": 1,
                "max_label_bits": round(bfs_measurement.max_label_bits, 2),
                "construction_ms": round(bfs_measurement.construction_seconds * 1e3, 3),
                "query_us": round(bfs_measurement.query_seconds * 1e6, 4),
                "fast_path_fraction": round(bfs_measurement.fast_path_fraction or 0.0, 3),
            }
        )

        # the run generator may overshoot the nominal target by a few vertices,
        # so compare against the limit with a small tolerance
        if run_size <= preset.direct_tcm_limit * 1.05:
            direct_tcm = measure_direct_scheme(
                "tcm", run, query_count=preset.query_count, rng=rng
            )
            rows.append(
                {
                    "run_size": run_size,
                    "scheme": "tcm",
                    "amortized_runs": 1,
                    "max_label_bits": round(direct_tcm.max_label_bits, 2),
                    "construction_ms": round(direct_tcm.construction_seconds * 1e3, 3),
                    "query_us": round(direct_tcm.query_seconds * 1e6, 4),
                    "fast_path_fraction": "",
                }
            )
        if run_size <= preset.direct_bfs_limit * 1.05:
            direct_bfs = measure_direct_scheme(
                "bfs", run, query_count=max(50, preset.query_count // 20), rng=rng
            )
            rows.append(
                {
                    "run_size": run_size,
                    "scheme": "bfs",
                    "amortized_runs": 1,
                    "max_label_bits": round(direct_bfs.max_label_bits, 2),
                    "construction_ms": round(direct_bfs.construction_seconds * 1e3, 3),
                    "query_us": round(direct_bfs.query_seconds * 1e6, 4),
                    "fast_path_fraction": "",
                }
            )
        del tcm_labeled
    return ExperimentResult(
        experiment_id="scheme-comparison",
        title="TCM+SKL vs BFS+SKL vs direct TCM / BFS (synthetic nG=100, mG=200, |TG|=10, [TG]=4)",
        rows=rows,
        notes=[
            "the TCM and BFS baselines label the run graph directly; they are only "
            "attempted up to the scale's size limits (the paper similarly caps TCM at "
            "25.6K vertices for memory reasons)",
            "TCM+SKL label length and construction time include the specification cost "
            "amortized over 1, 2 and 10 runs (Table 2 accounting)",
        ],
    )


def _filter_columns(result: ExperimentResult, experiment_id: str, title: str,
                    columns: list[str], keep) -> ExperimentResult:
    rows = [
        {name: row[name] for name in columns}
        for row in result.rows
        if keep(row)
    ]
    return ExperimentResult(
        experiment_id=experiment_id, title=title, rows=rows, columns=columns,
        notes=list(result.notes),
    )


def figure_15_label_length_comparison(
    scale: str | BenchScale = "default", *, seed: int = 0,
    shared: Optional[ExperimentResult] = None,
) -> ExperimentResult:
    """Figure 15: amortized maximum label length of TCM+SKL vs BFS+SKL."""
    shared = shared or scheme_comparison(scale, seed=seed)
    return _filter_columns(
        shared,
        "figure-15",
        "Label length (amortized): TCM+SKL (1/2/10 runs) vs BFS+SKL",
        ["run_size", "scheme", "amortized_runs", "max_label_bits"],
        keep=lambda row: row["scheme"] in ("tcm+skl", "bfs+skl"),
    )


def figure_16_construction_comparison(
    scale: str | BenchScale = "default", *, seed: int = 0,
    shared: Optional[ExperimentResult] = None,
) -> ExperimentResult:
    """Figure 16: amortized construction time of TCM+SKL, BFS+SKL and direct TCM."""
    shared = shared or scheme_comparison(scale, seed=seed)
    return _filter_columns(
        shared,
        "figure-16",
        "Construction time (amortized): TCM+SKL vs BFS+SKL vs direct TCM",
        ["run_size", "scheme", "amortized_runs", "construction_ms"],
        keep=lambda row: row["scheme"] in ("tcm+skl", "bfs+skl", "tcm"),
    )


def figure_17_query_comparison(
    scale: str | BenchScale = "default", *, seed: int = 0,
    shared: Optional[ExperimentResult] = None,
) -> ExperimentResult:
    """Figure 17: query time of TCM+SKL, BFS+SKL, direct TCM and direct BFS."""
    shared = shared or scheme_comparison(scale, seed=seed)
    result = _filter_columns(
        shared,
        "figure-17",
        "Query time: TCM+SKL vs BFS+SKL vs TCM vs BFS",
        ["run_size", "scheme", "query_us", "fast_path_fraction"],
        keep=lambda row: row["amortized_runs"] == 1,
    )
    result.notes.append(
        "expected shape: TCM+SKL and TCM are flat; BFS+SKL decreases slightly with run "
        "size (more queries short-circuit on the context encoding); BFS grows linearly"
    )
    return result


# ----------------------------------------------------------------------
# Section 8.3 — influence of the specification (Figures 18-20)
# ----------------------------------------------------------------------
def spec_influence(
    scale: str | BenchScale = "default", *, seed: int = 0,
    spec_sizes: tuple[int, ...] = (50, 100, 200),
) -> ExperimentResult:
    """The shared sweep behind Figures 18, 19 and 20 (nG in {50, 100, 200})."""
    preset = get_scale(scale)
    rng = random.Random(seed)
    rows: list[dict] = []
    for n_modules in spec_sizes:
        spec = _spec_influence_specification(n_modules)
        tcm_labeler = SkeletonLabeler(spec, "tcm")
        bfs_labeler = SkeletonLabeler(spec, "bfs")
        spec_bits = tcm_labeler.spec_index.total_label_bits()
        for generated in generate_run_series(spec, preset.run_sizes, seed=seed):
            run = generated.run
            tcm_measurement, _ = measure_skeleton_scheme(
                tcm_labeler, run, query_count=preset.query_count, rng=rng,
                scheme_label="tcm+skl",
            )
            bfs_measurement, _ = measure_skeleton_scheme(
                bfs_labeler, run, query_count=preset.query_count, rng=rng,
                scheme_label="bfs+skl",
            )
            rows.append(
                {
                    "spec_size": n_modules,
                    "run_size": run.vertex_count,
                    "tcm_skl_max_label_bits_k2": round(
                        amortized_label_bits(
                            tcm_measurement.max_label_bits, spec_bits, run.vertex_count, 2
                        ),
                        2,
                    ),
                    "tcm_skl_construction_ms_k2": round(
                        amortized_construction_seconds(
                            tcm_measurement.construction_seconds,
                            tcm_labeler.spec_labeling_seconds,
                            2,
                        )
                        * 1e3,
                        3,
                    ),
                    "bfs_skl_query_us": round(bfs_measurement.query_seconds * 1e6, 4),
                    "bfs_skl_fast_path": round(bfs_measurement.fast_path_fraction or 0.0, 3),
                }
            )
    return ExperimentResult(
        experiment_id="spec-influence",
        title="Influence of the specification size (mG/nG=2, |TG|=10, [TG]=4)",
        rows=rows,
        notes=[
            "label length and construction time are amortized over 2 runs; query time "
            "uses BFS skeleton labels — the three quantities Table 2 marks as "
            "nG-sensitive",
        ],
    )


def figure_18_spec_influence_label_length(
    scale: str | BenchScale = "default", *, seed: int = 0,
    shared: Optional[ExperimentResult] = None,
) -> ExperimentResult:
    """Figure 18: TCM+SKL label length for nG in {50, 100, 200}."""
    shared = shared or spec_influence(scale, seed=seed)
    return _filter_columns(
        shared,
        "figure-18",
        "Influence of specification size on TCM+SKL label length (amortized over 2 runs)",
        ["spec_size", "run_size", "tcm_skl_max_label_bits_k2"],
        keep=lambda row: True,
    )


def figure_19_spec_influence_construction(
    scale: str | BenchScale = "default", *, seed: int = 0,
    shared: Optional[ExperimentResult] = None,
) -> ExperimentResult:
    """Figure 19: TCM+SKL construction time for nG in {50, 100, 200}."""
    shared = shared or spec_influence(scale, seed=seed)
    return _filter_columns(
        shared,
        "figure-19",
        "Influence of specification size on TCM+SKL construction time (amortized over 2 runs)",
        ["spec_size", "run_size", "tcm_skl_construction_ms_k2"],
        keep=lambda row: True,
    )


def figure_20_spec_influence_query(
    scale: str | BenchScale = "default", *, seed: int = 0,
    shared: Optional[ExperimentResult] = None,
) -> ExperimentResult:
    """Figure 20: BFS+SKL query time for nG in {50, 100, 200}."""
    shared = shared or spec_influence(scale, seed=seed)
    return _filter_columns(
        shared,
        "figure-20",
        "Influence of specification size on BFS+SKL query time",
        ["spec_size", "run_size", "bfs_skl_query_us", "bfs_skl_fast_path"],
        keep=lambda row: True,
    )


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table_1_real_workflows() -> ExperimentResult:
    """Table 1: characteristics of the real-life scientific workflows."""
    rows = []
    for profile in REAL_WORKFLOW_PROFILES:
        spec = load_real_workflow(profile.name)
        rows.append(
            {
                "workflow": profile.name,
                "nG": spec.vertex_count,
                "mG": spec.edge_count,
                "|TG|": spec.hierarchy.size,
                "[TG]": spec.hierarchy.depth,
                "forks": len(spec.forks),
                "loops": len(spec.loops),
            }
        )
    return ExperimentResult(
        experiment_id="table-1",
        title="Characteristics of real-life scientific workflows (synthesized stand-ins)",
        rows=rows,
        notes=[
            "the myExperiment repository is unavailable offline; these specifications "
            "are synthesized to match the published nG / mG / |TG| / [TG] exactly "
            "(see DESIGN.md)",
        ],
    )


def table_2_complexity(
    scale: str | BenchScale = "default", *, seed: int = 0
) -> ExperimentResult:
    """Table 2: complexity comparison with amortized costs, checked empirically."""
    preset = get_scale(scale)
    spec = _comparison_specification()
    run_size = preset.run_sizes[min(len(preset.run_sizes) - 1, 4)]
    generated = generate_run_with_size(spec, run_size, seed=seed, name="table2-run")
    run = generated.run
    rng = random.Random(seed)

    n_g = spec.vertex_count
    n_r = run.vertex_count
    rows = []

    tcm_labeler = SkeletonLabeler(spec, "tcm")
    tcm_measurement, _ = measure_skeleton_scheme(
        tcm_labeler, run, query_count=preset.query_count, rng=rng, scheme_label="tcm+skl"
    )
    k = 2
    rows.append(
        {
            "scheme": "TCM+SKL",
            "label_length_formula": "3 log nR + log nG + nG^2/(k nR)",
            "predicted_bits": round(
                3 * math.log2(n_r) + math.log2(n_g) + n_g * n_g / (k * n_r), 1
            ),
            "measured_bits": round(
                amortized_label_bits(
                    tcm_measurement.max_label_bits,
                    tcm_labeler.spec_index.total_label_bits(),
                    n_r,
                    k,
                ),
                1,
            ),
            "query_time": "O(1)",
            "measured_query_us": round(tcm_measurement.query_seconds * 1e6, 3),
        }
    )

    bfs_labeler = SkeletonLabeler(spec, "bfs")
    bfs_measurement, _ = measure_skeleton_scheme(
        bfs_labeler, run, query_count=preset.query_count, rng=rng, scheme_label="bfs+skl"
    )
    rows.append(
        {
            "scheme": "BFS+SKL",
            "label_length_formula": "3 log nR + log nG",
            "predicted_bits": round(3 * math.log2(n_r) + math.log2(n_g), 1),
            "measured_bits": round(bfs_measurement.max_label_bits, 1),
            "query_time": "O(mG + nG)",
            "measured_query_us": round(bfs_measurement.query_seconds * 1e6, 3),
        }
    )

    if n_r <= preset.direct_tcm_limit:
        direct_tcm = measure_direct_scheme("tcm", run, query_count=preset.query_count, rng=rng)
        rows.append(
            {
                "scheme": "TCM",
                "label_length_formula": "nR",
                "predicted_bits": n_r,
                "measured_bits": round(direct_tcm.max_label_bits, 1),
                "query_time": "O(1)",
                "measured_query_us": round(direct_tcm.query_seconds * 1e6, 3),
            }
        )
    direct_bfs = measure_direct_scheme(
        "bfs", run, query_count=max(50, preset.query_count // 20), rng=rng
    )
    rows.append(
        {
            "scheme": "BFS",
            "label_length_formula": "0",
            "predicted_bits": 0,
            "measured_bits": round(direct_bfs.max_label_bits, 1),
            "query_time": "O(mR + nR)",
            "measured_query_us": round(direct_bfs.query_seconds * 1e6, 3),
        }
    )
    return ExperimentResult(
        experiment_id="table-2",
        title=f"Complexity comparison with amortized costs (k=2 runs, nR={n_r})",
        rows=rows,
        notes=[
            "label-length predictions follow the Table 2 formulas; measured values use "
            "the library's bit accounting on one generated run of the synthetic "
            "nG=100 workflow",
        ],
    )


def ablation_spec_schemes(
    scale: str | BenchScale = "default",
    *,
    seed: int = 0,
    schemes: tuple[str, ...] = ("tcm", "bfs", "dfs", "tree-cover", "chain", "2-hop"),
) -> ExperimentResult:
    """Ablation: how much does the specification labeling scheme matter?

    Section 8.2 concludes that "when labeling large runs, SKL is insensitive
    to the quality of the labeling scheme used to label the specification".
    This sweep labels the same runs with every registered specification
    scheme and reports label length, construction time, query time and the
    context fast-path fraction, which quantifies that insensitivity (and adds
    the tree-cover / chain / 2-hop families from the related work).
    """
    preset = get_scale(scale)
    spec = comparison_specification()
    rng = random.Random(seed)
    labelers = {scheme: SkeletonLabeler(spec, scheme) for scheme in schemes}
    rows: list[dict] = []
    for generated in generate_run_series(spec, preset.run_sizes, seed=seed):
        run = generated.run
        for scheme in schemes:
            measurement, _ = measure_skeleton_scheme(
                labelers[scheme], run, query_count=preset.query_count, rng=rng,
                scheme_label=f"{scheme}+skl",
            )
            rows.append(
                {
                    "run_size": run.vertex_count,
                    "spec_scheme": scheme,
                    "max_label_bits": round(measurement.max_label_bits, 2),
                    "construction_ms": round(measurement.construction_seconds * 1e3, 3),
                    "query_us": round(measurement.query_seconds * 1e6, 4),
                    "fast_path_fraction": round(measurement.fast_path_fraction or 0.0, 3),
                    "spec_index_bits": labelers[scheme].spec_index.total_label_bits(),
                }
            )
    return ExperimentResult(
        experiment_id="ablation-spec-schemes",
        title="Ablation: SKL under different specification labeling schemes",
        rows=rows,
        notes=[
            "run label lengths exclude the per-specification index size, which is "
            "reported separately in spec_index_bits (stored once per specification)",
            "expected outcome: label length and construction time are nearly "
            "identical across schemes; only the query time of traversal-based "
            "skeletons differs, and that difference shrinks as the fast-path "
            "fraction grows with the run size",
        ],
    )


# ----------------------------------------------------------------------
# Batch query throughput (beyond the paper: the repro.engine subsystem)
# ----------------------------------------------------------------------

#: workload sizes of the batch-throughput experiment, per benchmark scale
_THROUGHPUT_PAIR_COUNTS = {"smoke": 5_000, "default": 100_000, "paper": 500_000}

#: per-pair traversal baselines answer this many queries at most (each
#: per-pair BFS costs O(n + m), so the full workload would take minutes)
_BFS_DIRECT_PAIR_LIMIT = 2_000

#: number of distinct sources in the "hot-source" dependency-sweep workload
_HOT_SOURCE_COUNT = 32


def _timed_single_loop(reaches, pairs, repetitions: int = 2) -> tuple[list, float]:
    """Best-of-N timing of the classical per-pair query loop."""
    best = float("inf")
    answers: list = []
    for _ in range(repetitions):
        started = time.perf_counter()
        answers = [reaches(source, target) for source, target in pairs]
        best = min(best, time.perf_counter() - started)
    return answers, best


def _timed_batch(engine, pairs, repetitions: int = 3) -> tuple[list, float]:
    """Best-of-N timing of one batched call, after a small warm-up batch."""
    engine.reaches_batch(pairs[:256])  # touch the kernel outside the timing
    best = float("inf")
    answers: list = []
    for _ in range(repetitions):
        started = time.perf_counter()
        answers = engine.reaches_batch(pairs)
        best = min(best, time.perf_counter() - started)
    return answers, best


def throughput_query_engine(
    scale: str | BenchScale = "default", *, seed: int = 0
) -> ExperimentResult:
    """Queries/second: the batched :class:`~repro.engine.QueryEngine` vs the
    per-pair loop, on the same scheme and the same workload.

    Two workload shapes are measured: ``uniform`` (pairs drawn uniformly at
    random, the Section 8 setting) and ``hot-source`` (many targets per few
    sources — the "which downstream results did this bad input affect"
    dependency sweep, where the engine's CSR-grouped traversal shines).
    The skeleton variants run on the largest run of the scale's sweep; the
    direct TCM / BFS baselines run on a dedicated run capped at the scale's
    direct-scheme limit, like Figures 15-17.  Every batch answer set is
    checked for equality with the per-pair loop before any number is
    reported, and all timings are best-of-N.
    """
    preset = get_scale(scale)
    pair_count = _THROUGHPUT_PAIR_COUNTS.get(preset.name, 20 * preset.query_count)
    spec = comparison_specification()
    rng = random.Random(seed)

    generated = generate_run_with_size(spec, preset.run_sizes[-1], seed=seed)
    run = generated.run
    uniform_pairs = sample_query_pairs(run.vertices(), pair_count, rng)

    direct_size = min(preset.run_sizes[-1], preset.direct_tcm_limit)
    direct_run = generate_run_with_size(spec, direct_size, seed=seed + 1).run
    direct_vertices = direct_run.vertices()
    uniform_direct = sample_query_pairs(direct_vertices, pair_count, rng)
    hot_sources = rng.sample(
        direct_vertices, min(_HOT_SOURCE_COUNT, len(direct_vertices))
    )
    hot_direct = [
        (rng.choice(hot_sources), rng.choice(direct_vertices))
        for _ in range(min(pair_count, _BFS_DIRECT_PAIR_LIMIT))
    ]

    configurations: list[tuple[str, object, list, str]] = [
        ("tcm+skl", SkeletonLabeler(spec, "tcm").label_run(run), uniform_pairs, "uniform"),
        ("bfs+skl", SkeletonLabeler(spec, "bfs").label_run(run), uniform_pairs, "uniform"),
        ("tcm", build_index("tcm", direct_run.graph), uniform_direct, "uniform"),
        ("bfs", build_index("bfs", direct_run.graph), hot_direct, "hot-source"),
    ]

    rows: list[dict] = []
    for scheme, index, pairs, workload in configurations:
        engine = QueryEngine(index)
        single_answers, single_seconds = _timed_single_loop(index.reaches, pairs)
        batch_answers, batch_seconds = _timed_batch(engine, pairs)
        if batch_answers != single_answers:
            raise ReproError(
                f"batch engine disagrees with the per-pair loop on scheme {scheme!r}"
            )
        rows.append(
            {
                "scheme": scheme,
                "workload": workload,
                "kernel": engine.kernel_name,
                "run_size": index.graph.vertex_count
                if hasattr(index, "graph")
                else run.vertex_count,
                "pairs": len(pairs),
                "single_qps": round(len(pairs) / single_seconds)
                if single_seconds > 0
                else None,
                "batch_qps": round(len(pairs) / batch_seconds)
                if batch_seconds > 0
                else None,
                "speedup": round(single_seconds / batch_seconds, 2)
                if batch_seconds > 0
                else None,
            }
        )
    return ExperimentResult(
        experiment_id="throughput-query-engine",
        title="Batch query engine throughput (queries/s, single vs batch)",
        rows=rows,
        notes=[
            "every batch answer set is verified equal to the per-pair loop's",
            "expected outcome: large speedups wherever the per-pair path pays "
            "per-query traversals or big-integer shifts (bfs+skl, direct tcm, "
            "direct bfs); a modest constant-factor win on tcm+skl, whose "
            "per-pair path is already a few comparisons",
            f"scale={preset.name}; engine kernels per row in the 'kernel' column",
        ],
    )


def _timed_handle_batch(engine, source_ids, target_ids, repetitions: int = 3):
    """Best-of-N timing of a pre-interned handle batch, after a warm-up."""
    engine.reaches_many_ids(source_ids[:256], target_ids[:256])
    best = float("inf")
    answers = []
    for _ in range(repetitions):
        started = time.perf_counter()
        answers = engine.reaches_many_ids(source_ids, target_ids)
        best = min(best, time.perf_counter() - started)
    return answers, best


def throughput_handle_path(
    scale: str | BenchScale = "default", *, seed: int = 0
) -> ExperimentResult:
    """Queries/second: pre-interned handle replay vs the object batch path.

    Both paths run the *same* compiled kernel over the *same* workload; the
    only difference is where the object -> handle resolution happens.  The
    object path (``reaches_batch``) re-interns every vertex pair on every
    call — the dict-lookup cost that profiling showed dominating PR 1's
    uniform tcm+skl batches — while the handle path interns the workload
    once (``intern_pairs``) and replays integer arrays through
    ``reaches_many_ids``.  The tcm+skl and direct-tcm rows are the headline
    (their kernels are pure array arithmetic, so resolution was most of the
    batch); the tree-cover / chain / 2-hop rows additionally witness that
    the flattened offset-array kernels compile (no generic fallback) on the
    schemes that used to fall back to pure python.
    """
    preset = get_scale(scale)
    pair_count = _THROUGHPUT_PAIR_COUNTS.get(preset.name, 20 * preset.query_count)
    spec = comparison_specification()
    rng = random.Random(seed)

    run = generate_run_with_size(spec, preset.run_sizes[-1], seed=seed).run
    run_pairs = sample_query_pairs(run.vertices(), pair_count, rng)

    direct_size = min(preset.run_sizes[-1], preset.direct_tcm_limit)
    direct_run = generate_run_with_size(spec, direct_size, seed=seed + 1).run
    direct_pairs = sample_query_pairs(direct_run.vertices(), pair_count, rng)

    spec_pairs = sample_query_pairs(spec.graph.vertices(), pair_count, rng)

    configurations: list[tuple[str, object, list]] = [
        ("tcm+skl", SkeletonLabeler(spec, "tcm").label_run(run), run_pairs),
        ("tcm", build_index("tcm", direct_run.graph), direct_pairs),
        ("tree-cover", build_index("tree-cover", spec.graph), spec_pairs),
        ("chain", build_index("chain", spec.graph), spec_pairs),
        ("2-hop", build_index("2-hop", spec.graph), spec_pairs),
    ]

    rows: list[dict] = []
    for scheme, index, pairs in configurations:
        engine = QueryEngine(index)
        object_answers, object_seconds = _timed_batch(engine, pairs)
        source_ids, target_ids = engine.intern_pairs(pairs)
        handle_answers, handle_seconds = _timed_handle_batch(
            engine, source_ids, target_ids
        )
        if [bool(a) for a in handle_answers] != [bool(a) for a in object_answers]:
            raise ReproError(
                f"handle path disagrees with the object path on scheme {scheme!r}"
            )
        rows.append(
            {
                "scheme": scheme,
                "kernel": engine.kernel_name,
                "pairs": len(pairs),
                "object_qps": round(len(pairs) / object_seconds)
                if object_seconds > 0
                else None,
                "handle_qps": round(len(pairs) / handle_seconds)
                if handle_seconds > 0
                else None,
                "speedup": round(object_seconds / handle_seconds, 2)
                if handle_seconds > 0
                else None,
            }
        )
    return ExperimentResult(
        experiment_id="throughput-handle-path",
        title="Interned handle replay vs object batch path (queries/s)",
        rows=rows,
        notes=[
            "every handle answer set is verified equal to the object path's",
            "object path re-interns each vertex pair per call; handle path "
            "interns once and replays integer handle arrays",
            "expected outcome: large speedups on kernels that are pure array "
            "arithmetic (tcm+skl, tcm), where per-call resolution dominated",
            f"scale={preset.name}; engine kernels per row in the 'kernel' column",
        ],
    )


#: cross-run sweep workload per benchmark scale: (stored runs, vertices/run)
_CROSS_RUN_SETTINGS = {
    "smoke": (6, 500),
    "default": (12, 6_400),
    "paper": (16, 12_800),
}


def _per_run_engine_sweep(store, run_ids, anchor, *, downstream=True):
    """The baseline a user writes today: one cached engine per swept run."""
    results = {}
    for run_id in run_ids:
        engine = store.query_engine(run_id)
        interner = engine.interner
        anchor_id = interner.id_of(anchor)
        candidates = [i for i in range(len(interner)) if i != anchor_id]
        anchors = [anchor_id] * len(candidates)
        if downstream:
            answers = engine.reaches_many_ids(anchors, candidates)
        else:
            answers = engine.reaches_many_ids(candidates, anchors)
        vertex_at = interner.vertex_at
        results[run_id] = [
            vertex_at(candidate)
            for candidate, answer in zip(candidates, answers)
            if answer
        ]
    return results


def throughput_cross_run(
    scale: str | BenchScale = "default", *, seed: int = 0
) -> ExperimentResult:
    """Cross-run dependency sweeps: the session's shared-spec-kernel path vs
    a per-run ``store.query_engine`` loop.

    Both paths answer the same question — everything downstream of one
    anchor execution, in **every** stored run of one specification — from a
    cold store.  The per-run loop compiles a full engine per run (label
    objects, interner, handle tables, kernel arrays); the session's
    :class:`~repro.api.CrossRunQuery` plan compiles the per-specification
    fall-through kernel **once** and streams each run's raw label columns
    through it, so the per-run cost collapses to one SQL fetch plus a
    vectorized anchored sweep.  The headline row is a non-TCM stable spec
    scheme (``tree-cover``), whose dense spec matrix costs ``nG²``
    predicate evaluations — the cost the shared kernel amortizes across the
    whole sweep.  Result sets are verified equal before any number is
    reported; timings are best-of-N from a fresh store each.
    """
    import tempfile
    from pathlib import Path as _Path

    from repro.api.queries import CrossRunQuery
    from repro.api.session import ProvenanceSession
    from repro.storage.store import ProvenanceStore

    preset = get_scale(scale)
    run_count, run_size = _CROSS_RUN_SETTINGS.get(preset.name, (6, 500))
    spec = comparison_specification()
    anchor_module = min(
        (v for v in spec.graph.vertices() if not spec.graph.predecessors(v)),
        default=spec.graph.vertices()[0],
    )
    anchor = (anchor_module, 1)
    generated_runs = [
        generate_run_with_size(spec, run_size, seed=seed + i, name=f"sweep-run-{i}").run
        for i in range(run_count)
    ]
    base_dir = _Path(tempfile.mkdtemp(prefix="repro-cross-run-"))

    rows: list[dict] = []
    repetitions = 3
    for scheme in ("tree-cover", "tcm", "bfs"):
        database = base_dir / f"{scheme}.db"
        labeler = SkeletonLabeler(spec, scheme)
        with ProvenanceStore(database) as store:
            run_ids = [
                store.add_labeled_run(labeler.label_run(run))
                for run in generated_runs
            ]

        loop_seconds = float("inf")
        loop_results = None
        for _ in range(repetitions):
            with ProvenanceStore(database) as store:  # cold caches each rep
                started = time.perf_counter()
                loop_results = _per_run_engine_sweep(store, run_ids, anchor)
                loop_seconds = min(loop_seconds, time.perf_counter() - started)

        query = CrossRunQuery(spec.name, anchor, "downstream")
        sweep_seconds = float("inf")
        sweep_result = None
        for _ in range(repetitions):
            with ProvenanceStore(database) as store:
                session = ProvenanceSession(store)
                started = time.perf_counter()
                sweep_result = session.run(query)
                sweep_seconds = min(sweep_seconds, time.perf_counter() - started)

        for run_id in run_ids:
            if sorted(sweep_result.per_run[run_id]) != sorted(loop_results[run_id]):
                raise ReproError(
                    f"cross-run sweep disagrees with the per-run engine loop "
                    f"on scheme {scheme!r}, run {run_id}"
                )
        total_vertices = sum(run.vertex_count for run in generated_runs)
        rows.append(
            {
                "spec_scheme": scheme,
                "runs": run_count,
                "vertices_per_run": generated_runs[0].vertex_count,
                "affected": sweep_result.affected_count,
                "loop_ms": round(loop_seconds * 1e3, 3),
                "sweep_ms": round(sweep_seconds * 1e3, 3),
                "loop_vps": round(total_vertices / loop_seconds)
                if loop_seconds > 0
                else None,
                "sweep_vps": round(total_vertices / sweep_seconds)
                if sweep_seconds > 0
                else None,
                "speedup": round(loop_seconds / sweep_seconds, 2)
                if sweep_seconds > 0
                else None,
            }
        )
    return ExperimentResult(
        experiment_id="throughput-cross-run",
        title="Cross-run dependency sweeps: shared spec kernel vs per-run engines",
        rows=rows,
        notes=[
            "every sweep result set is verified equal to the per-run loop's",
            "both paths start from a cold store; loop_vps/sweep_vps count "
            "candidate vertices swept per second across all runs",
            "expected outcome: the largest win on non-TCM stable spec schemes "
            "(tree-cover), whose dense nG^2 fall-through matrix the shared "
            "kernel compiles once instead of once per run; tcm/bfs still win "
            "by streaming raw label columns instead of building per-run label "
            "objects, interners and kernels",
            f"scale={preset.name}; {run_count} runs per scheme",
        ],
    )


#: parallel cross-run workload per scale: (runs, vertices/run, batch pairs,
#: online appends)
_PARALLEL_CROSS_RUN_SETTINGS = {
    "smoke": (8, 500, 2_000, 150),
    "default": (16, 6_400, 20_000, 1_200),
    "paper": (24, 12_800, 100_000, 4_000),
}

#: pool size the parallel rows are measured with (fixed so the row identity
#: is stable across hosts; the auto-sized default is exercised by tests)
PARALLEL_BENCH_WORKERS = 4


def _common_executions(store, run_ids):
    """Executions present in every stored run (the cross-batch domain)."""
    common = None
    for arrays in store.run_label_arrays_many(run_ids).values():
        executions = set(arrays.executions)
        common = executions if common is None else (common & executions)
    return sorted(common or ())


def _timed_cold_store(database, operation, repetitions: int = 3):
    """Best-of-N timing of *operation* against a freshly opened store."""
    from repro.storage.store import ProvenanceStore

    best = float("inf")
    outcome = None
    for _ in range(repetitions):
        with ProvenanceStore(database) as store:
            started = time.perf_counter()
            outcome = operation(store)
            best = min(best, time.perf_counter() - started)
    return outcome, best


def _online_append_measurement(spec, scheme: str, appends: int):
    """Append-heavy microworkload: per-event engine rebuild vs incremental.

    Both sides replay the same event stream — one execution appended into
    the (already nonempty) root scope, then one point query — through the
    session's online target.  The baseline rebuilds a per-append
    :class:`~repro.engine.QueryEngine` over a fresh query view, which is
    what the session did before the incremental kernel; the optimized side
    keeps one :class:`~repro.engine.online.OnlineKernel` and extends its
    label arrays in place.
    """
    from repro.engine import QueryEngine
    from repro.engine.online import OnlineKernel
    from repro.skeleton.online import OnlineRun
    from repro.workflow.execution import owned_vertices
    from repro.workflow.hierarchy import ROOT_NAME

    module = min(owned_vertices(spec)[ROOT_NAME])
    labeler = SkeletonLabeler(spec, scheme)

    def baseline() -> tuple[list, float]:
        online = OnlineRun(labeler, name="bench-online-baseline")
        root = online.root_scope
        first = root.execute(module)
        answers = []
        started = time.perf_counter()
        for _ in range(appends):
            vertex = root.execute(module)
            engine = QueryEngine(online.query_view())
            answers.append(engine.reaches(first, vertex))
        return answers, time.perf_counter() - started

    def incremental() -> tuple[list, float]:
        online = OnlineRun(labeler, name="bench-online-incremental")
        root = online.root_scope
        first = root.execute(module)
        kernel = OnlineKernel(online)
        answers = []
        started = time.perf_counter()
        for _ in range(appends):
            vertex = root.execute(module)
            answers.append(kernel.reaches(first, vertex))
        return answers, time.perf_counter() - started

    baseline_answers, baseline_seconds = baseline()
    incremental_answers, incremental_seconds = incremental()
    if [bool(a) for a in incremental_answers] != [bool(a) for a in baseline_answers]:
        raise ReproError(
            "incremental online kernel disagrees with the per-append rebuild"
        )
    return baseline_seconds, incremental_seconds


def throughput_parallel_cross_run(
    scale: str | BenchScale = "default", *, seed: int = 0
) -> ExperimentResult:
    """Parallel cross-run execution vs the sequential PR 3 paths.

    Three workloads share one file-backed store per scheme:

    * ``sweep`` — the PR 3 sequential streaming sweep (``workers=1``)
      against the parallel executor in both pool modes (thread, process);
      every parallel result set is verified bit-identical to the
      sequential one before any number is reported;
    * ``cross-batch`` — the same pair workload asked of every run.  The
      baseline is what PR 3 offered for that question: one per-run
      session ``BatchQuery`` through the store's cached engines.  The
      optimized side is the new ``CrossRunBatchQuery`` streaming path;
    * ``online-append`` — the incremental ``OnlineRun`` kernel against the
      per-append engine rebuild it replaces (satellite of the same PR).

    Worker counts are pinned at :data:`PARALLEL_BENCH_WORKERS` so row
    identities stay comparable across hosts; the thread pool only pays off
    with real cores, so single-core hosts legitimately record sub-1x
    speedups on the pool rows (the production executor auto-selects the
    sequential path there — see
    :func:`repro.engine.parallel.resolve_workers`).
    """
    import tempfile
    from pathlib import Path as _Path

    from repro.api.queries import BatchQuery as _BatchQuery
    from repro.api.queries import CrossRunBatchQuery, CrossRunQuery
    from repro.api.session import ProvenanceSession
    from repro.engine.parallel import CrossRunExecutor
    from repro.storage.store import ProvenanceStore

    preset = get_scale(scale)
    run_count, run_size, pair_count, appends = _PARALLEL_CROSS_RUN_SETTINGS.get(
        preset.name, _PARALLEL_CROSS_RUN_SETTINGS["smoke"]
    )
    spec = comparison_specification()
    anchor_module = min(
        (v for v in spec.graph.vertices() if not spec.graph.predecessors(v)),
        default=spec.graph.vertices()[0],
    )
    anchor = (anchor_module, 1)
    rng = random.Random(seed)
    generated_runs = [
        generate_run_with_size(
            spec, run_size, seed=seed + i, name=f"parallel-run-{i}"
        ).run
        for i in range(run_count)
    ]
    total_vertices = sum(run.vertex_count for run in generated_runs)
    base_dir = _Path(tempfile.mkdtemp(prefix="repro-parallel-cross-run-"))

    rows: list[dict] = []
    for scheme in ("tree-cover", "tcm"):
        database = base_dir / f"{scheme}.db"
        labeler = SkeletonLabeler(spec, scheme)
        with ProvenanceStore(database) as store:
            run_ids = [
                store.add_labeled_run(labeler.label_run(run))
                for run in generated_runs
            ]
            common = _common_executions(store, run_ids)
        pairs = [
            (rng.choice(common), rng.choice(common)) for _ in range(pair_count)
        ]

        # -- sweep: sequential PR 3 path vs the parallel executor ---------
        sequential_sweep, sequential_seconds = _timed_cold_store(
            database,
            lambda store: CrossRunExecutor(store, workers=1).sweep(
                spec.name, anchor
            ),
        )
        for mode in ("thread", "process"):
            parallel_sweep, parallel_seconds = _timed_cold_store(
                database,
                lambda store: CrossRunExecutor(
                    store, workers=PARALLEL_BENCH_WORKERS, mode=mode
                ).sweep(spec.name, anchor),
            )
            if parallel_sweep != sequential_sweep:
                raise ReproError(
                    f"parallel {mode} sweep disagrees with the sequential "
                    f"path on scheme {scheme!r}"
                )
            rows.append(
                {
                    "workload": "sweep",
                    "spec_scheme": scheme,
                    "mode": mode,
                    "runs": run_count,
                    "vertices_per_run": generated_runs[0].vertex_count,
                    "workers": PARALLEL_BENCH_WORKERS,
                    "baseline_ms": round(sequential_seconds * 1e3, 3),
                    "optimized_ms": round(parallel_seconds * 1e3, 3),
                    "swept_vps": round(total_vertices / parallel_seconds)
                    if parallel_seconds > 0
                    else None,
                    "speedup": round(sequential_seconds / parallel_seconds, 2)
                    if parallel_seconds > 0
                    else None,
                }
            )

        # -- cross-batch: per-run engine loop vs the streaming batch ------
        def engine_loop(store):
            session = ProvenanceSession(store)
            return {
                run_id: [
                    bool(answer)
                    for answer in session.run(
                        _BatchQuery(pairs=pairs, run_id=run_id)
                    )
                ]
                for run_id in run_ids
            }

        def cross_batch(store):
            result = ProvenanceSession(store).run(
                CrossRunBatchQuery(spec.name, pairs)
            )
            return result.per_run, result.skipped_runs

        loop_answers, loop_seconds = _timed_cold_store(database, engine_loop)
        (batch_answers, batch_skipped), batch_seconds = _timed_cold_store(
            database, cross_batch
        )
        if batch_skipped or batch_answers != loop_answers:
            raise ReproError(
                f"cross-run batch disagrees with the per-run engine loop "
                f"on scheme {scheme!r}"
            )
        rows.append(
            {
                "workload": "cross-batch",
                "spec_scheme": scheme,
                "mode": "auto",
                "runs": run_count,
                "vertices_per_run": generated_runs[0].vertex_count,
                "pairs": pair_count,
                "baseline_ms": round(loop_seconds * 1e3, 3),
                "optimized_ms": round(batch_seconds * 1e3, 3),
                "speedup": round(loop_seconds / batch_seconds, 2)
                if batch_seconds > 0
                else None,
            }
        )

    # -- online append microworkload (incremental kernel satellite) --------
    baseline_seconds, incremental_seconds = _online_append_measurement(
        spec, "tcm", appends
    )
    rows.append(
        {
            "workload": "online-append",
            "spec_scheme": "tcm",
            "mode": "incremental",
            "runs": 1,
            "appends": appends,
            "baseline_ms": round(baseline_seconds * 1e3, 3),
            "optimized_ms": round(incremental_seconds * 1e3, 3),
            "speedup": round(baseline_seconds / incremental_seconds, 2)
            if incremental_seconds > 0
            else None,
        }
    )
    return ExperimentResult(
        experiment_id="throughput-parallel-cross-run",
        title="Parallel cross-run execution vs the sequential PR 3 paths",
        rows=rows,
        columns=[
            "workload",
            "spec_scheme",
            "mode",
            "runs",
            "vertices_per_run",
            "pairs",
            "appends",
            "workers",
            "baseline_ms",
            "optimized_ms",
            "swept_vps",
            "speedup",
        ],
        notes=[
            "every parallel/optimized result set is verified bit-identical "
            "to its sequential baseline before any number is reported",
            "sweep rows: the PR 3 sequential streaming sweep vs the chunked "
            "parallel executor (workers pinned at "
            f"{PARALLEL_BENCH_WORKERS}); pool rows legitimately dip below "
            "1x on single-core hosts, where the production executor "
            "auto-selects the sequential path instead",
            "cross-batch rows: the same pairs asked of every run — per-run "
            "session BatchQuery loop (full cached engine per run) vs the "
            "shared-spec-kernel streaming CrossRunBatchQuery",
            "online-append row: per-append QueryEngine rebuild vs the "
            "incremental OnlineKernel (in-place array extension)",
            f"scale={preset.name}; cpu_count={os.cpu_count()}",
        ],
    )


#: sharded ingest workload per scale: (specifications, runs per spec,
#: vertices per run, shard count, plan re-executions for the pool-reuse row)
_SHARDED_INGEST_SETTINGS = {
    "smoke": (4, 3, 400, 4, 6),
    "default": (8, 4, 2_500, 4, 10),
    "paper": (12, 6, 8_000, 8, 12),
}


def throughput_sharded_ingest(
    scale: str | BenchScale = "default", *, seed: int = 0
) -> ExperimentResult:
    """Sharded parallel ingest vs the single-file store's write path.

    Two workloads:

    * ``ingest`` — the same pre-labeled runs (several specifications, so
      the stable spec-name hash spreads them across shards) stored through
      the single-file store's per-run ``add_labeled_run`` loop (one
      transaction per run, one writer for everything) vs the sharded
      store's :meth:`~repro.storage.sharded.ShardedProvenanceStore.add_labeled_runs`
      (one batched transaction per shard, shards committing concurrently
      on the persistent worker pool).  Labeling happens outside the timed
      region — this measures the **write path**.  Before any number is
      reported, every specification's cross-run sweep is verified
      bit-identical between the two stores.
    * ``sweep-pool-reuse`` — one compiled cross-run plan re-executed many
      times: a fresh ephemeral worker pool per execution (the pre-PR 5
      executor) vs the store-owned persistent pool.  Thread pools are
      cheap to start, so the structural win is modest there; the process
      row (numpy hosts only) additionally skips re-pickling the dense
      spec matrices and is where persistence pays hardest.

    Wall-clock parallel wins need real cores: single-core hosts
    legitimately record thin ``ingest`` ratios (the batched-transaction
    win remains), and CI gates accordingly (see
    ``benchmarks/bench_throughput_sharded_ingest.py``).
    """
    import tempfile
    from pathlib import Path as _Path

    from repro.engine.parallel import CrossRunExecutor
    from repro.storage.sharded import ShardedProvenanceStore
    from repro.storage.store import ProvenanceStore

    preset = get_scale(scale)
    spec_count, runs_per_spec, run_size, shards, repeats = (
        _SHARDED_INGEST_SETTINGS.get(preset.name, _SHARDED_INGEST_SETTINGS["smoke"])
    )
    specs = [
        generate_specification(
            SyntheticSpecConfig(
                n_modules=60,
                n_edges=120,
                hierarchy_size=8,
                hierarchy_depth=3,
                name=f"sharded-ingest-{index}",
                seed=100 + index,
            )
        )
        for index in range(spec_count)
    ]
    labelers = {spec.name: SkeletonLabeler(spec, "tcm") for spec in specs}
    labeled = []
    # interleave the specifications so every shard's sub-batch stays busy
    for round_index in range(runs_per_spec):
        for spec in specs:
            run = generate_run_with_size(
                spec, run_size, seed=seed + round_index, name=f"ingest-{round_index}"
            ).run
            labeled.append(labelers[spec.name].label_run(run))
    label_rows = sum(item.run.vertex_count for item in labeled)
    base_dir = _Path(tempfile.mkdtemp(prefix="repro-sharded-ingest-"))

    def timed_single(repetition: int):
        store = ProvenanceStore(base_dir / f"single-{repetition}.db")
        started = time.perf_counter()
        for item in labeled:
            store.add_labeled_run(item)
        return store, time.perf_counter() - started

    def timed_sharded(repetition: int):
        store = ShardedProvenanceStore(base_dir / f"shards-{repetition}", shards)
        started = time.perf_counter()
        store.add_labeled_runs(labeled)
        return store, time.perf_counter() - started

    single_seconds = sharded_seconds = float("inf")
    single_store = sharded_store = None
    for repetition in range(3):
        store, seconds = timed_single(repetition)
        single_seconds = min(single_seconds, seconds)
        if single_store is not None:
            single_store.close()
        single_store = store
        store, seconds = timed_sharded(repetition)
        sharded_seconds = min(sharded_seconds, seconds)
        if sharded_store is not None:
            sharded_store.close()
        sharded_store = store

    # correctness gate: every spec's sweep must be bit-identical across
    # layouts (run ids differ by construction; insertion order per spec
    # does not, so the ordered answer lists must match exactly)
    anchors = {}
    for spec in specs:
        anchor_module = min(
            (v for v in spec.graph.vertices() if not spec.graph.predecessors(v)),
            default=spec.graph.vertices()[0],
        )
        anchors[spec.name] = (anchor_module, 1)
        single_sweep, single_skipped = CrossRunExecutor(
            single_store, workers=1
        ).sweep(spec.name, anchors[spec.name])
        sharded_sweep, sharded_skipped = CrossRunExecutor(
            sharded_store, workers=2
        ).sweep(spec.name, anchors[spec.name])
        if (
            list(single_sweep.values()) != list(sharded_sweep.values())
            or len(single_skipped) != len(sharded_skipped)
        ):
            raise ReproError(
                f"sharded sweep disagrees with the single-file store on "
                f"specification {spec.name!r}"
            )

    rows: list[dict] = [
        {
            "workload": "ingest",
            "mode": "thread",
            "shards": shards,
            "pool": "per-shard-batch",
            "runs": len(labeled),
            "specs": spec_count,
            "vertices_per_run": run_size,
            "label_rows": label_rows,
            "baseline_ms": round(single_seconds * 1e3, 3),
            "optimized_ms": round(sharded_seconds * 1e3, 3),
            "rows_per_s": round(label_rows / sharded_seconds)
            if sharded_seconds > 0
            else None,
            "speedup": round(single_seconds / sharded_seconds, 2)
            if sharded_seconds > 0
            else None,
        }
    ]

    # -- pool reuse: one compiled plan re-executed many times -------------
    from repro.api.queries import CrossRunQuery as _CrossRunQuery

    from repro.engine.kernels import HAS_NUMPY

    spec = specs[0]
    anchor = anchors[spec.name]
    pool_modes = ["thread"]
    if HAS_NUMPY:
        pool_modes.append("process")
    for mode in pool_modes:
        executions = repeats if mode == "thread" else max(3, repeats // 3)
        ephemeral = CrossRunExecutor(
            sharded_store, workers=2, mode=mode, pool=False
        )
        started = time.perf_counter()
        for _ in range(executions):
            ephemeral_answer = ephemeral.sweep(spec.name, anchor)
        ephemeral_seconds = time.perf_counter() - started
        persistent = CrossRunExecutor(sharded_store, workers=2, mode=mode)
        persistent.sweep(spec.name, anchor)  # warm the pool + payload cache
        started = time.perf_counter()
        for _ in range(executions):
            persistent_answer = persistent.sweep(spec.name, anchor)
        persistent_seconds = time.perf_counter() - started
        if persistent_answer != ephemeral_answer:
            raise ReproError(
                f"persistent-pool {mode} sweep disagrees with the "
                "ephemeral-pool executor"
            )
        rows.append(
            {
                "workload": "sweep-pool-reuse",
                "mode": mode,
                "shards": shards,
                "pool": "persistent",
                "runs": runs_per_spec,
                "vertices_per_run": run_size,
                "repeats": executions,
                "workers": 2,
                "baseline_ms": round(ephemeral_seconds * 1e3, 3),
                "optimized_ms": round(persistent_seconds * 1e3, 3),
                "speedup": round(ephemeral_seconds / persistent_seconds, 2)
                if persistent_seconds > 0
                else None,
            }
        )
    single_store.close()
    sharded_store.close()
    return ExperimentResult(
        experiment_id="throughput-sharded-ingest",
        title="Sharded parallel ingest vs the single-file write path",
        rows=rows,
        columns=[
            "workload",
            "mode",
            "shards",
            "pool",
            "runs",
            "specs",
            "vertices_per_run",
            "label_rows",
            "repeats",
            "workers",
            "baseline_ms",
            "optimized_ms",
            "rows_per_s",
            "speedup",
        ],
        notes=[
            "ingest row: per-run add_labeled_run transactions on one SQLite "
            "file vs one batched transaction per shard, shards committing "
            "concurrently over the store's persistent worker pool; labeling "
            "is excluded from both timed regions",
            "every specification's cross-run sweep is verified bit-identical "
            "between the two layouts before any number is reported",
            "sweep-pool-reuse rows: one compiled cross-run sweep re-executed "
            "per measurement — fresh worker pool per execution vs the "
            "store-owned persistent pool (the process row additionally "
            "reuses the pickled dense spec matrices)",
            "parallel ingest needs real cores; single-core hosts keep only "
            "the batched-transaction win and record honestly thin ratios",
            f"scale={preset.name}; cpu_count={os.cpu_count()}",
        ],
    )


#: rebalance workload per scale: (hot runs, cold runs, churn runs,
#: delete/re-ingest passes over the churn runs, vertices per run, shards,
#: timed sweeps per leg)
_SHARD_REBALANCE_SETTINGS = {
    "smoke": (16, 2, 2, 4, 400, 4, 6),
    "default": (32, 4, 4, 6, 2_000, 4, 10),
    "paper": (48, 6, 6, 8, 6_000, 8, 12),
}


def _colliding_spec_name(prefix: str, shard: int, shards: int) -> str:
    """A deterministic spec name the CRC-32 hash places on *shard*."""
    from repro.storage.sharded import shard_of_spec as _shard_of_spec

    for index in range(10_000):
        candidate = f"{prefix}-{index}"
        if _shard_of_spec(candidate, shards) == shard:
            return candidate
    raise ReproError(
        f"no {prefix!r} candidate hashes onto shard {shard}"
    )  # pragma: no cover - 10k candidates over <= 64 shards cannot all miss


def throughput_shard_rebalance(
    scale: str | BenchScale = "default", *, seed: int = 0
) -> ExperimentResult:
    """Hot-spec sweeps before vs after ``rebalance`` + ``replicate``.

    The skewed workload the routing subsystem exists for: one **hot**
    specification owns ~80% of the stored runs and shares its shard with
    a **cold** specification whose ingest keeps churning.  A long-lived
    reader snapshot pins the shared shard's WAL (auto-checkpoint cannot
    pass a live reader), so every pre-rebalance sweep resolves its pages
    through a churn-sized WAL over a b-tree interleaved with the cold
    spec's rows.

    The maintenance path then moves the hot spec onto the least-loaded
    shard (``rebalance`` checkpoints both shards) and attaches two read
    replicas (journal-less snapshot files the cross-run executor
    round-robins its workers over).  The post legs re-run the same
    sweeps.  Before any number is reported:

    * the hot and cold sweeps are verified **bit-identical** to a
      never-rebalanced single-file store holding the same runs —
      before the migration, after a *crash-injected* migration attempt
      (the ``routing.migrate`` fault point kills it between copy and
      flip, exercising in-process recovery), and after the real
      rebalance + replication;
    * a second store is opened mid-journal (simulated hard crash) in the
      chaos tests, not here — this experiment measures the happy path.

    Wall-clock replica wins need real cores; single-core hosts keep the
    checkpointed-shard and clustering wins, so CI gates the smoke scale
    with a thinner bar (see ``benchmarks/bench_throughput_shard_rebalance.py``).
    """
    import sqlite3 as _sqlite3
    import tempfile
    from pathlib import Path as _Path

    from repro.engine.parallel import CrossRunExecutor
    from repro.exceptions import ReproError as _ReproError
    from repro.faults import FaultPlan, FaultRule
    from repro.storage.sharded import ShardedProvenanceStore, shard_of_spec
    from repro.storage.store import ProvenanceStore

    preset = get_scale(scale)
    hot_runs, cold_runs, churn_runs, churn_passes, run_size, shards, sweeps = (
        _SHARD_REBALANCE_SETTINGS.get(
            preset.name, _SHARD_REBALANCE_SETTINGS["smoke"]
        )
    )
    hot_name = "rebalance-hot"
    hot_shard = shard_of_spec(hot_name, shards)
    # the cold spec is chosen to collide with the hot one, so its churn
    # lands in the shard the hot sweeps read
    cold_name = _colliding_spec_name("rebalance-cold", hot_shard, shards)
    specs = {
        name: generate_specification(
            SyntheticSpecConfig(
                n_modules=60,
                n_edges=120,
                hierarchy_size=8,
                hierarchy_depth=3,
                name=name,
                seed=200 + index,
            )
        )
        for index, name in enumerate((hot_name, cold_name))
    }
    labelers = {name: SkeletonLabeler(spec, "tcm") for name, spec in specs.items()}
    hot_labeled = [
        labelers[hot_name].label_run(
            generate_run_with_size(
                specs[hot_name], run_size, seed=seed + index, name=f"hot-{index}"
            ).run
        )
        for index in range(hot_runs)
    ]
    cold_labeled = [
        labelers[cold_name].label_run(
            generate_run_with_size(
                specs[cold_name], run_size, seed=seed + index, name=f"cold-{index}"
            ).run
        )
        for index in range(cold_runs)
    ]
    churn_labeled = [
        labelers[cold_name].label_run(
            generate_run_with_size(
                specs[cold_name], run_size, seed=seed + 1_000 + index,
                name=f"churn-{index}",
            ).run
        )
        for index in range(churn_runs)
    ]
    anchors = {}
    for name, spec in specs.items():
        anchors[name] = (
            min(
                (v for v in spec.graph.vertices() if not spec.graph.predecessors(v)),
                default=spec.graph.vertices()[0],
            ),
            1,
        )

    base_dir = _Path(tempfile.mkdtemp(prefix="repro-shard-rebalance-"))
    # the never-rebalanced reference: one SQLite file, same runs, same order
    reference = ProvenanceStore(base_dir / "reference.db")
    for item in [*hot_labeled, *cold_labeled, *churn_labeled]:
        reference.add_labeled_run(item)
    reference_answers = {
        name: CrossRunExecutor(reference, workers=1).sweep(name, anchors[name])
        for name in specs
    }
    reference.close()

    store = ShardedProvenanceStore(base_dir / "sharded", shards)
    store.add_labeled_runs([*hot_labeled, *cold_labeled])
    executor = CrossRunExecutor(store, workers=2)

    def verify(stage: str) -> None:
        for name in specs:
            per_run, skipped = executor.sweep(name, anchors[name])
            ref_per_run, ref_skipped = reference_answers[name]
            if (
                list(per_run.values()) != list(ref_per_run.values())
                or len(skipped) != len(ref_skipped)
            ):
                raise ReproError(
                    f"{stage}: sharded sweep of {name!r} disagrees with the "
                    "never-rebalanced single-file store"
                )

    def timed_sweeps() -> float:
        """Best-of-3 timing of one *sweeps*-deep hot-spec sweep leg."""
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            for _ in range(sweeps):
                executor.sweep(hot_name, anchors[hot_name])
            best = min(best, time.perf_counter() - started)
        return best

    # pin a reader snapshot on the shared shard, then churn: the WAL the
    # pre-rebalance sweeps must resolve through cannot checkpoint past it
    pin = _sqlite3.connect(str(store._shard_paths[hot_shard]))
    try:
        pin.execute("BEGIN")
        pin.execute("SELECT COUNT(*) FROM runs").fetchone()
        churn_ids = store.add_labeled_runs(churn_labeled)
        # churn passes: each deletes and re-ingests the cold spec's churn
        # runs (full row rewrites — a same-content update_run_labels is a
        # delta no-op), growing the pinned WAL the pre-rebalance sweeps
        # must resolve their pages through
        for _ in range(churn_passes):
            for index, item in enumerate(churn_labeled):
                store.delete_run(churn_ids[index])
                churn_ids[index] = store.add_labeled_runs([item])[0]
        verify("pre-rebalance")
        executor.sweep(hot_name, anchors[hot_name])  # warm pools + kernels
        pre_seconds = timed_sweeps()

        # a crash-injected migration attempt: killed between copy and flip,
        # recovered in process — answers must not wobble
        crash = FaultPlan([FaultRule("routing.migrate", "crash", once=True)])
        try:
            with crash.active():
                store.rebalance(hot_name)
            raise ReproError(
                "the injected routing.migrate crash did not fire"
            )  # pragma: no cover - the rule always fires once
        except _ReproError:
            pass
        if store._routed_shard_of_spec(hot_name) != hot_shard:
            raise ReproError(
                "the crashed migration left a routing override behind"
            )  # pragma: no cover - recovery rolls the catalog back
        verify("mid-migration-crash")

        summary = store.rebalance(hot_name)
        replicas = store.replicate(hot_name, 2)
        verify("post-rebalance")
        executor.sweep(hot_name, anchors[hot_name])  # re-warm on the new shard
        post_seconds = timed_sweeps()
    finally:
        pin.close()
    verify("final")
    skew = store.cache_stats()["shards"]
    store.close()

    per_sweep_pre = pre_seconds / sweeps
    per_sweep_post = post_seconds / sweeps
    rows = [
        {
            "workload": "sweep-hot-spec",
            "mode": "thread",
            "shards": shards,
            "runs": hot_runs + cold_runs + churn_runs,
            "hot_runs": hot_runs,
            "vertices_per_run": run_size,
            "workers": 2,
            "repeats": sweeps,
            "rebalanced": True,
            "replicas": len(replicas),
            "moved_runs": summary["moved_runs"],
            "baseline_ms": round(per_sweep_pre * 1e3, 3),
            "optimized_ms": round(per_sweep_post * 1e3, 3),
            "sweeps_per_s": round(1.0 / per_sweep_post, 2)
            if per_sweep_post > 0
            else None,
            "speedup": round(pre_seconds / post_seconds, 2)
            if post_seconds > 0
            else None,
        }
    ]
    return ExperimentResult(
        experiment_id="throughput-shard-rebalance",
        title="Hot-spec sweeps before vs after rebalance + read replicas",
        rows=rows,
        columns=[
            "workload",
            "mode",
            "shards",
            "runs",
            "hot_runs",
            "vertices_per_run",
            "workers",
            "repeats",
            "rebalanced",
            "replicas",
            "moved_runs",
            "baseline_ms",
            "optimized_ms",
            "sweeps_per_s",
            "speedup",
        ],
        notes=[
            "skewed workload: the hot spec owns "
            f"{hot_runs}/{hot_runs + cold_runs + churn_runs} runs and shares "
            "its shard with the churning cold spec; a pinned reader snapshot "
            "keeps the shared shard's WAL from checkpointing",
            "baseline leg: cross-run sweeps against the shared shard "
            "(churn-sized WAL, interleaved b-tree); optimized leg: the same "
            "sweeps after rebalance (dedicated checkpointed shard) + 2 read "
            "replicas the executor round-robins its workers over",
            "answers are verified bit-identical to a never-rebalanced "
            "single-file store before the migration, after a crash-injected "
            "migration attempt (routing.migrate, recovered in process) and "
            "after the real rebalance + replication",
            "replica fan-out needs real cores; single-core hosts keep the "
            "checkpointed-shard and clustering wins and gate thinner",
            f"scale={preset.name}; cpu_count={os.cpu_count()}",
        ],
    )


#: server workload per scale: (runs, vertices per run, replay pairs,
#: reader clients, requests per reader, writer ingest runs)
_SERVER_SETTINGS = {
    "smoke": (2, 300, 48, 2, 24, 2),
    "default": (3, 1_200, 192, 4, 80, 3),
    "paper": (4, 4_000, 512, 8, 200, 4),
}

#: the sustained workload's per-reader request mix (see _reader_worker)
_SERVER_OP_MIX = "6pt/1batch/1sweep"


def throughput_server(
    scale: str | BenchScale = "default", *, seed: int = 0
) -> ExperimentResult:
    """The network daemon under load: batch replay and sustained mixed QPS.

    Four workloads, all over a loopback TCP connection to a
    :class:`~repro.server.daemon.ProvenanceServer` fronting a sharded
    store:

    * ``batch-replay`` — the same pairs asked as one point-query round
      trip each vs a single handle-native batch frame (whose body is the
      binary pair workload, replayed by the server with zero parsing).
      This is the protocol's headline structural win: N round trips
      collapse to one, so the ratio is gated in the committed baseline.
    * ``retry-overhead`` — the same batch frame through a bare client
      (``retries=0``) and the guarded default, fault-free: the retry /
      reconnect / circuit-breaker machinery must cost nothing measurable
      on the happy path.
    * ``lossy-sustained`` — point queries under a deterministic
      :class:`~repro.faults.FaultPlan` dropping 1% of response reads;
      every answer is verified bit-identical while the client rides its
      reconnect-and-replay machinery through the drops.
    * ``mixed-sustained`` — several concurrent reader clients, each
      firing a fixed point/batch/sweep mix, while one writer client
      ingests labeled runs through the buffered ingest op.  Reported as
      sustained answers/second plus the p99 request latency; absolute
      QPS is hardware-bound and therefore only gated under
      ``--strict-qps``.

    Every reader verifies each answer against the in-process session's
    expected answer *while the writer is ingesting* — the bench doubles
    as a consistency check that concurrent ingest never bleeds into
    fixed-run answers.
    """
    import tempfile
    from concurrent.futures import ThreadPoolExecutor as _ClientPool
    from pathlib import Path as _Path

    from repro.api.queries import BatchQuery, DownstreamQuery, PointQuery
    from repro.api.session import ProvenanceSession
    from repro.faults import FaultPlan, FaultRule
    from repro.faults import suppressed as fault_suppressed
    from repro.server import RemoteStore, ServerThread
    from repro.storage.sharded import ShardedProvenanceStore

    preset = get_scale(scale)
    run_count, run_size, pair_count, reader_clients, requests_per_reader, ingest_runs = (
        _SERVER_SETTINGS.get(preset.name, _SERVER_SETTINGS["smoke"])
    )
    spec = generate_specification(
        SyntheticSpecConfig(
            n_modules=60,
            n_edges=120,
            hierarchy_size=8,
            hierarchy_depth=3,
            name="server-bench",
            seed=4242,
        )
    )
    labeler = SkeletonLabeler(spec, "tcm")
    labeled = [
        labeler.label_run(
            generate_run_with_size(
                spec, run_size, seed=seed + index, name=f"served-{index}"
            ).run
        )
        for index in range(run_count)
    ]
    writer_payload = [
        labeler.label_run(
            generate_run_with_size(
                spec, run_size, seed=seed + 100 + index, name=f"ingested-{index}"
            ).run
        )
        for index in range(ingest_runs)
    ]
    base_dir = _Path(tempfile.mkdtemp(prefix="repro-server-bench-"))
    store = ShardedProvenanceStore(base_dir / "store", 2)
    run_ids = store.add_labeled_runs(labeled)
    run_id = run_ids[0]
    run = labeled[0].run
    rng = random.Random(seed)
    pairs = [
        ((source.module, source.instance), (target.module, target.instance))
        for source, target in sample_query_pairs(run.vertices(), pair_count, rng)
    ]
    anchor = pairs[0][0]

    # the ground truth every remote answer is checked against
    local = ProvenanceSession(store)
    expected_batch = local.run(BatchQuery(pairs=pairs, run_id=run_id))
    expected_sweep = local.run(DownstreamQuery(anchor, run_id=run_id))
    source_ids, target_ids = store.query_engine(run_id).intern_pairs(pairs)
    handle_query = BatchQuery(
        source_ids=source_ids, target_ids=target_ids, run_id=run_id
    )

    rows: list[dict] = []
    with ServerThread(store) as server:
        with RemoteStore(server.url) as client:
            session = client.session()
            # bit-identity gate before any number is reported
            if session.run(BatchQuery(pairs=pairs, run_id=run_id)) != expected_batch:
                raise ReproError("remote batch answers diverge from in-process")
            if session.run(DownstreamQuery(anchor, run_id=run_id)) != expected_sweep:
                raise ReproError("remote sweep answers diverge from in-process")
            if session.run(handle_query) != expected_batch:
                raise ReproError("remote handle-native batch diverges from in-process")

            point_seconds = batch_seconds = float("inf")
            for _ in range(3):
                started = time.perf_counter()
                point_answers = [
                    session.run(PointQuery(source, target, run_id=run_id))
                    for source, target in pairs
                ]
                point_seconds = min(point_seconds, time.perf_counter() - started)
                started = time.perf_counter()
                batch_answers = session.run(handle_query)
                batch_seconds = min(batch_seconds, time.perf_counter() - started)
            if point_answers != expected_batch or batch_answers != expected_batch:
                raise ReproError("replay answers diverged between repetitions")
            rows.append(
                {
                    "workload": "batch-replay",
                    "mode": "loopback",
                    "clients": 1,
                    "op_mix": "point-vs-batch",
                    "runs": run_count,
                    "vertices_per_run": run_size,
                    "pairs": pair_count,
                    "baseline_ms": round(point_seconds * 1e3, 3),
                    "optimized_ms": round(batch_seconds * 1e3, 3),
                    "answers_qps": round(pair_count / batch_seconds)
                    if batch_seconds > 0
                    else None,
                    "speedup": round(point_seconds / batch_seconds, 2)
                    if batch_seconds > 0
                    else None,
                }
            )

        # -- retry overhead: the guarded client vs a bare one --------------
        # the fault-tolerance machinery (per-attempt lock, injection hook,
        # sequence bookkeeping) must be free on the happy path; both
        # clients run the identical wire exchange, so min-of timings
        # isolate the machinery itself
        def timed_group(timed_session, group=100):
            started = time.perf_counter()
            for _ in range(group):
                got = timed_session.run(handle_query)
            elapsed = (time.perf_counter() - started) / group
            if got != expected_batch:
                raise ReproError("retry-overhead answers diverged from in-process")
            return elapsed

        # a single loopback batch frame is ~0.1 ms, where one scheduler
        # blip reads as tens of percent: each sample times a group of
        # exchanges, the two clients' samples interleave so ambient load
        # drift hits both equally, and min-of-samples drops the blips.
        # This is also the *fault-free* leg by definition: an ambient
        # REPRO_FAULTS profile (the chaos CI job) must not smear a retry
        # into the timing, so every injection point is masked
        with fault_suppressed():
            with RemoteStore(server.url, retries=0) as bare, RemoteStore(
                server.url, retries=3
            ) as guarded:
                bare_session, guarded_session = bare.session(), guarded.session()
                timed_group(bare_session, group=5)  # warm-up both
                timed_group(guarded_session, group=5)
                bare_seconds = guarded_seconds = float("inf")
                for _ in range(9):
                    bare_seconds = min(bare_seconds, timed_group(bare_session))
                    guarded_seconds = min(
                        guarded_seconds, timed_group(guarded_session)
                    )
        rows.append(
            {
                "workload": "retry-overhead",
                "mode": "loopback",
                "faults": "none",
                "clients": 1,
                "op_mix": "batch",
                "runs": run_count,
                "vertices_per_run": run_size,
                "pairs": pair_count,
                "baseline_ms": round(bare_seconds * 1e3, 3),
                "optimized_ms": round(guarded_seconds * 1e3, 3),
                "overhead_pct": round(
                    (guarded_seconds / bare_seconds - 1.0) * 100, 2
                )
                if bare_seconds > 0
                else None,
            }
        )

        # -- lossy: sustained verified throughput under 1% dropped reads ---
        lossy_requests = max(200, reader_clients * requests_per_reader)
        lossy_plan = FaultPlan(
            [FaultRule("client.recv", "oserror", every=100)], seed=seed
        )
        with lossy_plan.active():
            with RemoteStore(
                server.url, retries=3, backoff_base=0.01, retry_seed=seed
            ) as lossy:
                lossy_session = lossy.session()
                started = time.perf_counter()
                for index in range(lossy_requests):
                    source, target = pairs[index % len(pairs)]
                    got = lossy_session.run(
                        PointQuery(source, target, run_id=run_id)
                    )
                    if got != expected_batch[index % len(pairs)]:
                        raise ReproError(
                            "lossy-leg answer diverged under injected drops"
                        )
                lossy_elapsed = time.perf_counter() - started
                client_retries = lossy.fault_stats["retries"]
        injected = lossy_plan.fired.get("client.recv", 0)
        if injected < 1:
            raise ReproError("lossy leg injected no faults; nothing was proven")
        rows.append(
            {
                "workload": "lossy-sustained",
                "mode": "loopback",
                "faults": "drop-1pct",
                "clients": 1,
                "op_mix": "point",
                "runs": run_count,
                "vertices_per_run": run_size,
                "pairs": len(pairs),
                "requests": lossy_requests,
                "injected_faults": injected,
                "client_retries": client_retries,
                "elapsed_ms": round(lossy_elapsed * 1e3, 3),
                "answers_qps": round(lossy_requests / lossy_elapsed)
                if lossy_elapsed > 0
                else None,
            }
        )

        # -- sustained mixed load: concurrent readers + one writer --------
        mix_pairs = pairs[: max(16, pair_count // 4)]
        mix_handles = BatchQuery(
            source_ids=source_ids[: len(mix_pairs)],
            target_ids=target_ids[: len(mix_pairs)],
            run_id=run_id,
        )
        expected_mix = expected_batch[: len(mix_pairs)]

        def reader_worker(reader_index: int) -> tuple[int, list[float]]:
            answers = 0
            latencies: list[float] = []
            with RemoteStore(server.url) as reader:
                reader_session = reader.session()
                for request_index in range(requests_per_reader):
                    slot = (reader_index + request_index) % 8
                    started = time.perf_counter()
                    if slot == 6:
                        got = reader_session.run(mix_handles)
                        ok = got == expected_mix
                        answers += len(got)
                    elif slot == 7:
                        got = reader_session.run(
                            DownstreamQuery(anchor, run_id=run_id)
                        )
                        ok = got == expected_sweep
                        answers += 1
                    else:
                        source, target = pairs[
                            (reader_index * 31 + request_index) % len(pairs)
                        ]
                        got = reader_session.run(
                            PointQuery(source, target, run_id=run_id)
                        )
                        ok = got == expected_batch[
                            (reader_index * 31 + request_index) % len(pairs)
                        ]
                        answers += 1
                    latencies.append(time.perf_counter() - started)
                    if not ok:
                        raise ReproError(
                            "concurrent reader answer diverged from the "
                            "in-process expectation during ingest"
                        )
            return answers, latencies

        def writer_worker() -> list[int]:
            with RemoteStore(server.url) as writer:
                writer.ingest(writer_payload, flush=False)
                return writer.flush()

        with _ClientPool(max_workers=reader_clients + 1) as pool:
            started = time.perf_counter()
            writer_future = pool.submit(writer_worker)
            reader_futures = [
                pool.submit(reader_worker, index) for index in range(reader_clients)
            ]
            reader_results = [future.result() for future in reader_futures]
            ingested_ids = writer_future.result()
            elapsed = time.perf_counter() - started
        if len(ingested_ids) != ingest_runs:
            raise ReproError(
                f"writer ingested {len(ingested_ids)} of {ingest_runs} runs"
            )
        answers = sum(count for count, _ in reader_results)
        latencies = sorted(
            latency for _, reader_latencies in reader_results
            for latency in reader_latencies
        )
        p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
        rows.append(
            {
                "workload": "mixed-sustained",
                "mode": "loopback",
                "clients": reader_clients,
                "op_mix": _SERVER_OP_MIX,
                "runs": run_count,
                "vertices_per_run": run_size,
                "pairs": len(mix_pairs),
                "requests": reader_clients * requests_per_reader,
                "ingested_runs": ingest_runs,
                "elapsed_ms": round(elapsed * 1e3, 3),
                "answers_qps": round(answers / elapsed) if elapsed > 0 else None,
                "p99_ms": round(p99 * 1e3, 3),
            }
        )
    store.close()
    return ExperimentResult(
        experiment_id="throughput-server",
        title="The provenance daemon: batch replay and sustained mixed QPS",
        rows=rows,
        columns=[
            "workload",
            "mode",
            "faults",
            "clients",
            "op_mix",
            "runs",
            "vertices_per_run",
            "pairs",
            "requests",
            "ingested_runs",
            "injected_faults",
            "client_retries",
            "baseline_ms",
            "optimized_ms",
            "elapsed_ms",
            "answers_qps",
            "p99_ms",
            "overhead_pct",
            "speedup",
        ],
        notes=[
            "batch-replay row: the same pairs as one point round trip each "
            "vs a single handle-native batch frame (the body is the binary "
            "pair workload, replayed server-side with zero parsing); the "
            "ratio is the protocol's structural win and is gated",
            "mixed-sustained row: concurrent reader clients (the op mix is "
            "points, a batch every 7th and a sweep every 8th request) "
            "while one writer ingests through the buffered ingest op; "
            "answers/second is hardware-bound and gated only under "
            "--strict-qps",
            "every reader verifies every answer against the in-process "
            "session's expected answer while the writer is ingesting — "
            "divergence fails the experiment before any number is reported",
            "retry-overhead row: the same batch frame through a bare "
            "client (retries=0) vs the guarded default — the retry/"
            "breaker machinery must cost nothing on the fault-free path",
            "lossy-sustained row: point queries under a deterministic "
            "FaultPlan dropping 1% of response reads (client.recv, "
            "every=100); every answer is verified bit-identical while "
            "the client reconnects and retries through the drops",
            f"scale={preset.name}; cpu_count={os.cpu_count()}",
        ],
    )


#: SQL pushdown workload per benchmark scale: (stored runs, vertices/run)
_SQL_PUSHDOWN_SETTINGS = {
    "smoke": (6, 500),
    "default": (12, 6_400),
    "paper": (16, 12_800),
}


def _pushdown_specification(n_modules: int = 40):
    """A forest specification (``n_edges = n_modules - 1``) so the interval
    scheme — which only labels forests — can join the comparison."""
    return generate_specification(
        SyntheticSpecConfig(
            n_modules=n_modules,
            n_edges=n_modules - 1,
            hierarchy_size=8,
            hierarchy_depth=3,
            name=f"synthetic-forest-{n_modules}",
            seed=7 + n_modules,
        )
    )


def throughput_sql_pushdown(
    scale: str | BenchScale = "default", *, seed: int = 0
) -> ExperimentResult:
    """Cross-run reachability sweeps: SQL pushdown vs the streamed kernel.

    Both paths answer the same :class:`~repro.api.CrossRunQuery` — everything
    downstream of one anchor execution, in every stored run of one
    specification — from a cold store.  The ``pushdown="never"`` leg streams
    each run's raw label columns out of SQLite and evaluates the anchored
    range predicate in the spec kernel; the ``pushdown="always"`` leg
    compiles the same predicate into a parameterized ``SELECT`` that rides
    the schema-v3 covering indexes, so only the *matching* rows ever cross
    the SQLite boundary and no label arrays are materialized at all.  Each
    capable scheme (interval, tree-cover, chain) reports one row per leg;
    the ``always`` row carries the speedup.  Result sets are verified equal
    before any number is reported; timings are best-of-N from a fresh store
    each so neither leg benefits from warm caches.
    """
    import tempfile
    from pathlib import Path as _Path

    from repro.api.queries import CrossRunQuery
    from repro.api.session import ProvenanceSession

    preset = get_scale(scale)
    run_count, run_size = _SQL_PUSHDOWN_SETTINGS.get(preset.name, (6, 500))
    spec = _pushdown_specification()
    # a median-selectivity anchor: the module whose downstream closure covers
    # about half the spec.  A root anchor would make every row match and hide
    # the pushdown's point — only *matching* rows cross the SQLite boundary,
    # while the streamed kernel always pays for the full label columns.
    graph = spec.graph

    def _downstream_module_count(module):
        seen = {module}
        stack = [module]
        while stack:
            for successor in graph.successors(stack.pop()):
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return len(seen)

    target = len(graph.vertices()) // 2
    anchor_module = min(
        sorted(graph.vertices()),
        key=lambda module: (abs(_downstream_module_count(module) - target), module),
    )
    anchor = (anchor_module, 1)
    generated_runs = [
        generate_run_with_size(spec, run_size, seed=seed + i, name=f"pushdown-run-{i}").run
        for i in range(run_count)
    ]
    base_dir = _Path(tempfile.mkdtemp(prefix="repro-sql-pushdown-"))

    rows: list[dict] = []
    for scheme in ("interval", "tree-cover", "chain"):
        database = base_dir / f"{scheme}.db"
        labeler = SkeletonLabeler(spec, scheme)
        from repro.storage.store import ProvenanceStore

        with ProvenanceStore(database) as store:
            for run in generated_runs:
                store.add_labeled_run(labeler.label_run(run))

        legs = {}
        for mode in ("never", "always"):
            query = CrossRunQuery(spec.name, anchor, "downstream", pushdown=mode)
            result, seconds = _timed_cold_store(
                database, lambda store: ProvenanceSession(store).run(query)
            )
            legs[mode] = (seconds, result)

        kernel_seconds, kernel_result = legs["never"]
        sql_seconds, sql_result = legs["always"]
        if (
            sorted(kernel_result.per_run) != sorted(sql_result.per_run)
            or sorted(kernel_result.skipped_runs) != sorted(sql_result.skipped_runs)
            or any(
                kernel_result.per_run[run_id] != sql_result.per_run[run_id]
                for run_id in kernel_result.per_run
            )
        ):
            raise ReproError(
                f"SQL pushdown sweep disagrees with the streamed kernel "
                f"on scheme {scheme!r}"
            )
        total_vertices = run_count * run_size
        for mode, (seconds, result) in legs.items():
            rows.append(
                {
                    "spec_scheme": scheme,
                    "pushdown": mode,
                    "runs": run_count,
                    "vertices_per_run": generated_runs[0].vertex_count,
                    "affected": result.affected_count,
                    "sweep_ms": round(seconds * 1e3, 3),
                    "sweep_vps": round(total_vertices / seconds)
                    if seconds > 0
                    else None,
                    "speedup": (
                        round(kernel_seconds / seconds, 2)
                        if mode == "always" and seconds > 0
                        else None
                    ),
                }
            )
    return ExperimentResult(
        experiment_id="throughput-sql-pushdown",
        title="Cross-run sweeps: SQL pushdown (indexed range scan) vs streamed kernel",
        rows=rows,
        notes=[
            "every pushdown result set is verified bit-identical to the "
            "streamed-kernel answer before any number is reported",
            "both legs start from a cold store (best-of-N, fresh open each); "
            "the never leg streams full label columns and evaluates the "
            "anchored range predicate in the spec kernel, the always leg "
            "evaluates it inside SQLite on the schema-v3 covering indexes "
            "and returns only matching rows",
            "speedup is on the always row: streamed-kernel seconds over "
            "pushdown seconds for the same scheme",
            "the anchor is the median-selectivity module (downstream closure "
            "covers about half the spec) — a root anchor would match every "
            "row and mask the transfer saving the pushdown exists for",
            f"scale={preset.name}; {run_count} runs per scheme on a forest "
            "spec (interval only labels forests)",
        ],
    )


#: (graph vertices, delete+insert cycles, verification pairs) per scale
_INCREMENTAL_UPDATE_SETTINGS = {
    "smoke": (400, 10, 12),
    "default": (3_000, 30, 16),
    "paper": (12_000, 60, 16),
}


def throughput_incremental_updates(
    scale: str | BenchScale = "default", *, seed: int = 0
) -> ExperimentResult:
    """Subtree-local edge updates: incremental label repair vs full relabel.

    Each mutable tree-shaped scheme (interval, tree-cover, chain) absorbs
    the same sequence of leaf-edge delete/insert cycles on one random
    recursive forest twice: once through the :mod:`repro.dynamic` delta
    strategies (``index.delete_edge`` / ``index.insert_edge``), and once by
    rebuilding the index from scratch after every mutation — the only
    option the library offered before dynamic updates existed.  After each
    mutation both legs answer the same fixed query workload, and the two
    answer streams must be bit-identical before any number is reported.
    The ``speedup`` column is rebuild seconds over incremental seconds for
    the identical update+query sequence.
    """
    from repro.graphs.digraph import DiGraph

    preset = get_scale(scale)
    n_vertices, cycles, pair_count = _INCREMENTAL_UPDATE_SETTINGS.get(
        preset.name, (3_000, 30, 16)
    )
    rng = random.Random(seed * 7919 + 11)
    forest = DiGraph()
    # a forest of ~100-vertex random recursive trees: provenance stores hold
    # many moderate workflow trees, and the shape makes "subtree-local"
    # mean what it says — the interval scheme's insert repair renumbers the
    # one tree it touched, never the whole forest
    tree_size = min(100, n_vertices)
    for vertex in range(n_vertices):
        forest.add_vertex(vertex)
    for vertex in range(n_vertices):
        root = vertex - vertex % tree_size
        if vertex > root:
            forest.add_edge(rng.randrange(root, vertex), vertex)
    leaves = [
        vertex
        for vertex in range(n_vertices)
        if forest.out_degree(vertex) == 0 and forest.in_degree(vertex) == 1
    ]
    cycled = [
        (forest.predecessors(leaf)[0], leaf)
        for leaf in rng.sample(leaves, min(cycles, len(leaves)))
    ]
    # pairs anchored on the mutated leaves flip between delete and insert,
    # so a repair that forgets a region cannot slip past the equality check
    pairs = [(parent, leaf) for parent, leaf in cycled[:pair_count]]
    while len(pairs) < pair_count:
        pairs.append(
            (rng.randrange(n_vertices), rng.randrange(n_vertices))
        )

    def answer_stream(index) -> list[bool]:
        return [index.reaches(source, target) for source, target in pairs]

    rows: list[dict] = []
    for scheme in ("interval", "tree-cover", "chain"):
        index = build_index(scheme, forest)
        # one untimed warmup cycle: the first update pays the lazy strategy
        # imports and the one-time reconstruction of the scheme's dynamic
        # state (e.g. the tree-cover spanning forest); the monitoring loops
        # this bench prices run in steady state
        warm_parent, warm_leaf = cycled[0]
        index.delete_edge(warm_parent, warm_leaf)
        index.insert_edge(warm_parent, warm_leaf)
        warmup_records = len(index.update_log)
        incremental_answers: list[list[bool]] = []
        started = time.perf_counter()
        for parent, leaf in cycled:
            index.delete_edge(parent, leaf)
            incremental_answers.append(answer_stream(index))
            index.insert_edge(parent, leaf)
            incremental_answers.append(answer_stream(index))
        incremental_seconds = time.perf_counter() - started

        rebuild_answers: list[list[bool]] = []
        started = time.perf_counter()
        for parent, leaf in cycled:
            forest.remove_edge(parent, leaf)
            rebuild_answers.append(answer_stream(build_index(scheme, forest)))
            forest.add_edge(parent, leaf)
            rebuild_answers.append(answer_stream(build_index(scheme, forest)))
        rebuild_seconds = time.perf_counter() - started

        if incremental_answers != rebuild_answers:
            raise ReproError(
                f"incremental updates disagree with relabel-from-scratch "
                f"on scheme {scheme!r}"
            )
        updates = 2 * len(cycled)
        rows.append(
            {
                "scheme": scheme,
                "vertices": n_vertices,
                "updates": updates,
                "pairs": len(pairs),
                "incremental_ms": round(incremental_seconds * 1e3, 3),
                "rebuild_ms": round(rebuild_seconds * 1e3, 3),
                "updates_per_s": (
                    round(updates / incremental_seconds)
                    if incremental_seconds > 0
                    else None
                ),
                "speedup": (
                    round(rebuild_seconds / incremental_seconds, 2)
                    if incremental_seconds > 0
                    else None
                ),
                "strategies": dict(
                    sorted(
                        Counter(
                            record.strategy
                            for record in list(index.update_log)[warmup_records:]
                        ).items()
                    )
                ),
            }
        )
    return ExperimentResult(
        experiment_id="throughput-incremental-updates",
        title="Edge updates: incremental label repair vs relabel-from-scratch",
        rows=rows,
        notes=[
            "every post-update answer of the incremental leg is verified "
            "bit-identical to a fresh relabel of the mutated graph before "
            "any number is reported",
            "workload: leaf-edge delete/insert cycles on one random "
            "recursive forest — the subtree-local case the delta "
            "strategies exist for; the rebuild leg relabels the whole "
            "graph after every mutation (the pre-dynamic-updates cost)",
            "each update is followed by the same fixed point-query "
            "workload in both legs, so the speedup prices update+query, "
            "not the update alone",
            "one untimed warmup cycle per scheme pays the lazy strategy "
            "imports and the one-time dynamic-state reconstruction, so "
            "the numbers price steady-state monitoring updates",
            f"scale={preset.name}; {n_vertices} vertices, "
            f"{2 * len(cycled)} updates, {len(pairs)} pairs per scheme",
        ],
    )


def all_experiments(scale: str | BenchScale = "default", *, seed: int = 0) -> list[ExperimentResult]:
    """Run every experiment at the given scale (used by the CLI)."""
    shared_comparison = scheme_comparison(scale, seed=seed)
    shared_influence = spec_influence(scale, seed=seed)
    return [
        table_1_real_workflows(),
        table_2_complexity(scale, seed=seed),
        figure_12_label_length(scale, seed=seed),
        figure_13_construction_time(scale, seed=seed),
        figure_14_query_time(scale, seed=seed),
        figure_15_label_length_comparison(scale, seed=seed, shared=shared_comparison),
        figure_16_construction_comparison(scale, seed=seed, shared=shared_comparison),
        figure_17_query_comparison(scale, seed=seed, shared=shared_comparison),
        figure_18_spec_influence_label_length(scale, seed=seed, shared=shared_influence),
        figure_19_spec_influence_construction(scale, seed=seed, shared=shared_influence),
        figure_20_spec_influence_query(scale, seed=seed, shared=shared_influence),
        ablation_spec_schemes(scale, seed=seed),
        throughput_query_engine(scale, seed=seed),
        throughput_handle_path(scale, seed=seed),
        throughput_cross_run(scale, seed=seed),
        throughput_parallel_cross_run(scale, seed=seed),
        throughput_sharded_ingest(scale, seed=seed),
        throughput_shard_rebalance(scale, seed=seed),
        throughput_server(scale, seed=seed),
        throughput_sql_pushdown(scale, seed=seed),
        throughput_incremental_updates(scale, seed=seed),
    ]
