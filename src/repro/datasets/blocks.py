"""Internal building blocks of the synthetic specification generator.

A synthetic specification is assembled from a tree of *bodies*: the root body
is the specification's backbone and every other body is one fork or loop
region.  A body consists of a chain of *anchor* modules it owns; between two
consecutive anchors there is either a plain edge or a *gap* hosting one child
body:

* a child **fork** body is spliced into its gap with edges from the left
  anchor to the child's first anchor and from the child's last anchor to the
  right anchor — the two parent anchors become the fork's (shared) source and
  sink;
* a child **loop** body is connected the same way, but the loop's own first
  and last anchors are its source and sink.

This construction guarantees by shape everything Definitions 1–3 ask for:
each fork is an atomic self-contained subgraph, each loop a complete
self-contained subgraph, and the whole system is well nested.  Additional
"jump" edges between anchors of the same body raise the edge count to an
exact target without breaking any of those properties.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.exceptions import DatasetError
from repro.workflow.subgraphs import RegionKind

__all__ = ["BodyNode", "build_region_tree", "minimum_anchor_count"]


@dataclass
class BodyNode:
    """One body of the synthetic construction (the root or one region).

    Attributes
    ----------
    name:
        Region name (``"F3"``, ``"L1"``, ...) or ``"__root__"``.
    kind:
        ``None`` for the root, otherwise the region kind.
    parent:
        The parent body, or ``None`` for the root.
    children:
        Child bodies in gap order.
    anchors:
        Number of anchor modules this body owns (set during vertex budgeting).
    anchor_names:
        The module names of the anchors, filled in during graph emission.
    """

    name: str
    kind: Optional[RegionKind]
    parent: Optional["BodyNode"] = None
    children: list["BodyNode"] = field(default_factory=list)
    anchors: int = 0
    anchor_names: list[str] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        """``True`` for the backbone body."""
        return self.kind is None

    @property
    def depth(self) -> int:
        """Depth in the body tree; the root has depth 1."""
        depth = 1
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def descendants(self) -> list["BodyNode"]:
        """Every body strictly below this one."""
        found: list[BodyNode] = []
        stack = list(self.children)
        while stack:
            node = stack.pop()
            found.append(node)
            stack.extend(node.children)
        return found

    def subtree(self) -> list["BodyNode"]:
        """This body plus all its descendants."""
        return [self, *self.descendants()]


def minimum_anchor_count(body: BodyNode) -> int:
    """Smallest number of anchors *body* may own.

    Every child needs its own gap (``children + 1`` anchors); the root and
    loop bodies additionally need distinct source and sink anchors, while a
    fork body only needs a single internal anchor.
    """
    baseline = 1 if body.kind is RegionKind.FORK else 2
    return max(baseline, len(body.children) + 1)


def build_region_tree(
    hierarchy_size: int,
    hierarchy_depth: int,
    *,
    fork_fraction: float = 0.5,
    rng: random.Random,
) -> BodyNode:
    """Build a random body tree with exact ``|TG|`` and ``[TG]``.

    ``hierarchy_size`` counts the regions plus one (the paper's ``|TG|``);
    ``hierarchy_depth`` is the depth of the deepest region with the root at
    depth 1 (the paper's ``[TG]``).  Region kinds are drawn with probability
    *fork_fraction* for forks, except that the generator guarantees at least
    one fork and one loop whenever two or more regions are requested.
    """
    if hierarchy_size < 1:
        raise DatasetError("hierarchy_size (|TG|) must be at least 1")
    region_count = hierarchy_size - 1
    if region_count == 0:
        if hierarchy_depth != 1:
            raise DatasetError(
                "a specification without forks or loops has hierarchy depth 1"
            )
        return BodyNode(name="__root__", kind=None)
    if hierarchy_depth < 2:
        raise DatasetError("hierarchy_depth ([TG]) must be at least 2 when regions exist")
    if hierarchy_depth - 1 > region_count:
        raise DatasetError(
            f"cannot reach depth {hierarchy_depth} with only {region_count} regions"
        )

    root = BodyNode(name="__root__", kind=None)

    # Draw kinds: honour fork_fraction but keep both kinds represented when possible.
    kinds = [
        RegionKind.FORK if rng.random() < fork_fraction else RegionKind.LOOP
        for _ in range(region_count)
    ]
    if region_count >= 2:
        if all(kind is RegionKind.FORK for kind in kinds):
            kinds[rng.randrange(region_count)] = RegionKind.LOOP
        elif all(kind is RegionKind.LOOP for kind in kinds):
            kinds[rng.randrange(region_count)] = RegionKind.FORK

    fork_counter = 0
    loop_counter = 0

    def make_body(kind: RegionKind, parent: BodyNode) -> BodyNode:
        nonlocal fork_counter, loop_counter
        if kind is RegionKind.FORK:
            fork_counter += 1
            name = f"F{fork_counter}"
        else:
            loop_counter += 1
            name = f"L{loop_counter}"
        body = BodyNode(name=name, kind=kind, parent=parent)
        parent.children.append(body)
        return body

    # A chain of depth-1 regions pins the exact hierarchy depth...
    chain_length = hierarchy_depth - 1
    current = root
    for index in range(chain_length):
        current = make_body(kinds[index], current)

    # ...and the remaining regions attach to random parents shallow enough to
    # not exceed the target depth.
    attachable = [node for node in root.subtree() if node.depth < hierarchy_depth]
    for index in range(chain_length, region_count):
        parent = attachable[rng.randrange(len(attachable))]
        body = make_body(kinds[index], parent)
        if body.depth < hierarchy_depth:
            attachable.append(body)
    return root
