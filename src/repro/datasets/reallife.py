"""Catalog of the six real-life scientific workflows of Table 1.

The paper's real dataset comes from the myExperiment repository (Taverna,
Kepler and Triana workflows).  That repository is not available offline, so
this module synthesizes stand-in specifications whose measured
characteristics — ``nG``, ``mG``, ``|TG|`` and ``[TG]`` — match Table 1
exactly.  The skeleton labeling scheme only ever sees the ``(G, F, L)``
triple, so experiments driven by these stand-ins exercise exactly the same
code paths and exhibit the same scaling behaviour as the originals (see
DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.exceptions import DatasetError
from repro.workflow.specification import WorkflowSpecification

__all__ = [
    "RealWorkflowProfile",
    "REAL_WORKFLOW_PROFILES",
    "real_workflow_names",
    "load_real_workflow",
    "load_all_real_workflows",
]


@dataclass(frozen=True)
class RealWorkflowProfile:
    """Published characteristics of one real-life workflow (Table 1)."""

    name: str
    n_modules: int
    n_edges: int
    hierarchy_size: int
    hierarchy_depth: int
    seed: int


#: Table 1 of the paper: nG, mG, |TG| and [TG] for each collected workflow.
REAL_WORKFLOW_PROFILES: tuple[RealWorkflowProfile, ...] = (
    RealWorkflowProfile("EBI", n_modules=29, n_edges=31, hierarchy_size=4, hierarchy_depth=2, seed=101),
    RealWorkflowProfile("PubMed", n_modules=35, n_edges=45, hierarchy_size=3, hierarchy_depth=3, seed=102),
    RealWorkflowProfile("QBLAST", n_modules=58, n_edges=72, hierarchy_size=6, hierarchy_depth=3, seed=103),
    RealWorkflowProfile("BioAID", n_modules=71, n_edges=87, hierarchy_size=10, hierarchy_depth=4, seed=104),
    RealWorkflowProfile("ProScan", n_modules=89, n_edges=119, hierarchy_size=9, hierarchy_depth=4, seed=105),
    RealWorkflowProfile("ProDisc", n_modules=111, n_edges=158, hierarchy_size=9, hierarchy_depth=3, seed=106),
)

_PROFILES_BY_NAME = {profile.name.lower(): profile for profile in REAL_WORKFLOW_PROFILES}


def real_workflow_names() -> list[str]:
    """Names of the catalog workflows, in Table 1 order."""
    return [profile.name for profile in REAL_WORKFLOW_PROFILES]


def load_real_workflow(name: str) -> WorkflowSpecification:
    """Build the stand-in specification for the Table 1 workflow called *name*."""
    try:
        profile = _PROFILES_BY_NAME[name.lower()]
    except KeyError:
        raise DatasetError(
            f"unknown real-life workflow {name!r}; available: {real_workflow_names()}"
        ) from None
    config = SyntheticSpecConfig(
        n_modules=profile.n_modules,
        n_edges=profile.n_edges,
        hierarchy_size=profile.hierarchy_size,
        hierarchy_depth=profile.hierarchy_depth,
        fork_fraction=0.5,
        name=profile.name,
        seed=profile.seed,
    )
    return generate_specification(config)


def load_all_real_workflows() -> dict[str, WorkflowSpecification]:
    """Build every catalog workflow; keys follow Table 1 naming."""
    return {profile.name: load_real_workflow(profile.name) for profile in REAL_WORKFLOW_PROFILES}
