"""Workload generation: synthetic specifications and the Table 1 catalog."""

from repro.datasets.blocks import BodyNode, build_region_tree, minimum_anchor_count
from repro.datasets.reallife import (
    REAL_WORKFLOW_PROFILES,
    RealWorkflowProfile,
    load_all_real_workflows,
    load_real_workflow,
    real_workflow_names,
)
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification

__all__ = [
    "BodyNode",
    "build_region_tree",
    "minimum_anchor_count",
    "REAL_WORKFLOW_PROFILES",
    "RealWorkflowProfile",
    "load_all_real_workflows",
    "load_real_workflow",
    "real_workflow_names",
    "SyntheticSpecConfig",
    "generate_specification",
]
