"""Synthetic workflow specifications with exact size parameters (Section 8).

The paper's synthetic datasets are described by four parameters: ``nG`` (the
number of modules), ``mG`` (the number of edges), ``|TG|`` (the size of the
fork/loop hierarchy, i.e. the number of forks and loops plus one) and
``[TG]`` (the depth of the hierarchy).  :func:`generate_specification`
produces a valid, well-nested specification hitting all four parameters
exactly, or raises :class:`~repro.exceptions.DatasetError` when the
combination is infeasible.

The construction works in four steps:

1. build a random region tree with the requested ``|TG|`` and ``[TG]``
   (:func:`repro.datasets.blocks.build_region_tree`);
2. distribute the module budget ``nG`` over the bodies as *anchor* chains
   (every body gets at least its structural minimum);
3. emit the backbone graph: anchor chains with child regions spliced into
   their gaps — this yields exactly ``nG - 1`` edges;
4. add random forward "jump" edges between anchors of the same body until the
   edge count reaches ``mG``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import DatasetError
from repro.graphs.digraph import DiGraph
from repro.datasets.blocks import BodyNode, build_region_tree, minimum_anchor_count
from repro.workflow.specification import WorkflowSpecification
from repro.workflow.subgraphs import Region, RegionKind

__all__ = ["SyntheticSpecConfig", "generate_specification"]


@dataclass(frozen=True)
class SyntheticSpecConfig:
    """Parameters of one synthetic specification (Section 8 notation).

    Attributes
    ----------
    n_modules:
        ``nG`` — number of modules (graph vertices).
    n_edges:
        ``mG`` — number of data channels (graph edges).
    hierarchy_size:
        ``|TG|`` — number of forks and loops plus one.
    hierarchy_depth:
        ``[TG]`` — depth of the fork/loop hierarchy (root at depth 1).
    fork_fraction:
        Probability that a region is a fork rather than a loop.
    name:
        Specification name.
    seed:
        Seed for the internal random generator (full determinism).
    """

    n_modules: int
    n_edges: int
    hierarchy_size: int
    hierarchy_depth: int
    fork_fraction: float = 0.5
    name: str = "synthetic"
    seed: int = 0


def generate_specification(
    config: Optional[SyntheticSpecConfig] = None,
    *,
    n_modules: Optional[int] = None,
    n_edges: Optional[int] = None,
    hierarchy_size: Optional[int] = None,
    hierarchy_depth: Optional[int] = None,
    fork_fraction: float = 0.5,
    name: str = "synthetic",
    seed: int = 0,
) -> WorkflowSpecification:
    """Generate a synthetic specification with exact size parameters.

    Either pass a :class:`SyntheticSpecConfig` or the individual keyword
    arguments.  The returned specification satisfies
    ``spec.vertex_count == nG``, ``spec.edge_count == mG``,
    ``spec.hierarchy.size == |TG|`` and ``spec.hierarchy.depth == [TG]``.
    """
    if config is None:
        if None in (n_modules, n_edges, hierarchy_size, hierarchy_depth):
            raise DatasetError(
                "either a SyntheticSpecConfig or all of n_modules, n_edges, "
                "hierarchy_size and hierarchy_depth must be provided"
            )
        config = SyntheticSpecConfig(
            n_modules=n_modules,
            n_edges=n_edges,
            hierarchy_size=hierarchy_size,
            hierarchy_depth=hierarchy_depth,
            fork_fraction=fork_fraction,
            name=name,
            seed=seed,
        )

    rng = random.Random(config.seed)
    root = build_region_tree(
        config.hierarchy_size,
        config.hierarchy_depth,
        fork_fraction=config.fork_fraction,
        rng=rng,
    )
    bodies = root.subtree()

    _assign_anchor_budget(bodies, config.n_modules, rng)
    graph, regions = _emit_graph(root, rng)
    _add_jump_edges(graph, bodies, config.n_edges, rng)

    forks = [r for r in regions if r.kind is RegionKind.FORK]
    loops = [r for r in regions if r.kind is RegionKind.LOOP]
    spec = WorkflowSpecification(graph, forks, loops, name=config.name)

    # Paranoia: the construction is supposed to hit every target exactly.
    if spec.vertex_count != config.n_modules or spec.edge_count != config.n_edges:
        raise DatasetError(
            f"internal error: generated nG={spec.vertex_count}, mG={spec.edge_count} "
            f"instead of nG={config.n_modules}, mG={config.n_edges}"
        )
    if spec.hierarchy.size != config.hierarchy_size or spec.hierarchy.depth != config.hierarchy_depth:
        raise DatasetError(
            f"internal error: generated |TG|={spec.hierarchy.size}, "
            f"[TG]={spec.hierarchy.depth} instead of |TG|={config.hierarchy_size}, "
            f"[TG]={config.hierarchy_depth}"
        )
    return spec


# ----------------------------------------------------------------------
# step 2: vertex budget
# ----------------------------------------------------------------------
def _assign_anchor_budget(bodies: list[BodyNode], n_modules: int, rng: random.Random) -> None:
    minimums = {id(body): minimum_anchor_count(body) for body in bodies}
    minimum_total = sum(minimums.values())
    if n_modules < minimum_total:
        raise DatasetError(
            f"n_modules={n_modules} is too small for this hierarchy; the structure "
            f"needs at least {minimum_total} modules"
        )
    for body in bodies:
        body.anchors = minimums[id(body)]
    extra = n_modules - minimum_total
    for _ in range(extra):
        bodies[rng.randrange(len(bodies))].anchors += 1


# ----------------------------------------------------------------------
# step 3: backbone emission
# ----------------------------------------------------------------------
def _emit_graph(root: BodyNode, rng: random.Random) -> tuple[DiGraph, list[Region]]:
    graph = DiGraph()
    regions: list[Region] = []
    counter = 0

    def fresh_module() -> str:
        nonlocal counter
        module = f"m{counter:04d}"
        counter += 1
        graph.add_vertex(module)
        return module

    def emit_body(body: BodyNode) -> tuple[str, str, set[str]]:
        """Emit one body; returns (first anchor, last anchor, all vertices of its span)."""
        body.anchor_names = [fresh_module() for _ in range(body.anchors)]
        span: set[str] = set(body.anchor_names)

        # Assign children to distinct gaps (there are anchors - 1 >= children gaps).
        gap_count = body.anchors - 1
        child_gaps = rng.sample(range(gap_count), len(body.children)) if body.children else []
        child_by_gap = dict(zip(sorted(child_gaps), body.children))

        for gap_index in range(gap_count):
            left = body.anchor_names[gap_index]
            right = body.anchor_names[gap_index + 1]
            child = child_by_gap.get(gap_index)
            if child is None:
                graph.add_edge(left, right)
                continue
            child_first, child_last, child_span = emit_body(child)
            graph.add_edge(left, child_first)
            graph.add_edge(child_last, right)
            span |= child_span
            if child.kind is RegionKind.FORK:
                regions.append(
                    Region(RegionKind.FORK, child.name, frozenset(child_span))
                )
            else:
                regions.append(
                    Region(RegionKind.LOOP, child.name, frozenset(child_span))
                )
        return body.anchor_names[0], body.anchor_names[-1], span

    emit_body(root)
    return graph, regions


# ----------------------------------------------------------------------
# step 4: jump edges to reach the exact edge count
# ----------------------------------------------------------------------
def _add_jump_edges(
    graph: DiGraph, bodies: list[BodyNode], n_edges: int, rng: random.Random
) -> None:
    backbone_edges = graph.edge_count
    if n_edges < backbone_edges:
        raise DatasetError(
            f"n_edges={n_edges} is too small; the backbone already needs "
            f"{backbone_edges} edges (n_modules - 1)"
        )
    needed = n_edges - backbone_edges
    if needed == 0:
        return

    candidates: list[tuple[str, str]] = []
    for body in bodies:
        anchors = body.anchor_names
        for i in range(len(anchors)):
            for j in range(i + 1, len(anchors)):
                if not graph.has_edge(anchors[i], anchors[j]):
                    candidates.append((anchors[i], anchors[j]))
    if needed > len(candidates):
        raise DatasetError(
            f"n_edges={n_edges} is too large for this structure; at most "
            f"{backbone_edges + len(candidates)} edges are possible "
            "(increase n_modules or lower n_edges)"
        )
    for tail, head in rng.sample(candidates, needed):
        graph.add_edge(tail, head)
