"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses distinguish
structural problems in the input graphs from violations of the workflow model
and from misuse of the labeling API.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "VertexNotFoundError",
    "EdgeNotFoundError",
    "NotADagError",
    "FlowNetworkError",
    "SpecificationError",
    "WellNestednessError",
    "RunConformanceError",
    "PlanConstructionError",
    "LabelingError",
    "QueryPlanError",
    "SerializationError",
    "StorageError",
    "DatasetError",
    "ProtocolError",
    "CircuitOpenError",
    "WorkerCrashError",
    "FaultSpecError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A structural problem with a directed graph."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex referenced by the caller is not present in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex not in graph: {vertex!r}")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by the caller is not present in the graph."""

    def __init__(self, tail: object, head: object) -> None:
        super().__init__(f"edge not in graph: ({tail!r}, {head!r})")
        self.tail = tail
        self.head = head


class NotADagError(GraphError):
    """The graph was expected to be acyclic but contains a cycle."""


class FlowNetworkError(GraphError):
    """The graph is not an acyclic flow network (single source, single sink)."""


class SpecificationError(ReproError):
    """The workflow specification violates the model of Definition 3."""


class WellNestednessError(SpecificationError):
    """The fork/loop system is not well nested (Definition 2)."""


class RunConformanceError(ReproError):
    """A run graph does not conform to its claimed specification."""


class PlanConstructionError(ReproError):
    """ConstructPlan could not extract an execution plan from the run."""


class LabelingError(ReproError):
    """A labeling scheme was used incorrectly (e.g. unlabeled vertex queried)."""


class QueryPlanError(ReproError):
    """A declarative query cannot be planned against the session's target."""


class SerializationError(ReproError):
    """A specification or run document could not be parsed or written."""


class StorageError(ReproError):
    """The SQLite provenance store rejected an operation."""


class DatasetError(ReproError):
    """A synthetic or catalog dataset could not be generated as requested."""


class ProtocolError(ReproError):
    """A network peer violated the provenance wire protocol.

    Raised by the server on malformed or truncated frames (the connection
    is closed after reporting it) and by the client when the server's
    response cannot be decoded.
    """


class CircuitOpenError(ProtocolError):
    """The client's circuit breaker is open: requests fail fast.

    Raised by :class:`~repro.server.client.RemoteStore` after too many
    consecutive transport failures, without touching the network, until
    the breaker's reset timer half-opens it again.
    """


class WorkerCrashError(ReproError):
    """A parallel worker died (or was fault-injected dead) mid-task.

    The cross-run executor treats it like a broken pool: the chunk is
    retried once, then evaluated sequentially on the submitting side.
    """


class FaultSpecError(ReproError):
    """A ``REPRO_FAULTS`` fault-injection spec could not be parsed."""
