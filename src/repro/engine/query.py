"""The batched reachability query engine.

Answering a reachability query from labels is a handful of integer
comparisons, so on stored runs the dominant cost of the per-pair API is pure
Python dispatch: two ``label_of`` calls and several method hops per query.
:class:`QueryEngine` restructures that work around a *kernel* compiled once
per index (:mod:`repro.engine.kernels`):

1. **label resolution** — every distinct vertex is resolved to its label
   (and, with numpy available, into integer-indexed parallel arrays) exactly
   once when the kernel is built, so a batch never re-derives labels;
2. **batch dispatch** — :meth:`QueryEngine.reaches_batch` hands the whole
   workload to the kernel, which answers it vectorized (numpy kernels) or
   with the scheme's own tight ``reaches_many`` loop (pure-python fallback);
3. **hot-pair memoization** — :meth:`QueryEngine.reaches` serves point
   queries through a bounded LRU cache, so the skewed access patterns of
   interactive provenance traffic short-circuit to a single dict probe.
   Batches bypass the pair cache on purpose: probing it per pair would cost
   more than the vectorized evaluation it could save.

The engine works with anything exposing the ``(D, φ, π)`` duck type —
``label_of``/``reaches``/``reaches_labels`` (plus the optional batch method
``reaches_many``) — i.e. every
:class:`~repro.labeling.base.ReachabilityIndex` and
:class:`~repro.skeleton.skl.SkeletonLabeledRun`.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Iterable
from dataclasses import dataclass
from typing import Any

from repro.engine.kernels import build_kernel

__all__ = ["QueryEngine", "EngineStats", "DEFAULT_CACHE_SIZE"]

Vertex = Hashable

#: default capacity of the hot-pair LRU cache used by the point-query path
DEFAULT_CACHE_SIZE = 65_536

_MISS = object()


@dataclass
class EngineStats:
    """Running counters of one :class:`QueryEngine` (reset with :meth:`reset`)."""

    queries: int = 0
    batches: int = 0
    cache_hits: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of all queries answered from the hot-pair cache."""
        if self.queries == 0:
            return 0.0
        return self.cache_hits / self.queries

    def reset(self) -> None:
        """Zero every counter."""
        self.queries = 0
        self.batches = 0
        self.cache_hits = 0


class QueryEngine:
    """Batched reachability queries over one labeling index.

    Parameters
    ----------
    index:
        The labeling index to query: a
        :class:`~repro.labeling.base.ReachabilityIndex`, a
        :class:`~repro.skeleton.skl.SkeletonLabeledRun`, or any object with
        the same ``label_of`` / ``reaches`` / ``reaches_labels`` surface.
    cache_size:
        Capacity of the hot-pair LRU cache used by :meth:`reaches`;
        ``0`` disables pair memoization.  Forced to ``0`` for indexes
        whose ``stable_labels`` attribute is ``False`` (the traversal
        schemes), whose answers track the live graph and must not be
        memoized.
    """

    def __init__(self, index: Any, *, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self._index = index
        # The kernel is compiled lazily on the first batch: the point-query
        # path never touches it, and building it can be expensive (label
        # arrays plus, for skeleton runs over non-TCM specs, an all-pairs
        # sweep of the specification).
        self._compiled_kernel = None
        # Traversal-style indexes answer from the live graph
        # (``stable_labels = False``), so memoizing their answers would let
        # point queries go stale after a graph mutation while batches stay
        # fresh; disable the pair cache for them.
        if not getattr(index, "stable_labels", True):
            cache_size = 0
        self._cache_size = cache_size
        self._pair_cache: OrderedDict = OrderedDict()
        self.stats = EngineStats()

    @property
    def _kernel(self):
        if self._compiled_kernel is None:
            self._compiled_kernel = build_kernel(self._index)
        return self._compiled_kernel

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def index(self) -> Any:
        """The underlying labeling index."""
        return self._index

    @property
    def kernel_name(self) -> str:
        """Which batch kernel the engine compiled for this index."""
        return self._kernel.name

    @property
    def cache_size(self) -> int:
        """Capacity of the hot-pair LRU cache (0 = disabled)."""
        return self._cache_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        compiled = self._compiled_kernel.name if self._compiled_kernel else "(lazy)"
        return (
            f"{type(self).__name__}(index={type(self._index).__name__}, "
            f"kernel={compiled!r}, "
            f"cache={len(self._pair_cache)}/{self._cache_size})"
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reaches(self, source: Vertex, target: Vertex) -> bool:
        """Answer one query through the hot-pair LRU cache."""
        stats = self.stats
        stats.queries += 1
        if self._cache_size == 0:
            return self._index.reaches(source, target)
        key = (source, target)
        cache = self._pair_cache
        cached = cache.get(key, _MISS)
        if cached is not _MISS:
            cache.move_to_end(key)
            stats.cache_hits += 1
            return cached
        answer = self._index.reaches(source, target)
        cache[key] = answer
        if len(cache) > self._cache_size:
            cache.popitem(last=False)
        return answer

    def reaches_batch(self, pairs: Iterable) -> list[bool]:
        """Answer a batch of ``(source, target)`` queries via the kernel.

        Returns one boolean per input pair, in order.  Unknown vertices
        raise :class:`~repro.exceptions.LabelingError`, matching the
        per-pair API.
        """
        pairs = pairs if isinstance(pairs, (list, tuple)) else list(pairs)
        answers = self._kernel.batch(pairs)
        stats = self.stats
        stats.queries += len(pairs)
        stats.batches += 1
        return answers

    def reaches_pairs(
        self, sources: Iterable[Vertex], targets: Iterable[Vertex]
    ) -> list[bool]:
        """Zip *sources* and *targets* into pairs and answer them as one batch."""
        return self.reaches_batch(list(zip(sources, targets)))

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        """Drop every memoized hot pair."""
        self._pair_cache.clear()
