"""The batched reachability query engine.

Answering a reachability query from labels is a handful of integer
comparisons, so on stored runs the dominant cost of the per-pair API is pure
Python dispatch: two ``label_of`` calls and several method hops per query.
:class:`QueryEngine` restructures that work around a *kernel* compiled once
per index (:mod:`repro.engine.kernels`):

1. **label resolution** — every distinct vertex is resolved to its label
   (and, with numpy available, into handle-indexed parallel arrays) exactly
   once when the kernel is built, so a batch never re-derives labels;
2. **batch dispatch** — :meth:`QueryEngine.reaches_batch` hands the whole
   workload to the kernel, which answers it vectorized (numpy kernels) or
   with the scheme's own tight ``reaches_many`` loop (pure-python fallback);
3. **handle-native entry points** — :meth:`QueryEngine.intern_pairs` maps a
   workload's vertex pairs to integer handles **once**, after which
   :meth:`QueryEngine.reaches_many_ids` replays it with zero per-query
   dictionary lookups (the object-pair path pays that resolution on every
   call);
4. **hot-pair memoization** — :meth:`QueryEngine.reaches` and
   :meth:`QueryEngine.reaches_ids` serve point queries through a bounded
   LRU cache keyed on interned handle pairs: handle-keyed hits are a single
   dict probe with no vertex resolution at all, while object-pair hits pay
   two id-map lookups to build the key (comparable to hashing the vertex
   pair) and then the same probe.  Batches bypass the pair cache on
   purpose: probing it per pair would cost more than the vectorized
   evaluation it could save.

The engine works with anything exposing the ``(D, φ, π)`` duck type —
``label_of``/``reaches``/``reaches_labels`` (plus the optional batch method
``reaches_many`` and the :class:`~repro.labeling.base.VertexHandleAPI`
handle surface) — i.e. every
:class:`~repro.labeling.base.ReachabilityIndex` and
:class:`~repro.skeleton.skl.SkeletonLabeledRun`.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Hashable, Iterable
from dataclasses import dataclass
from typing import Any, Optional

from repro.engine.kernels import build_kernel
from repro.exceptions import LabelingError
from repro.graphs.handles import intern_pair_arrays

__all__ = ["QueryEngine", "EngineStats", "DEFAULT_CACHE_SIZE"]

Vertex = Hashable

#: default capacity of the hot-pair LRU cache used by the point-query path
DEFAULT_CACHE_SIZE = 65_536

_MISS = object()


@dataclass
class EngineStats:
    """Running counters of one :class:`QueryEngine` (reset with :meth:`reset`)."""

    queries: int = 0
    batches: int = 0
    cache_hits: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of all queries answered from the hot-pair cache."""
        if self.queries == 0:
            return 0.0
        return self.cache_hits / self.queries

    def reset(self) -> None:
        """Zero every counter."""
        self.queries = 0
        self.batches = 0
        self.cache_hits = 0


class _HotPairCache(OrderedDict):
    """LRU store keyed on interned handle pairs.

    Membership tests additionally accept ``(source, target)`` *vertex* pairs
    (translated through the engine's interner), so introspection written
    against the historical object-keyed cache keeps working.  The raw key is
    checked first, so when vertices are themselves small integers a handle
    pair and a vertex pair can be indistinguishable — an inherent ambiguity
    of the compatibility shim, not of the cache (which only ever stores
    handle pairs).
    """

    def __init__(self, translate) -> None:
        super().__init__()
        self._translate = translate

    def __contains__(self, key: object) -> bool:
        if OrderedDict.__contains__(self, key):
            return True
        translated = self._translate(key)
        return translated is not None and OrderedDict.__contains__(self, translated)


class QueryEngine:
    """Batched reachability queries over one labeling index.

    Parameters
    ----------
    index:
        The labeling index to query: a
        :class:`~repro.labeling.base.ReachabilityIndex`, a
        :class:`~repro.skeleton.skl.SkeletonLabeledRun`, or any object with
        the same ``label_of`` / ``reaches`` / ``reaches_labels`` surface.
    cache_size:
        Capacity of the hot-pair LRU cache used by :meth:`reaches` and
        :meth:`reaches_ids`; ``0`` disables pair memoization.  Forced to
        ``0`` for indexes whose ``stable_labels`` attribute is ``False``
        (the traversal schemes), whose answers track the live graph and
        must not be memoized.
    spec_kernel:
        Optional precompiled :class:`~repro.engine.kernels.SpecKernel` for
        skeleton-labeled indexes.  Engines over many runs of one
        specification can share it so the spec-side compilation (the dense
        fall-through matrix) is paid once, not per engine; the provenance
        store passes its per-spec cache entry here.
    """

    def __init__(
        self,
        index: Any,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        spec_kernel: Optional[Any] = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self._index = index
        self._spec_kernel = spec_kernel
        # The kernel is compiled lazily on the first batch: the point-query
        # path never touches it, and building it can be expensive (label
        # arrays plus, for skeleton runs over non-TCM specs, an all-pairs
        # sweep of the specification).
        self._compiled_kernel = None
        # Traversal-style indexes answer from the live graph
        # (``stable_labels = False``), so memoizing their answers would let
        # point queries go stale after a graph mutation while batches stay
        # fresh; disable the pair cache for them.
        if not getattr(index, "stable_labels", True):
            cache_size = 0
        self._cache_size = cache_size
        # Whether the index exposes the vertex-handle surface; checked on
        # the class so the (possibly lazy) interner is not built here.
        self._has_handles = getattr(type(index), "interner", None) is not None
        # Snapshot of the index's update_version token (mutable indexes bump
        # it on every applied edge update).  Checked on each query entry
        # point; a moved token drops the compiled kernel and the memoized
        # pairs so a mutated index never serves a pre-update answer.
        self._index_version = getattr(index, "update_version", None)
        # The interner's id dict, bound on first point query so the hot
        # path pays two plain dict lookups, not a property chain.
        # (Handles survive edge surgery — only the vertex set invalidates
        # an interner — so this binding outlives edge updates.)
        self._id_map: Optional[dict] = None
        self._pair_cache: _HotPairCache = _HotPairCache(self._translate_pair)
        self.stats = EngineStats()

    def _check_version(self) -> None:
        """Invalidate derived state when the index absorbed an edge update.

        One attribute read per query on the fast path.  When the token
        moved, the compiled kernel (which snapshots labels at build) and
        every memoized hot pair are dropped; the next batch recompiles
        against the repaired labels.  A shared spec kernel is recompiled
        in place only when its own specification mutated.
        """
        current = getattr(self._index, "update_version", None)
        if current != self._index_version:
            self._index_version = current
            self._compiled_kernel = None
            self._pair_cache.clear()
            spec_kernel = self._spec_kernel
            if spec_kernel is not None and getattr(spec_kernel, "stale", False):
                self._spec_kernel = spec_kernel.recompiled()

    @property
    def _kernel(self):
        self._check_version()
        if self._compiled_kernel is None:
            self._compiled_kernel = build_kernel(
                self._index, spec_kernel=self._spec_kernel
            )
        return self._compiled_kernel

    def _translate_pair(self, key: object) -> Optional[tuple]:
        """Vertex pair -> handle pair, or ``None`` when it cannot resolve."""
        if not self._has_handles or not isinstance(key, tuple) or len(key) != 2:
            return None
        try:
            id_map = self._index.interner.id_map
        except LabelingError:
            # e.g. a stale traversal interner: membership must answer False,
            # not raise, for a pair that can no longer be resolved
            return None
        source_id = id_map.get(key[0])
        target_id = id_map.get(key[1])
        if source_id is None or target_id is None:
            return None
        return (source_id, target_id)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def index(self) -> Any:
        """The underlying labeling index."""
        return self._index

    @property
    def interner(self):
        """The index's vertex <-> handle table (handle-native callers' entry)."""
        if not self._has_handles:
            raise LabelingError(
                f"{type(self._index).__name__} does not expose vertex handles"
            )
        return self._index.interner

    @property
    def kernel_name(self) -> str:
        """Which batch kernel the engine compiled for this index."""
        return self._kernel.name

    @property
    def cache_size(self) -> int:
        """Capacity of the hot-pair LRU cache (0 = disabled)."""
        return self._cache_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        compiled = self._compiled_kernel.name if self._compiled_kernel else "(lazy)"
        return (
            f"{type(self).__name__}(index={type(self._index).__name__}, "
            f"kernel={compiled!r}, "
            f"cache={len(self._pair_cache)}/{self._cache_size})"
        )

    # ------------------------------------------------------------------
    # interning (the one-time object -> handle boundary)
    # ------------------------------------------------------------------
    def intern(self, vertex: Vertex) -> int:
        """Resolve one vertex to its integer handle (unknown vertices raise)."""
        intern = getattr(self._index, "intern", None)
        if intern is not None:
            return intern(vertex)
        identifier = self.interner.id_map.get(vertex)
        if identifier is None:
            raise LabelingError(
                f"vertex was not labeled by this index: {vertex!r}"
            )
        return identifier

    def intern_pairs(self, pairs: Iterable):
        """Map ``(source, target)`` vertex pairs to two parallel handle arrays.

        Do this once per workload; the arrays replay through
        :meth:`reaches_many_ids` with no further vertex resolution.
        """
        pairs = pairs if isinstance(pairs, (list, tuple)) else list(pairs)
        intern_pairs = getattr(self._index, "intern_pairs", None)
        if intern_pairs is not None:
            return intern_pairs(pairs)
        return intern_pair_arrays(self.interner.id_map, pairs)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reaches(self, source: Vertex, target: Vertex) -> bool:
        """Answer one query through the hot-pair LRU cache.

        The pair is interned once and cached under its handle pair, so the
        same hot pair is shared with :meth:`reaches_ids` callers.
        """
        stats = self.stats
        stats.queries += 1
        self._check_version()
        if self._cache_size == 0:
            return self._index.reaches(source, target)
        if self._has_handles:
            id_map = self._id_map
            if id_map is None:
                # Only reached with the cache enabled, i.e. stable labels:
                # the interner cannot go stale, so binding its dict is safe.
                id_map = self._id_map = self._index.interner.id_map
            source_id = id_map.get(source)
            target_id = id_map.get(target)
            if source_id is None or target_id is None:
                raise LabelingError(
                    "vertex was not labeled by this index: "
                    f"{source if source_id is None else target!r}"
                )
            return self._cached(
                (source_id, target_id),
                lambda: self._index.reaches(source, target),
            )
        # Duck-typed indexes without a handle surface: object-pair keys.
        return self._cached(
            (source, target), lambda: self._index.reaches(source, target)
        )

    def reaches_ids(self, source_id: int, target_id: int) -> bool:
        """Handle-native point query: cache hits skip vertex resolution entirely."""
        stats = self.stats
        stats.queries += 1
        self._check_version()
        reaches_ids = getattr(self._index, "reaches_ids", None)
        if reaches_ids is None:
            raise LabelingError(
                f"{type(self._index).__name__} does not expose vertex handles"
            )
        if self._cache_size == 0:
            return reaches_ids(source_id, target_id)
        return self._cached(
            (source_id, target_id), lambda: reaches_ids(source_id, target_id)
        )

    def _cached(self, key: tuple, compute) -> bool:
        cache = self._pair_cache
        cached = cache.get(key, _MISS)
        if cached is not _MISS:
            cache.move_to_end(key)
            self.stats.cache_hits += 1
            return cached
        answer = compute()
        cache[key] = answer
        if len(cache) > self._cache_size:
            cache.popitem(last=False)
        return answer

    def reaches_batch(self, pairs: Iterable) -> list[bool]:
        """Answer a batch of ``(source, target)`` queries via the kernel.

        Returns one boolean per input pair, in order.  Unknown vertices
        raise :class:`~repro.exceptions.LabelingError`, matching the
        per-pair API.
        """
        pairs = pairs if isinstance(pairs, (list, tuple)) else list(pairs)
        answers = self._kernel.batch(pairs)
        stats = self.stats
        stats.queries += len(pairs)
        stats.batches += 1
        return answers

    def reaches_many_ids(self, source_ids, target_ids):
        """Answer a pre-interned batch: two parallel handle arrays in, answers out.

        This is the replay hot path: no vertex objects are touched at all.
        Under a numpy kernel the result is the kernel's boolean array
        (convert with ``list(...)`` if needed); the pure-python fallback
        returns a list.  Out-of-range handles raise
        :class:`~repro.exceptions.LabelingError`.
        """
        answers = self._kernel.batch_ids(source_ids, target_ids)
        stats = self.stats
        stats.queries += len(answers)
        stats.batches += 1
        return answers

    def reaches_pairs(
        self, sources: Iterable[Vertex], targets: Iterable[Vertex]
    ) -> list[bool]:
        """Zip *sources* and *targets* into pairs and answer them as one batch."""
        return self.reaches_batch(list(zip(sources, targets)))

    def dependency_sweep(self, anchor: Vertex, *, downstream: bool = True) -> list:
        """Every labeled vertex *anchor* reaches (or that reaches it), itself excluded.

        The anchored whole-universe sweep behind ``DownstreamQuery`` /
        ``UpstreamQuery`` and the store's dependency queries: the anchor is
        interned once and one handle batch answers every candidate through
        the compiled kernel.  Requires the index's handle surface (the
        vertex universe is enumerated through its interner).
        """
        interner = self.interner
        anchor_id = self.intern(anchor)
        candidates = [i for i in range(len(interner)) if i != anchor_id]
        anchors = [anchor_id] * len(candidates)
        if downstream:
            answers = self.reaches_many_ids(anchors, candidates)
        else:
            answers = self.reaches_many_ids(candidates, anchors)
        vertex_at = interner.vertex_at
        return [
            vertex_at(candidate)
            for candidate, answer in zip(candidates, answers)
            if answer
        ]

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        """Drop every memoized hot pair."""
        self._pair_cache.clear()
