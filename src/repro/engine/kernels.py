"""Per-scheme batch evaluation kernels for the query engine.

A *kernel* is the compiled form of one labeling index: it resolves every
vertex's label (and any derived acceleration structure) **once** at build
time and then answers whole batches of queries with as little per-pair
Python dispatch as possible.  Kernels are compiled against the index's
:class:`~repro.graphs.handles.VertexInterner` — the flat arrays inside a
kernel are indexed by the same integer handles the index hands out — so
they offer two entry points:

* ``batch(pairs)`` — the object boundary: ``(source, target)`` vertex pairs
  are interned in one C-level pass and forwarded to the handle path;
* ``batch_ids(source_ids, target_ids)`` — the handle-native hot path:
  parallel integer-handle arrays go straight into the vectorized
  evaluation, with no per-query dictionary lookups at all.

:func:`build_kernel` picks the best kernel available for an index:

* ``numpy-skl`` — any index with the skeleton surface
  (:class:`~repro.skeleton.skl.SkeletonLabeledRun` and the provenance
  store's cached stored-run indexes, marked ``kernel_hint = "skl"``): the
  three context coordinates live in integer arrays, Algorithm 3's fork/loop
  fast path is evaluated vectorized, and the skeleton fall-through becomes
  one fancy-indexing probe of a dense specification reachability matrix
  (``nG²`` bytes, capped by :data:`DENSE_SPEC_LIMIT`; larger specs answer
  fall-throughs through the spec index's own batch path);
* ``numpy-tcm`` — :class:`~repro.labeling.tcm.TCMIndex`: the closure rows
  are bit-packed into a byte matrix so a query is a byte gather plus a
  shift, avoiding CPython's O(n)-digit big-integer shifts on large rows;
* ``numpy-interval`` — :class:`~repro.labeling.interval.IntervalTreeIndex`:
  ``post``/``low`` arrays compared vectorized;
* ``numpy-tree-cover`` — :class:`~repro.labeling.tree_cover.TreeCoverIndex`:
  the per-vertex interval *sets* are flattened into offset arrays and
  probed with one segment-encoded ``searchsorted`` per batch;
* ``numpy-chain`` — :class:`~repro.labeling.chain.ChainIndex`: the per-chain
  reach entries are flattened the same way and matched with one
  segment-encoded ``searchsorted``;
* ``numpy-2hop`` — :class:`~repro.labeling.twohop.TwoHopIndex`: the hop
  sets are bit-packed over the distinct hop centers, making a query a
  byte-row AND plus an any-reduction (capped by :data:`PACKED_HOP_LIMIT`);
* ``python-generic`` — everything else (and every index when numpy is not
  installed): a persistent vertex→label table plus the scheme's own
  ``reaches_many`` batch path (which for the traversal schemes groups
  queries by source over a :class:`~repro.graphs.csr.CSRGraph`).

Kernels are internal to :mod:`repro.engine`; the public surface is
:class:`~repro.engine.query.QueryEngine`.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.exceptions import LabelingError
from repro.graphs.handles import intern_pair_arrays
from repro.labeling.chain import ChainIndex
from repro.labeling.interval import IntervalTreeIndex
from repro.labeling.tcm import TCMIndex
from repro.labeling.tree_cover import TreeCoverIndex
from repro.labeling.twohop import TwoHopIndex

try:  # numpy accelerates the kernels but is strictly optional
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = [
    "build_kernel",
    "SpecKernel",
    "compile_spec_kernel",
    "dense_sweep_answers",
    "dense_pair_answers",
    "HAS_NUMPY",
    "DENSE_SPEC_LIMIT",
    "PACKED_TCM_LIMIT",
    "PACKED_HOP_LIMIT",
]

HAS_NUMPY = _np is not None

#: largest specification for which a dense nG x nG reachability matrix is
#: precomputed (one byte per pair; non-TCM schemes additionally pay nG²
#: predicate evaluations at build time)
DENSE_SPEC_LIMIT = 1_024

#: largest graph for which the direct-TCM kernel bit-packs the closure
#: matrix (n²/8 bytes — the same asymptotic budget the TCM labels already
#: occupy as big integers)
PACKED_TCM_LIMIT = 32_768

#: largest graph for which the 2-hop kernel bit-packs the hop sets over the
#: distinct hop centers (2·n·C/8 bytes with C <= n hop centers — the same
#: budget class as the packed TCM matrix)
PACKED_HOP_LIMIT = 32_768


def build_kernel(index: Any, *, spec_kernel: Optional["SpecKernel"] = None):
    """Compile *index* into the best available batch kernel.

    Dispatch reads the index's declared ``kernel_hint`` capability flag
    (see :func:`repro.labeling.base.capabilities_of`) rather than testing
    concrete classes, so any duck-typed target that declares a kernel
    family — the stored-run views, the online-run adapter — compiles the
    same specialized kernel as the class that family was written for.

    *spec_kernel* optionally supplies a precompiled :class:`SpecKernel`
    for skeleton-labeled targets, so sweeps over many runs of one
    specification pay the spec-side compilation exactly once.
    """
    hint = getattr(index, "kernel_hint", None)
    if _np is not None:
        if hint == "skl":
            return _SkeletonKernel(index, spec_kernel=spec_kernel)
        if hint == "tcm" and index.closure.vertex_count <= PACKED_TCM_LIMIT:
            return _PackedTCMKernel(index)
        if hint == "interval":
            return _IntervalKernel(index)
        if hint == "tree-cover":
            return _TreeCoverKernel(index)
        if hint == "chain":
            return _ChainKernel(index)
        if hint == "2-hop" and index.graph.vertex_count <= PACKED_HOP_LIMIT:
            return _TwoHopKernel(index)
    return _GenericKernel(index)


# ----------------------------------------------------------------------
# pure-python fallback
# ----------------------------------------------------------------------
class _GenericKernel:
    """Persistent label table + the scheme's own ``reaches_many`` loop.

    Always correct for any ``(D, φ, π)`` duck type.  For stable indexes
    each distinct vertex is resolved through ``label_of`` at most once over
    the kernel's lifetime; for indexes whose labels may change
    (``stable_labels = False`` — the traversal schemes, ``OnlineRun``) the
    table only lives for one batch, so every batch sees current labels.
    The handle path delegates to the index's own ``reaches_many_ids``
    (every :class:`~repro.labeling.base.VertexHandleAPI` host has one).
    """

    name = "python-generic"

    def __init__(self, index: Any) -> None:
        self._label_of = index.label_of
        self._persist_labels = getattr(index, "stable_labels", True)
        self._labels: dict = {}
        self._reaches_many_ids = getattr(index, "reaches_many_ids", None)
        reaches_many = getattr(index, "reaches_many", None)
        if reaches_many is None:
            reaches_labels = index.reaches_labels

            def reaches_many(label_pairs: list) -> list:
                return [reaches_labels(a, b) for a, b in label_pairs]

        self._reaches_many = reaches_many

    def batch(self, pairs: Sequence[tuple]) -> list:
        labels = self._labels if self._persist_labels else {}
        label_of = self._label_of
        label_pairs = []
        append = label_pairs.append
        missing = object()
        for source, target in pairs:
            source_label = labels.get(source, missing)
            if source_label is missing:
                source_label = labels[source] = label_of(source)
            target_label = labels.get(target, missing)
            if target_label is missing:
                target_label = labels[target] = label_of(target)
            append((source_label, target_label))
        return self._reaches_many(label_pairs)

    def batch_ids(self, source_ids, target_ids) -> list:
        if self._reaches_many_ids is None:
            raise LabelingError(
                "this index does not expose vertex handles "
                "(no reaches_many_ids); use the object-pair batch API"
            )
        return self._reaches_many_ids(source_ids, target_ids)


# ----------------------------------------------------------------------
# numpy kernels
# ----------------------------------------------------------------------
class _ArrayKernel:
    """Shared plumbing of the numpy kernels: interning and handle checks.

    Subclasses fill their flat arrays in the order of ``index.interner`` and
    implement ``_evaluate(a, b) -> bool ndarray`` over two handle arrays.
    ``batch`` answers object pairs (interned once, then the handle path);
    ``batch_ids`` answers pre-interned handle arrays directly and returns
    the numpy boolean array itself — the zero-copy hot path.
    """

    name = "numpy-abstract"

    def __init__(self, index: Any) -> None:
        self._interner = index.interner
        self._size = len(self._interner)

    def batch(self, pairs: Sequence[tuple]) -> list:
        a, b = intern_pair_arrays(self._interner.id_map, pairs)
        return self._evaluate(a, b).tolist()

    def batch_ids(self, source_ids, target_ids):
        a = _np.asarray(source_ids, dtype=_np.int64)
        b = _np.asarray(target_ids, dtype=_np.int64)
        if a.shape != b.shape or a.ndim != 1:
            raise LabelingError(
                "source_ids and target_ids must be parallel one-dimensional "
                f"sequences (got shapes {a.shape} and {b.shape})"
            )
        if a.size:
            for ids in (a, b):
                low = int(ids.min())
                high = int(ids.max())
                if low < 0 or high >= self._size:
                    raise LabelingError(
                        f"unknown vertex handle: {low if low < 0 else high!r}"
                    )
        return self._evaluate(a, b)

    def _evaluate(self, a, b):  # pragma: no cover - subclasses implement
        raise NotImplementedError


def _pack_closure_rows(rows: Sequence[int], size: int):
    """Bit-pack big-integer closure rows into a little-endian byte matrix."""
    row_bytes = max(1, (size + 7) // 8)
    buffer = b"".join(row.to_bytes(row_bytes, "little") for row in rows)
    return _np.frombuffer(buffer, dtype=_np.uint8).reshape(size, row_bytes)


def _spec_reachability_matrix(spec_index: Any):
    """Dense boolean reachability matrix of a specification index.

    Returns ``(matrix, position_of)`` where ``matrix[i, j]`` says whether
    the ``i``-th spec vertex reaches the ``j``-th.  For a TCM spec index the
    matrix is unpacked straight from the closure rows; any other scheme is
    evaluated all-pairs through its own ``reaches_many``.  ``(None, None)``
    is returned — making the skeleton kernel answer fall-through queries
    through the spec index itself — for specifications beyond
    :data:`DENSE_SPEC_LIMIT` (the dense matrix stores one byte per pair, so
    the cap bounds it at ~1 MiB) and for spec indexes whose answers track
    the live graph (``stable_labels = False``).
    """
    graph = spec_index.graph
    vertices = graph.vertices()
    size = len(vertices)
    if size > DENSE_SPEC_LIMIT:
        return None, None
    if not getattr(spec_index, "stable_labels", True):
        # Traversal-backed spec indexes answer from the live specification
        # graph; snapshotting them into a matrix would freeze answers the
        # per-pair path (and the pure-python kernel) keep fresh.
        return None, None
    if type(spec_index) is TCMIndex:
        closure = spec_index.closure
        packed = _pack_closure_rows(closure.rows, size)
        matrix = _np.unpackbits(packed, axis=1, bitorder="little")[:, :size]
        return matrix.astype(bool), dict(closure.index)
    kernel = (
        build_kernel(spec_index)
        if getattr(spec_index, "kernel_hint", None) not in (None, "skl")
        else None
    )
    if isinstance(kernel, _ArrayKernel):
        # The scheme compiles its own vectorized kernel (tree-cover, chain,
        # 2-hop, interval): evaluate the all-pairs matrix through it instead
        # of nG² per-pair predicate calls.  Handle order equals vertex order
        # (the interner is built over graph.vertices()).
        ids = _np.arange(size, dtype=_np.int64)
        matrix = _np.asarray(
            kernel.batch_ids(_np.repeat(ids, size), _np.tile(ids, size)),
            dtype=bool,
        ).reshape(size, size)
        return matrix, {vertex: i for i, vertex in enumerate(vertices)}
    labels = [spec_index.label_of(vertex) for vertex in vertices]
    matrix = _np.empty((size, size), dtype=bool)
    reaches_many = spec_index.reaches_many
    for i, source_label in enumerate(labels):
        matrix[i] = reaches_many([(source_label, target) for target in labels])
    return matrix, {vertex: i for i, vertex in enumerate(vertices)}


_MISSING = object()


def dense_sweep_answers(matrix, q1, q2, q3, orig, anchor, downstream):
    """Anchored Algorithm-3 sweep over raw arrays + a dense spec matrix.

    The one implementation of the dense sweep formula: called by
    :meth:`SpecKernel.sweep` and shipped (with picklable arguments only)
    to the parallel executor's process workers, so the two paths cannot
    drift.  The anchor's own row is forced ``False`` per the
    dependency-sweep contract.
    """
    q1a, q2a, q3a = int(q1[anchor]), int(q2[anchor]), int(q3[anchor])
    if downstream:
        fast_mask = (q2a - q2) * (q3a - q3) < 0
        fast = (q1a < q1) & (q3a > q3)
        skeleton = matrix[orig[anchor], orig]
    else:
        fast_mask = (q2 - q2a) * (q3 - q3a) < 0
        fast = (q1 < q1a) & (q3 > q3a)
        skeleton = matrix[orig, orig[anchor]]
    answers = _np.where(fast_mask, fast, skeleton)
    answers[anchor] = False
    return answers


def dense_pair_answers(matrix, q1, q2, q3, orig, source_rows, target_rows):
    """Arbitrary-pair Algorithm-3 evaluation over raw arrays + a dense matrix.

    The dense counterpart of :func:`dense_sweep_answers` for
    :meth:`SpecKernel.pairs`; shared with the process workers the same way.
    """
    q2s, q2t = q2[source_rows], q2[target_rows]
    q3s, q3t = q3[source_rows], q3[target_rows]
    fast_mask = (q2s - q2t) * (q3s - q3t) < 0
    fast = (q1[source_rows] < q1[target_rows]) & (q3s > q3t)
    skeleton = matrix[orig[source_rows], orig[target_rows]]
    return _np.where(fast_mask, fast, skeleton)


class SpecKernel:
    """The compiled skeleton fall-through evaluator of one specification index.

    Algorithm 3 splits every query into a coordinate fast path and a
    fall-through to the specification labels; this object is the compiled
    form of that fall-through.  Compiling it is the expensive, *per
    specification* part of a skeleton kernel (the dense ``nG x nG``
    reachability matrix — for non-TCM schemes, ``nG²`` predicate
    evaluations), so it is built **once** per ``(specification, scheme)``
    and shared: every skeleton kernel over runs of that specification
    (:func:`build_kernel`'s ``spec_kernel`` parameter, the provenance
    store's per-spec cache) and every cross-run dependency sweep streams
    per-run label arrays through the same instance.
    """

    def __init__(self, spec_index: Any) -> None:
        self.spec_index = spec_index
        # Update-version snapshot of the spec index at compile time: a
        # mutable spec that absorbs an edge update invalidates the dense
        # matrix and the cached labels, and `stale` flips True so every
        # sharing consumer (engines, the store's per-spec cache) knows to
        # swap in a `recompiled()` instance.
        self.spec_version = getattr(spec_index, "update_version", None)
        if _np is not None:
            self.matrix, self.position_of = _spec_reachability_matrix(spec_index)
        else:
            self.matrix, self.position_of = None, None
        self._label_cache: dict = {}

    @property
    def dense(self) -> bool:
        """Whether fall-throughs are answered from the dense spec matrix."""
        return self.matrix is not None

    @property
    def stale(self) -> bool:
        """Whether the specification mutated after this kernel compiled."""
        return getattr(self.spec_index, "update_version", None) != self.spec_version

    def recompiled(self) -> "SpecKernel":
        """A fresh kernel over the same (now mutated) specification index."""
        return SpecKernel(self.spec_index)

    def origin_positions(self, modules: Sequence):
        """Map origin module names to dense-matrix positions (dense only)."""
        return _np.fromiter(
            map(self.position_of.__getitem__, modules),
            dtype=_np.int64,
            count=len(modules),
        )

    def _label_of(self, module):
        """The spec label of one module, cached for stable spec indexes."""
        if not getattr(self.spec_index, "stable_labels", True):
            return self.spec_index.label_of(module)
        label = self._label_cache.get(module, _MISSING)
        if label is _MISSING:
            label = self._label_cache[module] = self.spec_index.label_of(module)
        return label

    def sweep(
        self,
        q1,
        q2,
        q3,
        origins: Sequence,
        anchor: int,
        *,
        downstream: bool = True,
    ):
        """Anchored Algorithm-3 sweep over one run's streamed label arrays.

        ``q1``/``q2``/``q3`` are the run's parallel context-coordinate
        arrays (one slot per execution, any row order), *origins* the
        parallel origin-module names, *anchor* the row of the anchored
        execution.  Returns one answer per row — ``reaches(anchor, row)``
        when *downstream*, ``reaches(row, anchor)`` otherwise — with the
        anchor's own row forced ``False``, matching the dependency-sweep
        contract of excluding the anchor itself.
        """
        if _np is not None:
            q1 = _np.asarray(q1, dtype=_np.int64)
            q2 = _np.asarray(q2, dtype=_np.int64)
            q3 = _np.asarray(q3, dtype=_np.int64)
            if self.matrix is not None:
                return dense_sweep_answers(
                    self.matrix,
                    q1,
                    q2,
                    q3,
                    self.origin_positions(origins),
                    anchor,
                    downstream,
                )
            q1a = int(q1[anchor])
            q2a = int(q2[anchor])
            q3a = int(q3[anchor])
            if downstream:
                fast_mask = (q2a - q2) * (q3a - q3) < 0
                fast = (q1a < q1) & (q3a > q3)
            else:
                fast_mask = (q2 - q2a) * (q3 - q3a) < 0
                fast = (q1 < q1a) & (q3 > q3a)
            answers = fast & fast_mask
            fallthrough = _np.flatnonzero(~fast_mask).tolist()
            if fallthrough:
                anchor_label = self._label_of(origins[anchor])
                if downstream:
                    pairs = [
                        (anchor_label, self._label_of(origins[i]))
                        for i in fallthrough
                    ]
                else:
                    pairs = [
                        (self._label_of(origins[i]), anchor_label)
                        for i in fallthrough
                    ]
                spec_answers = self.spec_index.reaches_many(pairs)
                for i, answer in zip(fallthrough, spec_answers):
                    answers[i] = answer
            answers[anchor] = False
            return answers
        return self._sweep_python(q1, q2, q3, origins, anchor, downstream)

    def pairs(self, q1, q2, q3, origins, source_rows, target_rows):
        """Arbitrary-pair Algorithm-3 evaluation over one run's streamed arrays.

        The generalization of :meth:`sweep` from one anchored row to any
        ``(source, target)`` row combination: *source_rows* / *target_rows*
        are parallel row-index sequences into the run's label arrays, and
        the answer per slot is ``reaches(source, target)`` — exactly the
        formula of the compiled skeleton kernel, so answers are
        bit-identical to a per-run engine over the same labels.  This is
        the per-run payload of a cross-run **batch** query: the same pairs
        asked of every run of a specification, each run contributing only
        its streamed label columns.
        """
        if _np is not None:
            q1 = _np.asarray(q1, dtype=_np.int64)
            q2 = _np.asarray(q2, dtype=_np.int64)
            q3 = _np.asarray(q3, dtype=_np.int64)
            s = _np.asarray(source_rows, dtype=_np.int64)
            t = _np.asarray(target_rows, dtype=_np.int64)
            if self.matrix is not None:
                return dense_pair_answers(
                    self.matrix, q1, q2, q3, self.origin_positions(origins), s, t
                )
            q2s, q2t = q2[s], q2[t]
            q3s, q3t = q3[s], q3[t]
            fast_mask = (q2s - q2t) * (q3s - q3t) < 0
            fast = (q1[s] < q1[t]) & (q3s > q3t)
            answers = fast & fast_mask
            fallthrough = _np.flatnonzero(~fast_mask).tolist()
            if fallthrough:
                label_pairs = [
                    (self._label_of(origins[s[i]]), self._label_of(origins[t[i]]))
                    for i in fallthrough
                ]
                for i, answer in zip(
                    fallthrough, self.spec_index.reaches_many(label_pairs)
                ):
                    answers[i] = answer
            return answers
        return self._pairs_python(q1, q2, q3, origins, source_rows, target_rows)

    def _pairs_python(self, q1, q2, q3, origins, source_rows, target_rows):
        """Pure-python pair evaluation used when numpy is unavailable."""
        answers = [False] * len(source_rows)
        fallthrough: list[int] = []
        for slot, (s, t) in enumerate(zip(source_rows, target_rows)):
            if (q2[s] - q2[t]) * (q3[s] - q3[t]) < 0:
                answers[slot] = q1[s] < q1[t] and q3[s] > q3[t]
            else:
                fallthrough.append(slot)
        if fallthrough:
            label_pairs = [
                (
                    self._label_of(origins[source_rows[i]]),
                    self._label_of(origins[target_rows[i]]),
                )
                for i in fallthrough
            ]
            for i, answer in zip(fallthrough, self.spec_index.reaches_many(label_pairs)):
                answers[i] = answer
        return answers

    def pair_fallthrough(self, source_origin, target_origin) -> bool:
        """One scalar skeleton fall-through check (the non-fast-path case)."""
        if self.matrix is not None:
            return bool(
                self.matrix[
                    self.position_of[source_origin], self.position_of[target_origin]
                ]
            )
        return bool(
            self.spec_index.reaches_labels(
                self._label_of(source_origin), self._label_of(target_origin)
            )
        )

    def _sweep_python(self, q1, q2, q3, origins, anchor, downstream):
        """Pure-python sweep used when numpy is unavailable."""
        size = len(q1)
        answers = [False] * size
        q1a, q2a, q3a = q1[anchor], q2[anchor], q3[anchor]
        fallthrough: list[int] = []
        for i in range(size):
            if downstream:
                mask = (q2a - q2[i]) * (q3a - q3[i]) < 0
                fast = q1a < q1[i] and q3a > q3[i]
            else:
                mask = (q2[i] - q2a) * (q3[i] - q3a) < 0
                fast = q1[i] < q1a and q3[i] > q3a
            if mask:
                answers[i] = fast
            else:
                fallthrough.append(i)
        if fallthrough:
            anchor_label = self._label_of(origins[anchor])
            if downstream:
                pairs = [
                    (anchor_label, self._label_of(origins[i])) for i in fallthrough
                ]
            else:
                pairs = [
                    (self._label_of(origins[i]), anchor_label) for i in fallthrough
                ]
            for i, answer in zip(fallthrough, self.spec_index.reaches_many(pairs)):
                answers[i] = answer
        answers[anchor] = False
        return answers


def compile_spec_kernel(spec_index: Any) -> SpecKernel:
    """Compile the shared fall-through evaluator of one specification index."""
    return SpecKernel(spec_index)


class _SkeletonKernel(_ArrayKernel):
    """Vectorized Algorithm 3 over a skeleton-labeled run."""

    name = "numpy-skl"

    def __init__(self, labeled: Any, *, spec_kernel: Optional[SpecKernel] = None) -> None:
        super().__init__(labeled)
        label_of = labeled.label_of
        labels = [label_of(vertex) for vertex in self._interner]
        size = len(labels)
        q1 = _np.empty(size, dtype=_np.int64)
        q2 = _np.empty(size, dtype=_np.int64)
        q3 = _np.empty(size, dtype=_np.int64)
        for i, label in enumerate(labels):
            q1[i] = label.q1
            q2[i] = label.q2
            q3[i] = label.q3
        self._q1, self._q2, self._q3 = q1, q2, q3
        spec_index = labeled.spec_index
        if spec_kernel is None or spec_kernel.spec_index is not spec_index:
            # A shared kernel is only sound for the exact spec index the
            # run's fall-throughs consult; compile a private one otherwise.
            spec_kernel = SpecKernel(spec_index)
        matrix = spec_kernel.matrix
        self._matrix = matrix
        if matrix is not None:
            position_of = spec_kernel.position_of
            orig = _np.empty(size, dtype=_np.int64)
            for i, vertex in enumerate(self._interner):
                orig[i] = position_of[vertex.module]
            self._orig = orig
            self._skeletons: Optional[list] = None
            self._spec_reaches_many = None
        else:
            # Specification too large for a dense matrix: keep the skeleton
            # labels and answer fall-through queries through the spec index.
            self._orig = None
            self._skeletons = [label.skeleton for label in labels]
            self._spec_reaches_many = spec_index.reaches_many

    def _evaluate(self, a, b):
        q2a, q2b = self._q2[a], self._q2[b]
        q3a, q3b = self._q3[a], self._q3[b]
        fast_mask = (q2a - q2b) * (q3a - q3b) < 0
        fast_answers = (self._q1[a] < self._q1[b]) & (q3a > q3b)
        if self._matrix is not None:
            skeleton_answers = self._matrix[self._orig[a], self._orig[b]]
            return _np.where(fast_mask, fast_answers, skeleton_answers)
        answers = fast_answers & fast_mask
        fallthrough = _np.flatnonzero(~fast_mask)
        if fallthrough.size:
            skeletons = self._skeletons
            label_pairs = [
                (skeletons[a[i]], skeletons[b[i]]) for i in fallthrough.tolist()
            ]
            for i, answer in zip(
                fallthrough.tolist(), self._spec_reaches_many(label_pairs)
            ):
                answers[i] = answer
        return answers


class _PackedTCMKernel(_ArrayKernel):
    """Direct TCM queries as byte gathers on a bit-packed closure matrix."""

    name = "numpy-tcm"

    def __init__(self, index: TCMIndex) -> None:
        super().__init__(index)
        closure = index.closure
        self._packed = _pack_closure_rows(closure.rows, closure.vertex_count)

    def _evaluate(self, a, b):
        bits = (self._packed[a, b >> 3] >> (b & 7)) & 1
        return bits != 0


class _IntervalKernel(_ArrayKernel):
    """Vectorized interval containment tests."""

    name = "numpy-interval"

    def __init__(self, index: IntervalTreeIndex) -> None:
        super().__init__(index)
        size = self._size
        post = _np.empty(size, dtype=_np.int64)
        low = _np.empty(size, dtype=_np.int64)
        for i, vertex in enumerate(self._interner):
            label = index.label_of(vertex)
            post[i] = label.post
            low[i] = label.low
        self._post, self._low = post, low

    def _evaluate(self, a, b):
        post_b = self._post[b]
        return (self._low[a] <= post_b) & (post_b <= self._post[a])


class _TreeCoverKernel(_ArrayKernel):
    """Tree-cover interval *sets* flattened into offset arrays.

    Vertex ``i``'s intervals occupy slots ``offsets[i] : offsets[i + 1]`` of
    the flat ``low`` / ``high`` arrays.  Because each vertex's intervals are
    sorted and disjoint, encoding every slot's ``low`` as
    ``owner * stride + low`` yields one globally sorted array, so a whole
    batch is answered with a single ``searchsorted``: the candidate interval
    for query ``(u, post(v))`` is the last slot whose encoded ``low`` does
    not exceed ``u * stride + post(v)``, and the query holds iff that slot
    still belongs to ``u``'s segment and covers ``post(v)``.
    """

    name = "numpy-tree-cover"

    def __init__(self, index: TreeCoverIndex) -> None:
        super().__init__(index)
        labels = [index.label_of(vertex) for vertex in self._interner]
        self._post = _np.fromiter(
            (label.post for label in labels), dtype=_np.int64, count=self._size
        )
        counts = [len(label.intervals) for label in labels]
        offsets = _np.zeros(self._size + 1, dtype=_np.int64)
        _np.cumsum(counts, out=offsets[1:])
        flat = [pair for label in labels for pair in label.intervals]
        lows = _np.fromiter((low for low, _ in flat), dtype=_np.int64, count=len(flat))
        highs = _np.fromiter((high for _, high in flat), dtype=_np.int64, count=len(flat))
        # postorder numbers are 1..n, so n + 2 separates the segments
        self._stride = self._size + 2
        owners = _np.repeat(_np.arange(self._size, dtype=_np.int64), counts)
        self._encoded_low = owners * self._stride + lows
        self._offsets = offsets
        self._high = highs

    def _evaluate(self, a, b):
        post_b = self._post[b]
        keys = a * self._stride + post_b
        slots = _np.searchsorted(self._encoded_low, keys, side="right") - 1
        valid = slots >= self._offsets[a]
        slots = _np.where(valid, slots, 0)
        return valid & (self._high[slots] >= post_b)


class _ChainKernel(_ArrayKernel):
    """Chain reach entries flattened into offset arrays.

    Each vertex's ``reach`` entries are sorted by chain id, so encoding a
    slot as ``owner * chain_count + chain`` yields a globally sorted array
    with at most one slot per ``(owner, chain)`` key; one exact-match
    ``searchsorted`` per batch finds, for every query ``(u, v)``, ``u``'s
    earliest reachable position on ``v``'s chain (or nothing).
    """

    name = "numpy-chain"

    def __init__(self, index: ChainIndex) -> None:
        super().__init__(index)
        labels = [index.label_of(vertex) for vertex in self._interner]
        self._chain = _np.fromiter(
            (label.chain for label in labels), dtype=_np.int64, count=self._size
        )
        self._position = _np.fromiter(
            (label.position for label in labels), dtype=_np.int64, count=self._size
        )
        counts = [len(label.reach) for label in labels]
        flat = [entry for label in labels for entry in label.reach]
        chains = _np.fromiter((c for c, _ in flat), dtype=_np.int64, count=len(flat))
        positions = _np.fromiter((p for _, p in flat), dtype=_np.int64, count=len(flat))
        self._stride = max(1, index.chain_count)
        owners = _np.repeat(_np.arange(self._size, dtype=_np.int64), counts)
        self._encoded = owners * self._stride + chains
        self._reach_position = positions

    def _evaluate(self, a, b):
        keys = a * self._stride + self._chain[b]
        if not len(self._encoded):  # empty graph edge case
            return _np.zeros(len(a), dtype=bool)
        slots = _np.searchsorted(self._encoded, keys, side="left")
        clipped = _np.minimum(slots, len(self._encoded) - 1)
        hit = (slots < len(self._encoded)) & (self._encoded[clipped] == keys)
        return hit & (self._reach_position[clipped] <= self._position[b])


class _TwoHopKernel(_ArrayKernel):
    """2-hop queries as byte-row intersections of bit-packed hop sets."""

    name = "numpy-2hop"

    def __init__(self, index: TwoHopIndex) -> None:
        super().__init__(index)
        labels = [index.label_of(vertex) for vertex in self._interner]
        centers: dict = {}
        for label in labels:
            for center in sorted(
                label.out_hops | label.in_hops, key=self._interner.id_of
            ):
                centers.setdefault(center, len(centers))
        row_bytes = max(1, (len(centers) + 7) // 8)
        out_masks = _np.zeros((self._size, row_bytes), dtype=_np.uint8)
        in_masks = _np.zeros((self._size, row_bytes), dtype=_np.uint8)
        for i, label in enumerate(labels):
            for center in label.out_hops:
                position = centers[center]
                out_masks[i, position >> 3] |= 1 << (position & 7)
            for center in label.in_hops:
                position = centers[center]
                in_masks[i, position >> 3] |= 1 << (position & 7)
        self._out = out_masks
        self._in = in_masks

    def _evaluate(self, a, b):
        return (self._out[a] & self._in[b]).any(axis=1)
