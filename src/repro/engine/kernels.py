"""Per-scheme batch evaluation kernels for the query engine.

A *kernel* is the compiled form of one labeling index: it resolves every
vertex's label (and any derived acceleration structure) **once** at build
time and then answers whole batches of ``(source, target)`` pairs with as
little per-pair Python dispatch as possible.  :func:`build_kernel` picks the
best kernel available for an index:

* ``numpy-skl`` — :class:`~repro.skeleton.skl.SkeletonLabeledRun`: the three
  context coordinates live in integer arrays, Algorithm 3's fork/loop fast
  path is evaluated vectorized, and the skeleton fall-through becomes one
  fancy-indexing probe of a dense specification reachability matrix
  (``nG²`` bytes, capped by :data:`DENSE_SPEC_LIMIT`; larger specs answer
  fall-throughs through the spec index's own batch path);
* ``numpy-tcm`` — :class:`~repro.labeling.tcm.TCMIndex`: the closure rows
  are bit-packed into a byte matrix so a query is a byte gather plus a
  shift, avoiding CPython's O(n)-digit big-integer shifts on large rows;
* ``numpy-interval`` — :class:`~repro.labeling.interval.IntervalTreeIndex`:
  ``post``/``low`` arrays compared vectorized;
* ``python-generic`` — everything else (and every index when numpy is not
  installed): a persistent vertex→label table plus the scheme's own
  ``reaches_many`` batch path (which for the traversal schemes groups
  queries by source over a :class:`~repro.graphs.csr.CSRGraph`).

Kernels are internal to :mod:`repro.engine`; the public surface is
:class:`~repro.engine.query.QueryEngine`.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Optional, Sequence

from repro.exceptions import LabelingError
from repro.labeling.interval import IntervalTreeIndex
from repro.labeling.tcm import TCMIndex
from repro.skeleton.skl import SkeletonLabeledRun

try:  # numpy accelerates the kernels but is strictly optional
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = ["build_kernel", "HAS_NUMPY", "DENSE_SPEC_LIMIT", "PACKED_TCM_LIMIT"]

HAS_NUMPY = _np is not None

#: largest specification for which a dense nG x nG reachability matrix is
#: precomputed (one byte per pair; non-TCM schemes additionally pay nG²
#: predicate evaluations at build time)
DENSE_SPEC_LIMIT = 1_024

#: largest graph for which the direct-TCM kernel bit-packs the closure
#: matrix (n²/8 bytes — the same asymptotic budget the TCM labels already
#: occupy as big integers)
PACKED_TCM_LIMIT = 32_768


def build_kernel(index: Any):
    """Compile *index* into the best available batch kernel."""
    if _np is not None:
        if type(index) is SkeletonLabeledRun:
            return _SkeletonKernel(index)
        if type(index) is TCMIndex and index.closure.vertex_count <= PACKED_TCM_LIMIT:
            return _PackedTCMKernel(index)
        if type(index) is IntervalTreeIndex:
            return _IntervalKernel(index)
    return _GenericKernel(index)


# ----------------------------------------------------------------------
# pure-python fallback
# ----------------------------------------------------------------------
class _GenericKernel:
    """Persistent label table + the scheme's own ``reaches_many`` loop.

    Always correct for any ``(D, φ, π)`` duck type.  For stable indexes
    each distinct vertex is resolved through ``label_of`` at most once over
    the kernel's lifetime; for indexes whose labels may change
    (``stable_labels = False`` — the traversal schemes, ``OnlineRun``) the
    table only lives for one batch, so every batch sees current labels.
    """

    name = "python-generic"

    def __init__(self, index: Any) -> None:
        self._label_of = index.label_of
        self._persist_labels = getattr(index, "stable_labels", True)
        self._labels: dict = {}
        reaches_many = getattr(index, "reaches_many", None)
        if reaches_many is None:
            reaches_labels = index.reaches_labels

            def reaches_many(label_pairs: list) -> list:
                return [reaches_labels(a, b) for a, b in label_pairs]

        self._reaches_many = reaches_many

    def batch(self, pairs: Sequence[tuple]) -> list:
        labels = self._labels if self._persist_labels else {}
        label_of = self._label_of
        label_pairs = []
        append = label_pairs.append
        missing = object()
        for source, target in pairs:
            source_label = labels.get(source, missing)
            if source_label is missing:
                source_label = labels[source] = label_of(source)
            target_label = labels.get(target, missing)
            if target_label is missing:
                target_label = labels[target] = label_of(target)
            append((source_label, target_label))
        return self._reaches_many(label_pairs)


# ----------------------------------------------------------------------
# numpy kernels
# ----------------------------------------------------------------------
def _resolve_id_arrays(ids: dict, pairs: Sequence[tuple]):
    """Map vertex pairs to two integer-id arrays in one C-level pass."""
    try:
        flat = _np.fromiter(
            map(ids.__getitem__, chain.from_iterable(pairs)),
            dtype=_np.int64,
            count=2 * len(pairs),
        )
    except KeyError as exc:
        raise LabelingError(
            f"vertex was not labeled by this index: {exc.args[0]!r}"
        ) from None
    return flat[0::2], flat[1::2]


def _pack_closure_rows(rows: Sequence[int], size: int):
    """Bit-pack big-integer closure rows into a little-endian byte matrix."""
    row_bytes = max(1, (size + 7) // 8)
    buffer = b"".join(row.to_bytes(row_bytes, "little") for row in rows)
    return _np.frombuffer(buffer, dtype=_np.uint8).reshape(size, row_bytes)


def _spec_reachability_matrix(spec_index: Any):
    """Dense boolean reachability matrix of a specification index.

    Returns ``(matrix, position_of)`` where ``matrix[i, j]`` says whether
    the ``i``-th spec vertex reaches the ``j``-th.  For a TCM spec index the
    matrix is unpacked straight from the closure rows; any other scheme is
    evaluated all-pairs through its own ``reaches_many``.  ``(None, None)``
    is returned — making the skeleton kernel answer fall-through queries
    through the spec index itself — for specifications beyond
    :data:`DENSE_SPEC_LIMIT` (the dense matrix stores one byte per pair, so
    the cap bounds it at ~1 MiB) and for spec indexes whose answers track
    the live graph (``stable_labels = False``).
    """
    graph = spec_index.graph
    vertices = graph.vertices()
    size = len(vertices)
    if size > DENSE_SPEC_LIMIT:
        return None, None
    if not getattr(spec_index, "stable_labels", True):
        # Traversal-backed spec indexes answer from the live specification
        # graph; snapshotting them into a matrix would freeze answers the
        # per-pair path (and the pure-python kernel) keep fresh.
        return None, None
    if type(spec_index) is TCMIndex:
        closure = spec_index.closure
        packed = _pack_closure_rows(closure.rows, size)
        matrix = _np.unpackbits(packed, axis=1, bitorder="little")[:, :size]
        return matrix.astype(bool), dict(closure.index)
    labels = [spec_index.label_of(vertex) for vertex in vertices]
    matrix = _np.empty((size, size), dtype=bool)
    reaches_many = spec_index.reaches_many
    for i, source_label in enumerate(labels):
        matrix[i] = reaches_many([(source_label, target) for target in labels])
    return matrix, {vertex: i for i, vertex in enumerate(vertices)}


class _SkeletonKernel:
    """Vectorized Algorithm 3 over a skeleton-labeled run."""

    name = "numpy-skl"

    def __init__(self, labeled: SkeletonLabeledRun) -> None:
        labels = labeled.labels()
        vertices = list(labels)
        self._ids = {vertex: i for i, vertex in enumerate(vertices)}
        size = len(vertices)
        q1 = _np.empty(size, dtype=_np.int64)
        q2 = _np.empty(size, dtype=_np.int64)
        q3 = _np.empty(size, dtype=_np.int64)
        for i, vertex in enumerate(vertices):
            label = labels[vertex]
            q1[i] = label.q1
            q2[i] = label.q2
            q3[i] = label.q3
        self._q1, self._q2, self._q3 = q1, q2, q3
        spec_index = labeled.spec_index
        matrix, position_of = _spec_reachability_matrix(spec_index)
        self._matrix = matrix
        if matrix is not None:
            orig = _np.empty(size, dtype=_np.int64)
            for i, vertex in enumerate(vertices):
                orig[i] = position_of[vertex.module]
            self._orig = orig
            self._skeletons: Optional[list] = None
            self._spec_reaches_many = None
        else:
            # Specification too large for a dense matrix: keep the skeleton
            # labels and answer fall-through queries through the spec index.
            self._orig = None
            self._skeletons = [labels[vertex].skeleton for vertex in vertices]
            self._spec_reaches_many = spec_index.reaches_many

    def batch(self, pairs: Sequence[tuple]) -> list:
        a, b = _resolve_id_arrays(self._ids, pairs)
        q2a, q2b = self._q2[a], self._q2[b]
        q3a, q3b = self._q3[a], self._q3[b]
        fast_mask = (q2a - q2b) * (q3a - q3b) < 0
        fast_answers = (self._q1[a] < self._q1[b]) & (q3a > q3b)
        if self._matrix is not None:
            skeleton_answers = self._matrix[self._orig[a], self._orig[b]]
            return _np.where(fast_mask, fast_answers, skeleton_answers).tolist()
        answers = fast_answers & fast_mask
        fallthrough = _np.flatnonzero(~fast_mask)
        if fallthrough.size:
            skeletons = self._skeletons
            label_pairs = [
                (skeletons[a[i]], skeletons[b[i]]) for i in fallthrough.tolist()
            ]
            for i, answer in zip(
                fallthrough.tolist(), self._spec_reaches_many(label_pairs)
            ):
                answers[i] = answer
        return answers.tolist()


class _PackedTCMKernel:
    """Direct TCM queries as byte gathers on a bit-packed closure matrix."""

    name = "numpy-tcm"

    def __init__(self, index: TCMIndex) -> None:
        closure = index.closure
        self._ids = {vertex: i for i, vertex in enumerate(closure.order)}
        self._packed = _pack_closure_rows(closure.rows, closure.vertex_count)

    def batch(self, pairs: Sequence[tuple]) -> list:
        a, b = _resolve_id_arrays(self._ids, pairs)
        bits = (self._packed[a, b >> 3] >> (b & 7)) & 1
        return (bits != 0).tolist()


class _IntervalKernel:
    """Vectorized interval containment tests."""

    name = "numpy-interval"

    def __init__(self, index: IntervalTreeIndex) -> None:
        vertices = index.graph.vertices()
        self._ids = {vertex: i for i, vertex in enumerate(vertices)}
        size = len(vertices)
        post = _np.empty(size, dtype=_np.int64)
        low = _np.empty(size, dtype=_np.int64)
        for i, vertex in enumerate(vertices):
            label = index.label_of(vertex)
            post[i] = label.post
            low[i] = label.low
        self._post, self._low = post, low

    def batch(self, pairs: Sequence[tuple]) -> list:
        a, b = _resolve_id_arrays(self._ids, pairs)
        post_b = self._post[b]
        return ((self._low[a] <= post_b) & (post_b <= self._post[a])).tolist()
