"""The persistent ingest/executor worker pool.

Before this module, every parallel operation span up its own
``concurrent.futures`` pool and tore it down when the operation returned:
a monitoring loop re-executing one compiled cross-run plan paid pool
startup per execution, and in process mode additionally re-pickled the
dense per-specification kernel matrices into the fresh workers every time.
The write path had no pool at all — every labeled run funneled through one
``executemany`` on a single connection.

:class:`PersistentWorkerPool` is the shared fix: a **lazily started,
explicitly closeable** pool that lives as long as its owner (a
:class:`~repro.storage.store.ProvenanceStore` or
:class:`~repro.storage.sharded.ShardedProvenanceStore` — see
:class:`WorkerPoolOwner`) wants it to:

* nothing is spawned at construction — the first :meth:`submit` creates
  the underlying ``ThreadPoolExecutor`` / ``ProcessPoolExecutor``, so
  stores that never go parallel never own a thread;
* the pool is reused across operations: the sharded ingest service
  commits per-shard run batches through it, and
  :class:`~repro.engine.parallel.CrossRunExecutor` fans read chunks over
  it, so repeated plan executions stop paying pool startup;
* :attr:`payload_cache` memoizes expensive picklable payloads (the dense
  spec matrices process-mode tasks ship) for the pool's lifetime — the
  serialization happens once per kernel, not once per execution;
* :meth:`close` shuts the workers down deterministically (idempotent);
  the owner's ``close()`` calls it, and a pool can also be used as a
  context manager.

Thread pools are the default (sqlite3 and numpy release the GIL on the
hot paths); ``mode="process"`` builds a process pool for the executor's
``REPRO_PARALLEL=process`` path.  One owner can hold one pool per mode.
"""

from __future__ import annotations

import threading
import warnings
import weakref
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, Optional

from repro.faults import fault_point

__all__ = ["PersistentWorkerPool", "WorkerPoolOwner", "DEFAULT_POOL_WORKERS"]

#: pool size when the owner does not pin one; matches the executor's
#: MAX_AUTO_WORKERS cap so a store-owned pool never undersizes an
#: auto-sized cross-run execution
DEFAULT_POOL_WORKERS = 8


def _reap_leaked_executor(executor: Executor, owner: str, mode: str) -> None:
    """Finalizer for pools dropped without :meth:`PersistentWorkerPool.close`.

    Runs when the pool is garbage-collected (or at interpreter exit via the
    ``weakref.finalize`` atexit hook), so a store that goes out of scope
    without ``close()`` cannot strand non-daemon worker threads or child
    processes.  The warning names the owner so the leak is attributable.
    """
    warnings.warn(
        f"PersistentWorkerPool(mode={mode!r}) owned by {owner} was never "
        "closed; shutting its workers down at cleanup. Call close() on the "
        "owning store (or use it as a context manager).",
        ResourceWarning,
        stacklevel=2,
        source=executor,
    )
    executor.shutdown(wait=True)


class PersistentWorkerPool:
    """A lazily started, explicitly closeable worker pool.

    Parameters
    ----------
    mode:
        ``"thread"`` (default) or ``"process"``.
    workers:
        Maximum worker count; ``None`` uses :data:`DEFAULT_POOL_WORKERS`.
    owner:
        Human-readable description of whoever is responsible for closing
        the pool; named in the ``ResourceWarning`` if the pool leaks.
    """

    def __init__(
        self,
        *,
        mode: str = "thread",
        workers: Optional[int] = None,
        owner: str = "an unnamed owner",
    ) -> None:
        if mode not in ("thread", "process"):
            raise ValueError(f"pool mode must be 'thread' or 'process', got {mode!r}")
        if workers is not None and int(workers) < 1:
            raise ValueError(f"workers must be a positive integer, got {workers}")
        self.mode = mode
        self.workers = int(workers) if workers is not None else DEFAULT_POOL_WORKERS
        self.owner = str(owner)
        self._executor: Optional[Executor] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._lock = threading.Lock()
        self._closed = False
        #: expensive picklable payloads cached for the pool's lifetime,
        #: keyed by the caller (CrossRunExecutor keys dense spec-kernel
        #: blobs by kernel identity) — the point is to serialize once per
        #: pool, not once per submitted task
        self.payload_cache: dict = {}
        #: how many times the underlying executor was created (0 until the
        #: first submit; stays 1 however many operations reuse the pool)
        self.starts = 0
        #: tasks submitted over the pool's lifetime
        self.tasks_submitted = 0
        #: how many broken executors were discarded and lazily replaced
        #: (a worker process dying poisons the whole ProcessPoolExecutor;
        #: submit() detects that, swaps in a fresh one and retries once)
        self.restarts = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """Whether the underlying executor exists (first submit starts it)."""
        return self._executor is not None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def _ensure_executor(self) -> Executor:
        executor = self._executor
        if executor is not None:
            return executor
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed PersistentWorkerPool")
            if self._executor is None:
                if self.mode == "process":
                    self._executor = ProcessPoolExecutor(max_workers=self.workers)
                else:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-pool",
                    )
                self.starts += 1
                # leak safety net: if the pool is dropped without close(),
                # this fires on GC or at interpreter exit and shuts the
                # workers down instead of stranding them; close() detaches
                # it so the clean path stays silent
                self._finalizer = weakref.finalize(
                    self, _reap_leaked_executor, self._executor, self.owner, self.mode
                )
            return self._executor

    def _discard_broken(self) -> None:
        """Drop a poisoned executor so the next submit builds a fresh one.

        A worker process dying (OOM kill, segfault, ``os._exit``) breaks
        the whole ``ProcessPoolExecutor``: every later submit raises
        ``BrokenProcessPool`` forever.  Swapping the executor out — rather
        than marking the pool unusable — keeps the pool's contract
        ("submit works until close()") across worker deaths.
        """
        with self._lock:
            if self._closed:
                return
            executor, self._executor = self._executor, None
            finalizer, self._finalizer = self._finalizer, None
            self.restarts += 1
        if finalizer is not None:
            finalizer.detach()
        if executor is not None:
            # the executor is broken: its workers are already gone, so a
            # non-waiting shutdown just releases the bookkeeping
            executor.shutdown(wait=False)

    def submit(self, fn: Callable, /, *args: Any, **kwargs: Any):
        """Schedule ``fn(*args, **kwargs)``; starts the pool on first use.

        A broken executor (a worker process died) is detected here,
        discarded, and lazily replaced — the resubmission below is the
        only retry; a second failure propagates.
        """
        if self._closed:
            raise RuntimeError("cannot submit to a closed PersistentWorkerPool")
        fault_point("pool.submit")
        try:
            future = self._ensure_executor().submit(fn, *args, **kwargs)
        except BrokenExecutor:
            self._discard_broken()
            future = self._ensure_executor().submit(fn, *args, **kwargs)
        self.tasks_submitted += 1
        return future

    def close(self) -> None:
        """Shut the workers down (idempotent; waits for running tasks)."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
            finalizer, self._finalizer = self._finalizer, None
            self.payload_cache.clear()
        if finalizer is not None:
            finalizer.detach()
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def stats(self) -> dict:
        """Lifetime counters (surfaced through the owners' cache_stats)."""
        return {
            "mode": self.mode,
            "workers": self.workers,
            "started": self.started,
            "starts": self.starts,
            "restarts": self.restarts,
            "tasks_submitted": self.tasks_submitted,
            "payloads_cached": len(self.payload_cache),
            "closed": self._closed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else ("started" if self.started else "idle")
        return (
            f"PersistentWorkerPool(mode={self.mode!r}, workers={self.workers}, "
            f"{state}, tasks={self.tasks_submitted})"
        )


#: guards every owner's lazy pool creation: pools are created rarely, so
#: one shared lock is cheaper than a lock per owner instance (a mixin has
#: no __init__ of its own to build one in)
_OWNER_LOCK = threading.Lock()


class WorkerPoolOwner:
    """Mixin: lazily created, explicitly closeable worker pools per mode.

    Both provenance stores mix this in; anything holding a store can ask
    ``store.worker_pool()`` for the shared pool instead of spinning up its
    own.  ``close_pools()`` is called from the owners' ``close()``.
    """

    _pools: Optional[dict[str, PersistentWorkerPool]] = None

    def worker_pool(self, mode: str = "thread") -> PersistentWorkerPool:
        """The owner's persistent pool for *mode*, created (unstarted) lazily.

        Thread-safe: two threads racing the first request for a mode get
        the same pool (an orphaned second pool would escape
        :meth:`close_pools`).
        """
        with _OWNER_LOCK:
            if self._pools is None:
                self._pools = {}
            pool = self._pools.get(mode)
            if pool is None or pool.closed:
                pool = self._pools[mode] = PersistentWorkerPool(
                    mode=mode,
                    workers=self.pool_workers(),
                    owner=self.pool_owner_description(),
                )
            return pool

    def pool_workers(self) -> Optional[int]:
        """Pool size for newly created pools (``None`` = the default cap)."""
        return None

    def pool_owner_description(self) -> str:
        """Who to blame in the leak warning; stores override with their path."""
        return type(self).__name__

    def close_pools(self) -> None:
        """Close every pool this owner created (idempotent)."""
        with _OWNER_LOCK:
            pools, self._pools = self._pools, {}
        if pools:
            for pool in pools.values():
                pool.close()

    def pool_stats(self) -> dict:
        """Per-mode pool counters (empty until a pool was requested)."""
        if not self._pools:
            return {}
        return {mode: pool.stats() for mode, pool in self._pools.items()}
