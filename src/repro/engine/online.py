"""The incrementally maintained batch kernel over a still-executing run.

PR 3 fronted :class:`~repro.skeleton.online.OnlineRun` through the session
by recompiling a full engine whenever the run's version token moved — every
appended execution threw away the compiled label arrays and rebuilt them
from scratch, an O(nR) cost per event that dominates append-heavy
monitoring workloads.  :class:`OnlineKernel` patches the compiled structure
instead (the FO+MOD-under-updates principle of incremental view
maintenance):

* the three context-coordinate columns live in capacity-doubling arrays in
  **append order** — an execution recorded into a scope that is already
  nonempty cannot move any existing label (positions are counted over the
  nonempty ``+`` nodes only, and adding a vertex to a counted node changes
  no position), so the new row is appended **in place** and only the
  hot-pair LRU is invalidated;
* a structural change that can move existing labels — a scope turning
  nonempty for the first time — triggers a full rebuild of the arrays;
* the skeleton fall-through runs through a private
  :class:`~repro.engine.kernels.SpecKernel` compiled once (the
  specification never changes while a run executes).

Vertex handles equal append order, so unlike the per-rebuild engines this
kernel's handles stay valid for the run's whole lifetime.  The kernel
exposes the engine surface the session planner drives (``reaches`` /
``reaches_batch`` / ``reaches_many_ids`` / ``intern_pairs`` /
``dependency_sweep``) and counts its maintenance work in :attr:`stats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import islice
from typing import Any, Iterable

from repro.engine.kernels import compile_spec_kernel
from repro.engine.query import DEFAULT_CACHE_SIZE
from repro.exceptions import LabelingError

try:  # numpy accelerates the kernel but is strictly optional
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = ["OnlineKernel", "OnlineKernelStats"]

_MISS = object()


@dataclass
class OnlineKernelStats:
    """Maintenance and query counters of one :class:`OnlineKernel`."""

    #: full array recompiles (the initial build plus every structural change)
    rebuilds: int = 0
    #: in-place extensions (appends absorbed without a rebuild)
    extensions: int = 0
    #: rows appended across all extensions
    appended_rows: int = 0
    #: point queries answered
    queries: int = 0
    #: point queries served from the hot-pair LRU
    cache_hits: int = 0


class OnlineKernel:
    """Batch queries over an :class:`~repro.skeleton.online.OnlineRun`.

    Call :meth:`sync` after recording events (the session target does this
    before every query); queries always answer from the run recorded so
    far.  ``cache_size`` bounds the hot-pair LRU, which is invalidated —
    never recompiled around — on every append.
    """

    kernel_name = "incremental-online"

    def __init__(self, online: Any, *, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        self._online = online
        self._spec_kernel = compile_spec_kernel(online.spec_index)
        self._cache_size = cache_size
        self._pair_cache: OrderedDict = OrderedDict()
        self.stats = OnlineKernelStats()
        self._view = online.query_view()
        self._vertices: list = []
        self._id_of: dict = {}
        self._origins: list[str] = []
        self._count = 0
        self._capacity = 0
        self._plan_len = -1
        self._positions: dict[int, tuple[int, int, int]] = {}
        self._rebuild()

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Fold events recorded since the last call into the compiled arrays.

        Appends whose context scope already has encoded positions extend
        the arrays in place; anything that can move existing labels (a
        newly nonempty scope) rebuilds.  New plan nodes that stayed empty
        change no positions and are absorbed for free.  The appended
        suffix comes from the run's append log
        (:meth:`~repro.skeleton.online.OnlineRun.appended_executions`), so
        one sync costs O(appended) — not O(recorded) as the old walk over
        the context dict did.
        """
        online = self._online
        context = online.context
        count_now = len(context)
        plan_len = len(online.plan)
        if count_now == self._count and plan_len == self._plan_len:
            return
        if count_now < self._count:  # pragma: no cover - defensive
            self._rebuild()
            return
        appended_of = getattr(online, "appended_executions", None)
        if appended_of is not None:
            appended = appended_of(self._count)
        else:  # pragma: no cover - duck-typed runs without an append log
            appended = list(islice(context.items(), self._count, None))
        if any(node_id not in self._positions for _, node_id in appended):
            # a scope turned nonempty: positions of existing nodes shifted
            self._rebuild()
            return
        for vertex, node_id in appended:
            self._append_row(vertex, self._positions[node_id])
        if appended:
            self.stats.extensions += 1
            self.stats.appended_rows += len(appended)
            # answers between existing executions cannot change on a pure
            # append, but the LRU is the one structure the contract says to
            # invalidate — it repopulates on the next few point queries
            self._pair_cache.clear()
        self._plan_len = plan_len

    def _rebuild(self) -> None:
        online = self._online
        encoding = online.context_encoding()
        self._positions = dict(encoding.positions)
        context = online.context
        size = len(context)
        self._vertices = list(context)
        self._id_of = {vertex: i for i, vertex in enumerate(self._vertices)}
        self._origins = [vertex.module for vertex in self._vertices]
        self._capacity = max(8, size)
        if _np is not None:
            self._q1 = _np.empty(self._capacity, dtype=_np.int64)
            self._q2 = _np.empty(self._capacity, dtype=_np.int64)
            self._q3 = _np.empty(self._capacity, dtype=_np.int64)
            for i, node_id in enumerate(context.values()):
                self._q1[i], self._q2[i], self._q3[i] = self._positions[node_id]
        else:
            from array import array

            self._q1 = array("q", bytes(8 * self._capacity))
            self._q2 = array("q", bytes(8 * self._capacity))
            self._q3 = array("q", bytes(8 * self._capacity))
            for i, node_id in enumerate(context.values()):
                self._q1[i], self._q2[i], self._q3[i] = self._positions[node_id]
        self._count = size
        self._plan_len = len(online.plan)
        self._pair_cache.clear()
        self.stats.rebuilds += 1

    def _append_row(self, vertex, position: tuple[int, int, int]) -> None:
        if self._count == self._capacity:
            self._grow()
        i = self._count
        self._q1[i], self._q2[i], self._q3[i] = position
        self._vertices.append(vertex)
        self._id_of[vertex] = i
        self._origins.append(vertex.module)
        self._count = i + 1

    def _grow(self) -> None:
        new_capacity = max(8, self._capacity * 2)
        if _np is not None:
            for name in ("_q1", "_q2", "_q3"):
                grown = _np.empty(new_capacity, dtype=_np.int64)
                grown[: self._count] = getattr(self, name)[: self._count]
                setattr(self, name, grown)
        else:
            from array import array

            for name in ("_q1", "_q2", "_q3"):
                grown = array("q", bytes(8 * new_capacity))
                grown[: self._count] = getattr(self, name)[: self._count]
                setattr(self, name, grown)
        self._capacity = new_capacity

    # ------------------------------------------------------------------
    # introspection (the engine surface the session planner reads)
    # ------------------------------------------------------------------
    @property
    def index(self) -> Any:
        """The live query view of the run (capability flags, duck type)."""
        return self._view

    @property
    def online(self) -> Any:
        """The online run this kernel maintains arrays for."""
        return self._online

    @property
    def cache_size(self) -> int:
        """Capacity of the hot-pair LRU (0 = disabled)."""
        return self._cache_size

    def cache_stats(self) -> dict:
        """The maintenance counters plus current LRU occupancy."""
        stats = self.stats
        return {
            "kernel": self.kernel_name,
            "rebuilds": stats.rebuilds,
            "extensions": stats.extensions,
            "appended_rows": stats.appended_rows,
            "queries": stats.queries,
            "cache_hits": stats.cache_hits,
            "hot_pairs_cached": len(self._pair_cache),
        }

    def clear_cache(self) -> None:
        """Drop every memoized hot pair."""
        self._pair_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineKernel(run={self._online.name!r}, rows={self._count}, "
            f"rebuilds={self.stats.rebuilds}, extensions={self.stats.extensions})"
        )

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def intern(self, vertex) -> int:
        """Resolve one recorded execution to its append-order handle."""
        self.sync()
        identifier = self._id_of.get(vertex)
        if identifier is None:
            raise LabelingError(f"execution {vertex} has not been recorded")
        return identifier

    def intern_pairs(self, pairs: Iterable):
        """Map ``(source, target)`` pairs to two parallel handle arrays."""
        self.sync()
        id_of = self._id_of
        sources = []
        targets = []
        for source, target in pairs:
            for vertex in (source, target):
                if vertex not in id_of:
                    raise LabelingError(f"execution {vertex} has not been recorded")
            sources.append(id_of[source])
            targets.append(id_of[target])
        if _np is not None:
            return (
                _np.asarray(sources, dtype=_np.int64),
                _np.asarray(targets, dtype=_np.int64),
            )
        return sources, targets

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reaches(self, source, target) -> bool:
        """One point query through the hot-pair LRU."""
        self.sync()
        self.stats.queries += 1
        key = (self._id_of.get(source), self._id_of.get(target))
        if key[0] is None or key[1] is None:
            missing = source if key[0] is None else target
            raise LabelingError(f"execution {missing} has not been recorded")
        if self._cache_size == 0:
            return self._pair_answer(*key)
        cache = self._pair_cache
        cached = cache.get(key, _MISS)
        if cached is not _MISS:
            cache.move_to_end(key)
            self.stats.cache_hits += 1
            return cached
        answer = self._pair_answer(*key)
        cache[key] = answer
        if len(cache) > self._cache_size:
            cache.popitem(last=False)
        return answer

    def _pair_answer(self, source_id: int, target_id: int) -> bool:
        """Scalar Algorithm 3 over the compiled rows (fast path + fall-through)."""
        q2s, q2t = self._q2[source_id], self._q2[target_id]
        q3s, q3t = self._q3[source_id], self._q3[target_id]
        if (q2s - q2t) * (q3s - q3t) < 0:
            return bool(self._q1[source_id] < self._q1[target_id] and q3s > q3t)
        return self._spec_kernel.pair_fallthrough(
            self._origins[source_id], self._origins[target_id]
        )

    def reaches_batch(self, pairs: Iterable) -> list:
        """Answer a batch of ``(source, target)`` pairs, one boolean per pair."""
        pairs = pairs if isinstance(pairs, (list, tuple)) else list(pairs)
        source_ids, target_ids = self.intern_pairs(pairs)
        answers = self._evaluate_rows(source_ids, target_ids)
        return answers.tolist() if _np is not None else answers

    def reaches_many_ids(self, source_ids, target_ids):
        """Answer a pre-interned batch of append-order handles."""
        self.sync()
        if _np is not None:
            source_ids = _np.asarray(source_ids, dtype=_np.int64)
            target_ids = _np.asarray(target_ids, dtype=_np.int64)
            if source_ids.shape != target_ids.shape or source_ids.ndim != 1:
                raise LabelingError(
                    "source_ids and target_ids must be parallel one-dimensional "
                    f"sequences (got shapes {source_ids.shape} and {target_ids.shape})"
                )
        for ids in (source_ids, target_ids):
            if len(ids):
                low, high = min(ids), max(ids)
                if low < 0 or high >= self._count:
                    raise LabelingError(
                        f"unknown vertex handle: {low if low < 0 else high!r}"
                    )
        return self._evaluate_rows(source_ids, target_ids)

    def _rows(self):
        """The live portion of the capacity-doubled coordinate arrays.

        Numpy slices are zero-copy views; the ``array('q')`` fallback pays
        one copy per call, which the batch it serves amortizes.
        """
        n = self._count
        return self._q1[:n], self._q2[:n], self._q3[:n]

    def _evaluate_rows(self, source_ids, target_ids):
        q1, q2, q3 = self._rows()
        return self._spec_kernel.pairs(
            q1, q2, q3, self._origins, source_ids, target_ids
        )

    def dependency_sweep(self, anchor, *, downstream: bool = True) -> list:
        """Every recorded execution *anchor* reaches (or that reaches it)."""
        anchor_id = self.intern(anchor)
        q1, q2, q3 = self._rows()
        answers = self._spec_kernel.sweep(
            q1,
            q2,
            q3,
            self._origins,
            anchor_id,
            downstream=downstream,
        )
        vertices = self._vertices
        if _np is not None and isinstance(answers, _np.ndarray):
            return [vertices[i] for i in _np.flatnonzero(answers).tolist()]
        return [vertices[i] for i, answer in enumerate(answers) if answer]
