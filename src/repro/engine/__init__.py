"""Batched reachability query engine.

The labeling layer answers one ``(source, target)`` query per call, which is
the right interface for correctness proofs but leaves most of the constant
factor on the table when provenance workloads replay millions of queries
against a stored run.  This subsystem provides the batch-oriented path:

* :class:`~repro.engine.query.QueryEngine` — accepts batches of
  ``(source, target)`` pairs over any labeling index (a
  :class:`~repro.labeling.base.ReachabilityIndex` or a
  :class:`~repro.skeleton.skl.SkeletonLabeledRun`), resolves each distinct
  vertex's label once, memoizes hot point-query pairs in an LRU cache and
  dispatches batches to a per-scheme kernel;
* :mod:`repro.engine.kernels` — the compiled per-index batch kernels
  (numpy-vectorized where numpy is available, a pure-python fallback
  otherwise);
* :class:`~repro.engine.query.EngineStats` — running counters (queries,
  batches, cache hits) for capacity planning and tests.

The per-scheme batch loops live with their schemes
(``ReachabilityIndex.reaches_many`` and its overrides); the CSR substrate
used by the traversal schemes lives in :mod:`repro.graphs.csr`.
"""

from repro.engine.kernels import SpecKernel, build_kernel, compile_spec_kernel
from repro.engine.online import OnlineKernel, OnlineKernelStats
from repro.engine.pool import PersistentWorkerPool, WorkerPoolOwner
from repro.engine.parallel import (
    CrossRunExecutor,
    MAX_AUTO_WORKERS,
    PARALLEL_MIN_RUNS,
    PREFETCH_CHUNK_RUNS,
    resolve_workers,
)
from repro.engine.query import DEFAULT_CACHE_SIZE, EngineStats, QueryEngine

__all__ = [
    "QueryEngine",
    "EngineStats",
    "DEFAULT_CACHE_SIZE",
    "build_kernel",
    "SpecKernel",
    "compile_spec_kernel",
    "OnlineKernel",
    "OnlineKernelStats",
    "CrossRunExecutor",
    "PersistentWorkerPool",
    "WorkerPoolOwner",
    "resolve_workers",
    "PARALLEL_MIN_RUNS",
    "PREFETCH_CHUNK_RUNS",
    "MAX_AUTO_WORKERS",
]
