"""Parallel cross-run execution: fan per-run label streams across workers.

The cross-run query path (PR 3) compiles one shared
:class:`~repro.engine.kernels.SpecKernel` per ``(specification, scheme)``
and streams every run's raw label columns through it — but strictly one run
at a time, over the store's single SQLite connection.  Profiling shows the
per-run payload is dominated by the **fetch** (the SQL scan plus the column
transpose), not the kernel math, so parallelizing only the evaluation would
serialize on the one connection and win nothing.  This module therefore
partitions a specification's runs into chunks and hands each chunk to a
worker that opens its **own read-only connection** to the store file,
fetches the chunk with a single ordered ``run_id IN`` scan
(:func:`~repro.storage.store.load_label_arrays`), and evaluates its runs
through the shared kernel:

* the default pool is the **store-owned persistent worker pool**
  (:mod:`repro.engine.pool`): lazily started on the first parallel
  execution, reused by every later one (and by the sharded store's ingest
  service), closed with the store — a monitoring loop re-executing one
  compiled plan no longer pays pool startup per execution.  Thread workers
  by default — ``sqlite3``'s step loop and numpy's ufuncs release the GIL,
  so fetch and kernel work overlap;
* ``REPRO_PARALLEL=process`` switches to a process pool whose tasks are
  top-level functions fed picklable payloads.  The dense spec matrix is
  pickled **once per kernel per pool** (the blob is cached on the pool and
  reshipped as bytes, a memcpy), not re-serialized per execution; runs
  whose spec kernel is not dense — live traversal schemes, numpy-less
  installs — cannot ship and are evaluated on the submitting side;
* chunking is **shard-aware**: when the store routes runs across shard
  files (:class:`~repro.storage.sharded.ShardedProvenanceStore` exposes
  ``shard_path_of``), runs are grouped by their physical file first, so
  each worker connection opens exactly the one shard file its chunk lives
  in;
* workers return **packed** results — affected sweep rows as
  module-dictionary + two int64 columns, batch answers as a byte vector —
  decoded once at the API boundary (:meth:`CrossRunExecutor._split_outcomes`),
  which shrinks process-mode pickling and the GIL-bound per-row tuple
  building in thread mode;
* two operations run through it: the anchored dependency **sweep**
  (``CrossRunQuery``) and the generalized **pair batch** (the same pairs
  asked of every run, a runs x pairs matrix) behind ``CrossRunBatchQuery``
  / ``CrossRunPointQuery``.

The sequential path is retained verbatim (per-run streaming fetch, inline
evaluation) and auto-selected when the run count is below
:data:`PARALLEL_MIN_RUNS`, when only one CPU is available, when
``workers=1`` is requested, or when the store is in-memory (a ``:memory:``
database is reachable only through its one connection).  Parallel answers
are bit-identical to sequential ones: every mode evaluates the same
compiled-kernel formula over the same streamed arrays, and every mode
round-trips through the same packed encoding.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
from array import array
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FuturesTimeout,
)
from typing import Any, Callable, Optional, Sequence, Union
from urllib.parse import quote

from repro import faults
from repro.engine.kernels import dense_pair_answers, dense_sweep_answers
from repro.engine.pool import PersistentWorkerPool
from repro.exceptions import QueryPlanError, WorkerCrashError
from repro.faults import fault_point

try:  # numpy accelerates the kernels but is strictly optional
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = [
    "CrossRunExecutor",
    "PARALLEL_MIN_RUNS",
    "PREFETCH_CHUNK_RUNS",
    "MAX_AUTO_WORKERS",
    "resolve_workers",
]

#: below this many runs the sequential path is auto-selected (pool startup
#: and per-chunk connections would dominate the handful of payloads)
PARALLEL_MIN_RUNS = 4

#: the most runs one worker fetches with a single ordered SQL scan; chunks
#: shrink further when needed so every pool worker gets at least one task
#: (see CrossRunExecutor._chunks), and stay large enough otherwise to
#: amortize the per-chunk connection and query setup
PREFETCH_CHUNK_RUNS = 4

#: cap on auto-sized pools; cross-run payloads are short, so more workers
#: than this just adds scheduler churn
MAX_AUTO_WORKERS = 8

#: chunk failures the executor transparently recovers from: a retry on the
#: pool, then an inline sequential evaluation (both recorded through the
#: store's ``note_degraded``).  Covers a crashed worker process
#: (BrokenExecutor / WorkerCrashError), a dropped or refused connection
#: (OSError — InjectedConnectionError included), a transient SQL failure
#: on the task-private connection, and a hung worker when
#: ``REPRO_WORKER_TIMEOUT`` bounds the wait.  Anything else — a kernel
#: bug, a typed ReproError — propagates untouched.
_RETRYABLE = (
    WorkerCrashError,
    BrokenExecutor,
    OSError,
    sqlite3.OperationalError,
    FuturesTimeout,
)


def _worker_timeout() -> Optional[float]:
    """Seconds to wait on one chunk future (``REPRO_WORKER_TIMEOUT``).

    Unset (the default) waits forever — the pre-fault-tolerance behavior.
    A bounded wait turns a hung worker into a :data:`_RETRYABLE` timeout,
    so the chunk is retried and, failing that, evaluated inline; the stuck
    future is abandoned to finish (or not) on its own.
    """
    raw = os.environ.get("REPRO_WORKER_TIMEOUT", "").strip()
    if not raw:
        return None
    try:
        timeout = float(raw)
    except ValueError:
        raise QueryPlanError(
            f"REPRO_WORKER_TIMEOUT must be a number of seconds, got {raw!r}"
        ) from None
    return timeout if timeout > 0 else None


def resolve_workers(workers: Optional[int], run_count: int) -> int:
    """How many workers a cross-run execution actually uses.

    An explicit *workers* request is honored (clamped to the run count —
    there is never more than one task per run in flight); ``None`` sizes
    the pool from ``os.cpu_count()`` capped at :data:`MAX_AUTO_WORKERS`,
    and additionally auto-selects the sequential path (returns 1) for
    small sweeps (< :data:`PARALLEL_MIN_RUNS` runs) or single-core hosts.
    """
    if run_count <= 0:
        return 1
    if workers is not None:
        workers = int(workers)
        if workers < 1:
            raise QueryPlanError(f"workers must be a positive integer, got {workers}")
        return min(workers, run_count)
    cpus = os.cpu_count() or 1
    if cpus <= 1 or run_count < PARALLEL_MIN_RUNS:
        return 1
    return max(1, min(cpus, MAX_AUTO_WORKERS, run_count))


def _true_positions(answers) -> list[int]:
    """Row indices answered True (numpy fast path when the array allows)."""
    if _np is not None and isinstance(answers, _np.ndarray):
        return _np.flatnonzero(answers).tolist()
    return [i for i, answer in enumerate(answers) if answer]


def _readonly_connection(path):
    """A private read-only connection to the store file (one per task).

    Falls back to a plain connection when the read-only URI open fails —
    e.g. a WAL-mode shard whose ``-shm`` file an old SQLite refuses to map
    read-only; the workers only ever SELECT, so the fallback stays safe.
    """
    import sqlite3

    try:
        return sqlite3.connect(f"file:{quote(str(path))}?mode=ro", uri=True)
    except sqlite3.OperationalError:  # pragma: no cover - sqlite-build dependent
        return sqlite3.connect(str(path))


# ----------------------------------------------------------------------
# packed worker results (decoded once at the API boundary)
# ----------------------------------------------------------------------
def _pack_affected(executions, positions) -> tuple:
    """Pack affected sweep rows: module dictionary + two int64 columns.

    ``len(affected)`` Python tuples become one small tuple of distinct
    module names plus two byte blobs — far cheaper to pickle out of a
    process worker and to build inside a GIL-holding thread worker than
    the decoded ``(module, instance)`` list.
    """
    modules: list[str] = []
    module_index: dict[str, int] = {}
    index_column = array("q")
    instance_column = array("q")
    for position in positions:
        module, instance = executions[position]
        slot = module_index.setdefault(module, len(modules))
        if slot == len(modules):
            modules.append(module)
        index_column.append(slot)
        instance_column.append(int(instance))
    return ("sweep", tuple(modules), index_column.tobytes(), instance_column.tobytes())


def _decode_affected(packed: tuple) -> list[tuple[str, int]]:
    """Rebuild the ``(module, instance)`` list from one packed sweep payload."""
    _, modules, index_bytes, instance_bytes = packed
    index_column = array("q")
    index_column.frombytes(index_bytes)
    instance_column = array("q")
    instance_column.frombytes(instance_bytes)
    return [
        (modules[slot], instance)
        for slot, instance in zip(index_column, instance_column)
    ]


def _pack_answers(answers) -> tuple:
    """Pack one run's batch answers as a byte vector (one byte per pair)."""
    if _np is not None and isinstance(answers, _np.ndarray):
        blob = _np.asarray(answers, dtype=bool).tobytes()
    else:
        blob = bytes(bytearray(1 if answer else 0 for answer in answers))
    return ("batch", blob)


def _decode_outcome(packed) -> Union[list, None]:
    """Decode one packed per-run outcome (``None`` = the run was skipped)."""
    if packed is None:
        return None
    if packed[0] == "sweep":
        return _decode_affected(packed)
    return [bool(byte) for byte in packed[1]]


# ----------------------------------------------------------------------
# worker tasks (top-level so the process pool can pickle them)
# ----------------------------------------------------------------------
def _fetch_chunk_arrays(db_path, run_ids):
    """Fetch one chunk's label arrays over a task-private connection."""
    # imported lazily: repro.storage imports repro.engine submodules, so a
    # module-level import here would tangle package initialization order
    from repro.storage.store import load_label_arrays

    connection = _readonly_connection(db_path)
    try:
        return load_label_arrays(connection, run_ids)
    finally:
        connection.close()


def _thread_chunk_task(db_path, run_ids, kernels, evaluate):
    """One thread task: private-connection fetch, then per-run evaluation."""
    fault_point("pool.task")
    arrays_of = _fetch_chunk_arrays(db_path, run_ids)
    return [evaluate(run_id, kernels[run_id], arrays_of[run_id]) for run_id in run_ids]


def _origin_rows(position_of, origins):
    return _np.fromiter(
        map(position_of.__getitem__, origins), dtype=_np.int64, count=len(origins)
    )


def _process_chunk_task(payload):
    """One process task: private-connection fetch + dense evaluation.

    The payload carries only picklable state: the store (or shard) file
    path, the chunk's run ids, each run's dense spec payload as a
    **pickled blob** (``pickle.dumps((matrix, position_of))`` — serialized
    once per kernel per pool and reshipped as bytes), and the operation
    descriptor (``("sweep", anchor, downstream)`` or ``("batch", pairs)``).
    Results come back packed (see :func:`_pack_affected` /
    :func:`_pack_answers`); the parent decodes them once at the API
    boundary.
    """
    db_path, run_ids, blob_of, op = payload
    fault_point("pool.task")
    arrays_of = _fetch_chunk_arrays(db_path, run_ids)
    # runs of one spec share one kernel, hence one blob object: unpickle
    # each distinct blob once per task
    dense_cache: dict[int, tuple] = {}

    def dense_of(run_id):
        blob = blob_of[run_id]
        key = id(blob)
        if key not in dense_cache:
            dense_cache[key] = pickle.loads(blob)
        return dense_cache[key]

    results = []
    if op[0] == "sweep":
        _, anchor, downstream = op
        for run_id in run_ids:
            arrays = arrays_of[run_id]
            matrix, position_of = dense_of(run_id)
            try:
                anchor_row = arrays.executions.index(anchor)
            except ValueError:
                results.append((run_id, None))
                continue
            answers = dense_sweep_answers(
                matrix,
                arrays.q1,
                arrays.q2,
                arrays.q3,
                _origin_rows(position_of, arrays.origins),
                anchor_row,
                downstream,
            )
            results.append(
                (
                    run_id,
                    _pack_affected(
                        arrays.executions, _np.flatnonzero(answers).tolist()
                    ),
                )
            )
    else:
        _, pairs = op
        for run_id in run_ids:
            arrays = arrays_of[run_id]
            matrix, position_of = dense_of(run_id)
            row_of = {
                execution: row for row, execution in enumerate(arrays.executions)
            }
            try:
                source_rows = _np.fromiter(
                    (row_of[source] for source, _ in pairs),
                    dtype=_np.int64,
                    count=len(pairs),
                )
                target_rows = _np.fromiter(
                    (row_of[target] for _, target in pairs),
                    dtype=_np.int64,
                    count=len(pairs),
                )
            except KeyError:
                results.append((run_id, None))
                continue
            answers = dense_pair_answers(
                matrix,
                arrays.q1,
                arrays.q2,
                arrays.q3,
                _origin_rows(position_of, arrays.origins),
                source_rows,
                target_rows,
            )
            results.append((run_id, _pack_answers(answers)))
    return results


def _pushdown_chunk_task(db_path, run_ids, anchor, modules, downstream):
    """One pushdown task: indexed range scans over a task-private connection.

    Fully picklable (a path, ids, the anchor and a module-name list — no
    kernels, no numpy), so the same task serves thread pools, process pools
    and numpy-less installs alike.  Only the matching rows ever leave
    SQLite; they come back packed like every other worker result.
    """
    from repro.storage.pushdown import pushdown_sweep

    fault_point("pool.task")
    connection = _readonly_connection(db_path)
    try:
        per_run = pushdown_sweep(
            connection, run_ids, anchor, modules, downstream=downstream
        )
    finally:
        connection.close()
    return [
        (run_id, None if result is None else _pack_affected(result, range(len(result))))
        for run_id, result in per_run.items()
    ]


class CrossRunExecutor:
    """Execute one cross-run operation over all runs of a specification.

    Parameters
    ----------
    store:
        The provenance store (anything with ``list_runs`` /
        ``get_specification`` / ``spec_kernel`` / ``run_label_arrays`` and
        a ``path``; a sharded store additionally exposes ``shard_path_of``,
        which makes the chunking shard-aware).
    workers:
        Worker count; ``None`` auto-sizes (see :func:`resolve_workers`) and
        falls back to the retained sequential path for small sweeps.
    mode:
        ``"thread"`` (default) or ``"process"``; ``None`` reads the
        ``REPRO_PARALLEL`` environment variable.  Process mode requires
        numpy and dense spec kernels; ineligible runs are evaluated on the
        submitting side.
    pool:
        Where parallel tasks run.  ``None`` (default) asks the store for
        its persistent :class:`~repro.engine.pool.PersistentWorkerPool`
        (``store.worker_pool(mode)``), so repeated executions share one
        lazily started pool that closes with the store.  ``False`` forces
        a fresh ephemeral pool per execution (the pre-PR 5 behavior, kept
        for benchmarking the difference).  An explicit pool object is used
        as given and never shut down by the executor.
    """

    def __init__(
        self,
        store: Any,
        *,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        pool: Union[PersistentWorkerPool, None, bool] = None,
    ) -> None:
        self.store = store
        self.workers = workers
        if mode is None:
            mode = os.environ.get("REPRO_PARALLEL", "thread") or "thread"
        if mode not in ("thread", "process"):
            raise QueryPlanError(
                f"REPRO_PARALLEL mode must be 'thread' or 'process', got {mode!r}"
            )
        self.mode = mode
        if pool is True:  # pragma: no cover - guard against bool misuse
            pool = None
        self._pool = pool
        # dense payload blobs when no persistent pool hosts the cache; the
        # kernel object is kept alongside so its id can never be recycled
        # while the blob is alive
        self._blob_cache: dict[int, tuple[Any, bytes]] = {}

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _run_ids(self, specification: str) -> list[int]:
        runs = self.store.list_runs(specification)
        if not runs:
            # distinguish "unknown specification" from "no runs yet"
            self.store.get_specification(specification)
        return [int(row["run_id"]) for row in runs]

    def _parallel_workers(self, run_count: int) -> int:
        """The pool size, or 1 whenever the sequential path must serve."""
        workers = resolve_workers(self.workers, run_count)
        if workers > 1 and str(getattr(self.store, "path", ":memory:")) == ":memory:":
            # an in-memory database is reachable only through the store's
            # own connection; there is nothing for workers to open
            return 1
        return workers

    def _resolve_pool(self, kind: Optional[str] = None) -> Optional[PersistentWorkerPool]:
        """The persistent pool parallel tasks run on (``None`` = ephemeral).

        *kind* is the pool flavor the submitted tasks actually need —
        numpy-less installs fall back to closure-carrying thread tasks even
        under ``REPRO_PARALLEL=process``, and closures must never be
        submitted to a process pool.
        """
        kind = kind or self.mode
        if self._pool is False:
            return None
        if isinstance(self._pool, PersistentWorkerPool):
            if kind == "thread" and self._pool.mode == "process":
                # closure-carrying thread tasks cannot ride a process pool
                # (e.g. REPRO_PARALLEL=process on a numpy-less install with
                # an explicit process pool): fall back to an ephemeral pool
                return None
            return self._pool
        pool_of = getattr(self.store, "worker_pool", None)
        if pool_of is None:
            return None
        pool = pool_of(kind)
        if self.workers is not None and int(self.workers) > pool.workers:
            # an explicit request wider than the shared pool must not be
            # silently throttled to the pool's width; an ephemeral pool
            # sized to the request (the pre-persistent behavior) serves it
            return None
        return pool

    @staticmethod
    def _dense_blob(kernel, cache: Optional[dict]) -> bytes:
        """The kernel's dense payload, pickled once per *cache* lifetime.

        *cache* is the persistent pool's ``payload_cache`` when one serves
        this executor (every plan over the same store then shares the blob
        for the pool's lifetime) or the executor's own cache otherwise.
        ``None`` disables caching entirely — the ``pool=False`` baseline
        re-pickles per execution, faithfully reproducing the pre-pool
        behavior the benchmarks compare against.
        """
        if cache is None:
            return pickle.dumps((kernel.matrix, kernel.position_of))
        key = id(kernel)
        entry = cache.get(key)
        if entry is None:
            entry = (kernel, pickle.dumps((kernel.matrix, kernel.position_of)))
            cache[key] = entry
        return entry[1]

    def _note_degraded(self, kind: str) -> None:
        """Record one graceful degradation on the store (when it counts them)."""
        note = getattr(self.store, "note_degraded", None)
        if note is not None:
            note(kind)

    def _submit_chunks(self, submit, chunk_tasks):
        """Submit every ``(fn, args)`` chunk task, tolerating submit failures.

        A failed submission (a broken pool the persistent pool could not
        revive, an injected ``pool.submit`` fault) counts as the chunk's
        first attempt: the exception is carried to :meth:`_settle`, which
        retries once and then evaluates inline.  Non-retryable submission
        errors propagate immediately.
        """
        submitted = []
        for fn, args in chunk_tasks:
            try:
                submitted.append((fn, args, submit(fn, *args)))
            except _RETRYABLE as exc:
                submitted.append((fn, args, exc))
        return submitted

    def _settle(self, submit, fn, args, outcome):
        """One chunk's results, retrying once and then evaluating inline.

        *outcome* is the submitted future, or the exception submission
        raised.  On a :data:`_RETRYABLE` failure the chunk is resubmitted
        once (``worker_retry``); if that also fails it is evaluated in the
        calling thread (``worker_sequential``) with fault injection
        suppressed, so an injected fault can never turn into a wrong or
        missing answer — only a slower path.  Non-retryable errors, and
        retryable ones the sequential evaluation reproduces, propagate.
        """
        timeout = _worker_timeout()
        if not isinstance(outcome, BaseException):
            try:
                return outcome.result(timeout)
            except _RETRYABLE:
                pass
        self._note_degraded("worker_retry")
        try:
            return submit(fn, *args).result(timeout)
        except _RETRYABLE:
            self._note_degraded("worker_sequential")
            with faults.suppressed():
                return fn(*args)

    def _path_groups(self, run_ids: Sequence[int]) -> list[tuple[str, list[int]]]:
        """Group runs by the physical database file their rows live in.

        A single-file store yields one group (its ``path``); a sharded
        store yields one group per shard actually touched, so every worker
        connection opens exactly its chunk's shard file.
        """
        shard_path_of = getattr(self.store, "shard_path_of", None)
        if shard_path_of is None:
            return [(str(self.store.path), list(run_ids))]
        groups: dict[str, list[int]] = {}
        for run_id in run_ids:
            groups.setdefault(str(shard_path_of(run_id)), []).append(run_id)
        return list(groups.items())

    def _fan_chunks(self, run_ids, workers: int, *, cap_tasks: bool = False):
        """``(db_path, chunk)`` pairs with hot-spec replica fan-out.

        When the store attaches read replicas to a shard
        (:meth:`~repro.storage.sharded.ShardedProvenanceStore.replicate`),
        its rotation — ``[primary] + fresh replicas`` — is round-robined
        across that shard's chunks, so concurrent worker connections stop
        queueing on one file (and one WAL).  A store without the hook, or
        with a stale/absent replica set, degenerates to the primary path
        for every chunk.  Replicas are consistent snapshots refreshed by
        the store's write-version handshake, so every path in a rotation
        answers bit-identically.
        """
        rotation_of = getattr(self.store, "replica_rotation", None)
        for db_path, path_runs in self._path_groups(run_ids):
            paths = [db_path]
            if rotation_of is not None:
                rotation = rotation_of(db_path)
                if rotation:
                    paths = list(rotation)
            for index, chunk in enumerate(
                self._chunks(path_runs, workers, cap_tasks=cap_tasks)
            ):
                yield paths[index % len(paths)], chunk

    @staticmethod
    def _chunks(run_ids: Sequence[int], workers: int = 1, *, cap_tasks: bool = False):
        """Chunk runs so the whole pool stays busy.

        The chunk size is :data:`PREFETCH_CHUNK_RUNS` capped at
        ``ceil(runs / workers)`` — without the cap, a small sweep would
        submit fewer tasks than workers and leave part of the pool idle.

        With *cap_tasks* the chunk size is additionally **floored** at
        ``ceil(runs / workers)``, so at most *workers* chunks are emitted.
        Ephemeral pools enforce the worker cap through ``max_workers``;
        a shared persistent pool is wider than an explicit ``workers=``
        request, so there the cap must come from the task count itself.
        """
        count = len(run_ids)
        per_worker = -(-count // max(1, workers))
        chunk_size = max(1, min(PREFETCH_CHUNK_RUNS, per_worker))
        if cap_tasks:
            chunk_size = max(chunk_size, per_worker)
        for start in range(0, count, chunk_size):
            yield list(run_ids[start : start + chunk_size])

    def _execute(
        self,
        run_ids: list[int],
        workers: int,
        evaluate: Callable,
        op: tuple,
    ) -> dict[int, Any]:
        """Fan chunk tasks over the pool; returns per-run packed outcomes.

        *evaluate* is the shared-kernel per-run evaluation (used by thread
        workers and for runs process mode cannot ship); *op* is the
        picklable operation descriptor for process tasks.  Tasks are
        submitted to the store's persistent pool when one is available,
        else to a fresh ephemeral pool that is torn down with the call.
        """
        store = self.store
        kernels = {run_id: store.spec_kernel(run_id) for run_id in run_ids}
        outcomes: dict[int, Any] = {}
        use_processes = self.mode == "process" and _np is not None
        pool = self._resolve_pool("process" if use_processes else "thread")
        # a shared pool is wider than an explicit workers= request; cap the
        # task count so the requested concurrency limit still holds there
        cap_tasks = pool is not None and pool.workers > workers
        if pool is not None:
            blob_cache: Optional[dict] = pool.payload_cache
        elif self._pool is False:
            blob_cache = None  # faithful pre-pool baseline: no blob reuse
        else:
            blob_cache = self._blob_cache
        if use_processes:
            shippable = []
            local = []
            for run_id in run_ids:
                if getattr(kernels[run_id], "dense", False):
                    shippable.append(run_id)
                else:
                    local.append(run_id)
            chunk_tasks = [
                (
                    _process_chunk_task,
                    (
                        (
                            db_path,
                            chunk,
                            {
                                run_id: self._dense_blob(kernels[run_id], blob_cache)
                                for run_id in chunk
                            },
                            op,
                        ),
                    ),
                )
                for db_path, chunk in self._fan_chunks(
                    shippable, workers, cap_tasks=cap_tasks
                )
            ]

            def drain(submit, submitted):
                # non-dense kernels hold live spec indexes that cannot ship
                # across processes; evaluate them here while the pool works
                for db_path, path_runs in self._path_groups(local):
                    for chunk in self._chunks(path_runs):
                        arrays_of = _fetch_chunk_arrays(db_path, chunk)
                        for run_id in chunk:
                            _, answer = evaluate(
                                run_id, kernels[run_id], arrays_of[run_id]
                            )
                            outcomes[run_id] = answer
                for record in submitted:
                    outcomes.update(dict(self._settle(submit, *record)))

            if pool is not None:
                drain(pool.submit, self._submit_chunks(pool.submit, chunk_tasks))
            else:
                with ProcessPoolExecutor(max_workers=workers) as ephemeral:
                    drain(
                        ephemeral.submit,
                        self._submit_chunks(ephemeral.submit, chunk_tasks),
                    )
            return outcomes

        chunk_tasks = [
            (_thread_chunk_task, (db_path, chunk, kernels, evaluate))
            for db_path, chunk in self._fan_chunks(
                run_ids, workers, cap_tasks=cap_tasks
            )
        ]
        if pool is not None:
            for record in self._submit_chunks(pool.submit, chunk_tasks):
                outcomes.update(dict(self._settle(pool.submit, *record)))
            return outcomes
        with ThreadPoolExecutor(max_workers=workers) as ephemeral:
            for record in self._submit_chunks(ephemeral.submit, chunk_tasks):
                outcomes.update(dict(self._settle(ephemeral.submit, *record)))
        return outcomes

    # ------------------------------------------------------------------
    # the anchored dependency sweep (CrossRunQuery)
    # ------------------------------------------------------------------
    def sweep(
        self, specification: str, anchor: tuple, direction: str = "downstream"
    ) -> tuple[dict[int, list], list[int]]:
        """Sweep every run of *specification*; returns ``(per_run, skipped)``.

        ``per_run`` maps run id to the affected executions (in stored-handle
        order); runs that never executed *anchor* land in ``skipped``.
        """
        downstream = direction == "downstream"
        run_ids = self._run_ids(specification)
        workers = self._parallel_workers(len(run_ids))
        if run_ids:
            profile = getattr(self.store, "pushdown_profile", None)
            note = getattr(self.store, "_note_sweep_path", None)
            if profile is not None and note is not None:
                note(profile(run_ids[0])[0], pushdown=False, run_id=run_ids[0])

        def evaluate(run_id: int, kernel, arrays):
            try:
                anchor_row = arrays.executions.index(anchor)
            except ValueError:
                return run_id, None
            answers = kernel.sweep(
                arrays.q1,
                arrays.q2,
                arrays.q3,
                arrays.origins,
                anchor_row,
                downstream=downstream,
            )
            return run_id, _pack_affected(
                arrays.executions, _true_positions(answers)
            )

        if workers <= 1:
            return self._run_sequential(run_ids, evaluate)
        outcomes = self._execute(
            run_ids, workers, evaluate, ("sweep", anchor, downstream)
        )
        return self._split_outcomes(run_ids, outcomes)

    def sweep_pushdown(
        self, specification: str, anchor: tuple, direction: str = "downstream"
    ) -> tuple[dict[int, list], list[int]]:
        """The SQL form of :meth:`sweep`: per-shard indexed range scans.

        Same contract and bit-identical answers, but each worker's private
        read-only connection evaluates the sweep *inside* SQLite
        (:mod:`repro.storage.pushdown`) instead of streaming label arrays
        out — only matching rows cross the SQL boundary.  The spec-level
        module reachability of the anchor is computed once from the shared
        spec kernel and shipped to every task.  Below the parallel
        threshold the scans run on the store's own connections (which also
        serves in-memory stores).
        """
        from repro.storage.pushdown import reachable_modules

        downstream = direction == "downstream"
        run_ids = self._run_ids(specification)
        if not run_ids:
            return {}, []
        store = self.store
        profile = getattr(store, "pushdown_profile", None)
        note = getattr(store, "_note_sweep_path", None)
        if profile is not None and note is not None:
            note(profile(run_ids[0])[0], pushdown=True, run_id=run_ids[0])
        modules = reachable_modules(
            store.spec_kernel(run_ids[0]), anchor[0], downstream=downstream
        )
        if modules is None:
            # the anchor's module is not in the specification, so no run
            # can store a label for it: every run is skipped
            return {}, list(run_ids)
        workers = self._parallel_workers(len(run_ids))
        if workers <= 1:
            groups: dict[int, tuple[Any, list[int]]] = {}
            for run_id in run_ids:
                connection = store.read_connection_for(run_id)
                groups.setdefault(id(connection), (connection, []))[1].append(run_id)
            results: dict[int, Any] = {}
            from repro.storage.pushdown import pushdown_sweep

            for connection, group_runs in groups.values():
                results.update(
                    pushdown_sweep(
                        connection, group_runs, anchor, modules, downstream=downstream
                    )
                )
            per_run: dict[int, list] = {}
            skipped: list[int] = []
            for run_id in run_ids:
                answer = results[run_id]
                if answer is None:
                    skipped.append(run_id)
                else:
                    per_run[run_id] = answer
            return per_run, skipped
        pool = self._resolve_pool(self.mode)
        cap_tasks = pool is not None and pool.workers > workers
        chunk_tasks = [
            (_pushdown_chunk_task, (db_path, chunk, anchor, modules, downstream))
            for db_path, chunk in self._fan_chunks(
                run_ids, workers, cap_tasks=cap_tasks
            )
        ]

        outcomes: dict[int, Any] = {}
        if pool is not None:
            for record in self._submit_chunks(pool.submit, chunk_tasks):
                outcomes.update(dict(self._settle(pool.submit, *record)))
        else:
            executor_cls = (
                ProcessPoolExecutor if self.mode == "process" else ThreadPoolExecutor
            )
            with executor_cls(max_workers=workers) as ephemeral:
                for record in self._submit_chunks(ephemeral.submit, chunk_tasks):
                    outcomes.update(dict(self._settle(ephemeral.submit, *record)))
        return self._split_outcomes(run_ids, outcomes)

    # ------------------------------------------------------------------
    # the generalized pair batch (CrossRunBatchQuery / CrossRunPointQuery)
    # ------------------------------------------------------------------
    def batch(
        self, specification: str, pairs: Sequence[tuple]
    ) -> tuple[dict[int, list], list[int]]:
        """Ask the same *pairs* of every run; returns ``(per_run, skipped)``.

        ``per_run`` maps run id to one boolean per pair, in pair order —
        the rows of the runs x pairs matrix.  Runs missing **any** queried
        endpoint land in ``skipped`` (the cross-run analogue of a sweep
        anchor the run never executed), so a present row is always a
        complete, trustworthy answer vector.
        """
        pairs = list(pairs)
        if not pairs:
            raise QueryPlanError("cross-run batch needs at least one pair")
        run_ids = self._run_ids(specification)
        workers = self._parallel_workers(len(run_ids))

        def evaluate(run_id: int, kernel, arrays):
            row_of = {
                execution: row for row, execution in enumerate(arrays.executions)
            }
            try:
                source_rows = [row_of[source] for source, _ in pairs]
                target_rows = [row_of[target] for _, target in pairs]
            except KeyError:
                return run_id, None
            answers = kernel.pairs(
                arrays.q1,
                arrays.q2,
                arrays.q3,
                arrays.origins,
                source_rows,
                target_rows,
            )
            return run_id, _pack_answers(answers)

        if workers <= 1:
            return self._run_sequential(run_ids, evaluate)
        outcomes = self._execute(run_ids, workers, evaluate, ("batch", pairs))
        return self._split_outcomes(run_ids, outcomes)

    def _run_sequential(self, run_ids, evaluate) -> tuple[dict[int, Any], list[int]]:
        """The retained PR 3 path: per-run streaming fetch, inline evaluation."""
        store = self.store
        outcomes: dict[int, Any] = {}
        for run_id in run_ids:
            # the kernel is cached per (spec_id, scheme): compiled once for
            # the whole operation, like the parallel paths
            _, answer = evaluate(
                run_id, store.spec_kernel(run_id), store.run_label_arrays(run_id)
            )
            outcomes[run_id] = answer
        return self._split_outcomes(run_ids, outcomes)

    @staticmethod
    def _split_outcomes(run_ids, outcomes) -> tuple[dict[int, Any], list[int]]:
        """Decode the packed per-run payloads once, at the API boundary."""
        per_run: dict[int, Any] = {}
        skipped: list[int] = []
        for run_id in run_ids:
            answer = _decode_outcome(outcomes[run_id])
            if answer is None:
                skipped.append(run_id)
            else:
                per_run[run_id] = answer
        return per_run, skipped
