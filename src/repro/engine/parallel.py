"""Parallel cross-run execution: fan per-run label streams across workers.

The cross-run query path (PR 3) compiles one shared
:class:`~repro.engine.kernels.SpecKernel` per ``(specification, scheme)``
and streams every run's raw label columns through it — but strictly one run
at a time, over the store's single SQLite connection.  Profiling shows the
per-run payload is dominated by the **fetch** (the SQL scan plus the column
transpose), not the kernel math, so parallelizing only the evaluation would
serialize on the one connection and win nothing.  This module therefore
partitions a specification's runs into chunks and hands each chunk to a
worker that opens its **own read-only connection** to the store file,
fetches the chunk with a single ordered ``run_id IN`` scan
(:func:`~repro.storage.store.load_label_arrays`), and evaluates its runs
through the shared kernel:

* the default pool is a ``ThreadPoolExecutor`` — ``sqlite3``'s step loop
  and numpy's ufuncs release the GIL, so fetch and kernel work overlap;
* ``REPRO_PARALLEL=process`` switches to a ``ProcessPoolExecutor`` whose
  tasks are top-level functions fed picklable payloads (the dense spec
  matrix plus the chunk's run ids); runs whose spec kernel is not dense —
  live traversal schemes, numpy-less installs — cannot ship and are
  evaluated on the submitting side;
* two operations run through it: the anchored dependency **sweep**
  (``CrossRunQuery``) and the generalized **pair batch** (the same pairs
  asked of every run, a runs x pairs matrix) behind ``CrossRunBatchQuery``
  / ``CrossRunPointQuery``.

The sequential path is retained verbatim (per-run streaming fetch, inline
evaluation) and auto-selected when the run count is below
:data:`PARALLEL_MIN_RUNS`, when only one CPU is available, when
``workers=1`` is requested, or when the store is in-memory (a ``:memory:``
database is reachable only through its one connection).  Parallel answers
are bit-identical to sequential ones: every mode evaluates the same
compiled-kernel formula over the same streamed arrays.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Optional, Sequence
from urllib.parse import quote

from repro.engine.kernels import dense_pair_answers, dense_sweep_answers
from repro.exceptions import QueryPlanError

try:  # numpy accelerates the kernels but is strictly optional
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

__all__ = [
    "CrossRunExecutor",
    "PARALLEL_MIN_RUNS",
    "PREFETCH_CHUNK_RUNS",
    "MAX_AUTO_WORKERS",
    "resolve_workers",
]

#: below this many runs the sequential path is auto-selected (pool startup
#: and per-chunk connections would dominate the handful of payloads)
PARALLEL_MIN_RUNS = 4

#: the most runs one worker fetches with a single ordered SQL scan; chunks
#: shrink further when needed so every pool worker gets at least one task
#: (see CrossRunExecutor._chunks), and stay large enough otherwise to
#: amortize the per-chunk connection and query setup
PREFETCH_CHUNK_RUNS = 4

#: cap on auto-sized pools; cross-run payloads are short, so more workers
#: than this just adds scheduler churn
MAX_AUTO_WORKERS = 8


def resolve_workers(workers: Optional[int], run_count: int) -> int:
    """How many workers a cross-run execution actually uses.

    An explicit *workers* request is honored (clamped to the run count —
    there is never more than one task per run in flight); ``None`` sizes
    the pool from ``os.cpu_count()`` capped at :data:`MAX_AUTO_WORKERS`,
    and additionally auto-selects the sequential path (returns 1) for
    small sweeps (< :data:`PARALLEL_MIN_RUNS` runs) or single-core hosts.
    """
    if run_count <= 0:
        return 1
    if workers is not None:
        workers = int(workers)
        if workers < 1:
            raise QueryPlanError(f"workers must be a positive integer, got {workers}")
        return min(workers, run_count)
    cpus = os.cpu_count() or 1
    if cpus <= 1 or run_count < PARALLEL_MIN_RUNS:
        return 1
    return max(1, min(cpus, MAX_AUTO_WORKERS, run_count))


def _true_positions(answers) -> list[int]:
    """Row indices answered True (numpy fast path when the array allows)."""
    if _np is not None and isinstance(answers, _np.ndarray):
        return _np.flatnonzero(answers).tolist()
    return [i for i, answer in enumerate(answers) if answer]


def _readonly_connection(path):
    """A private read-only connection to the store file (one per task)."""
    import sqlite3

    return sqlite3.connect(f"file:{quote(str(path))}?mode=ro", uri=True)


# ----------------------------------------------------------------------
# worker tasks (top-level so the process pool can pickle them)
# ----------------------------------------------------------------------
def _fetch_chunk_arrays(db_path, run_ids):
    """Fetch one chunk's label arrays over a task-private connection."""
    # imported lazily: repro.storage imports repro.engine submodules, so a
    # module-level import here would tangle package initialization order
    from repro.storage.store import load_label_arrays

    connection = _readonly_connection(db_path)
    try:
        return load_label_arrays(connection, run_ids)
    finally:
        connection.close()


def _thread_chunk_task(db_path, run_ids, kernels, evaluate):
    """One thread task: private-connection fetch, then per-run evaluation."""
    arrays_of = _fetch_chunk_arrays(db_path, run_ids)
    return [evaluate(run_id, kernels[run_id], arrays_of[run_id]) for run_id in run_ids]


def _origin_rows(position_of, origins):
    return _np.fromiter(
        map(position_of.__getitem__, origins), dtype=_np.int64, count=len(origins)
    )


def _process_chunk_task(payload):
    """One process task: private-connection fetch + dense evaluation.

    The payload carries only picklable state: the store file path, the
    chunk's run ids, each run's dense spec matrix + origin-position map,
    and the operation descriptor (``("sweep", anchor, downstream)`` or
    ``("batch", pairs)``).  Results come back fully extracted — affected
    execution tuples for sweeps, boolean lists for batches — so the parent
    only merges dictionaries.
    """
    db_path, run_ids, dense_of, op = payload
    arrays_of = _fetch_chunk_arrays(db_path, run_ids)
    results = []
    if op[0] == "sweep":
        _, anchor, downstream = op
        for run_id in run_ids:
            arrays = arrays_of[run_id]
            matrix, position_of = dense_of[run_id]
            try:
                anchor_row = arrays.executions.index(anchor)
            except ValueError:
                results.append((run_id, None))
                continue
            answers = dense_sweep_answers(
                matrix,
                arrays.q1,
                arrays.q2,
                arrays.q3,
                _origin_rows(position_of, arrays.origins),
                anchor_row,
                downstream,
            )
            executions = arrays.executions
            results.append(
                (run_id, [executions[i] for i in _np.flatnonzero(answers).tolist()])
            )
    else:
        _, pairs = op
        for run_id in run_ids:
            arrays = arrays_of[run_id]
            matrix, position_of = dense_of[run_id]
            row_of = {
                execution: row for row, execution in enumerate(arrays.executions)
            }
            try:
                source_rows = _np.fromiter(
                    (row_of[source] for source, _ in pairs),
                    dtype=_np.int64,
                    count=len(pairs),
                )
                target_rows = _np.fromiter(
                    (row_of[target] for _, target in pairs),
                    dtype=_np.int64,
                    count=len(pairs),
                )
            except KeyError:
                results.append((run_id, None))
                continue
            answers = dense_pair_answers(
                matrix,
                arrays.q1,
                arrays.q2,
                arrays.q3,
                _origin_rows(position_of, arrays.origins),
                source_rows,
                target_rows,
            )
            results.append((run_id, [bool(answer) for answer in answers]))
    return results


class CrossRunExecutor:
    """Execute one cross-run operation over all runs of a specification.

    Parameters
    ----------
    store:
        The provenance store (anything with ``list_runs`` /
        ``get_specification`` / ``spec_kernel`` / ``run_label_arrays`` and
        a ``path``).
    workers:
        Worker count; ``None`` auto-sizes (see :func:`resolve_workers`) and
        falls back to the retained sequential path for small sweeps.
    mode:
        ``"thread"`` (default) or ``"process"``; ``None`` reads the
        ``REPRO_PARALLEL`` environment variable.  Process mode requires
        numpy and dense spec kernels; ineligible runs are evaluated on the
        submitting side.
    """

    def __init__(
        self,
        store: Any,
        *,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> None:
        self.store = store
        self.workers = workers
        if mode is None:
            mode = os.environ.get("REPRO_PARALLEL", "thread") or "thread"
        if mode not in ("thread", "process"):
            raise QueryPlanError(
                f"REPRO_PARALLEL mode must be 'thread' or 'process', got {mode!r}"
            )
        self.mode = mode

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _run_ids(self, specification: str) -> list[int]:
        runs = self.store.list_runs(specification)
        if not runs:
            # distinguish "unknown specification" from "no runs yet"
            self.store.get_specification(specification)
        return [int(row["run_id"]) for row in runs]

    def _parallel_workers(self, run_count: int) -> int:
        """The pool size, or 1 whenever the sequential path must serve."""
        workers = resolve_workers(self.workers, run_count)
        if workers > 1 and str(getattr(self.store, "path", ":memory:")) == ":memory:":
            # an in-memory database is reachable only through the store's
            # own connection; there is nothing for workers to open
            return 1
        return workers

    @staticmethod
    def _chunks(run_ids: Sequence[int], workers: int = 1):
        """Chunk runs so the whole pool stays busy.

        The chunk size is :data:`PREFETCH_CHUNK_RUNS` capped at
        ``ceil(runs / workers)`` — without the cap, a small sweep would
        submit fewer tasks than workers and leave part of the pool idle.
        """
        count = len(run_ids)
        chunk_size = max(
            1, min(PREFETCH_CHUNK_RUNS, -(-count // max(1, workers)))
        )
        for start in range(0, count, chunk_size):
            yield list(run_ids[start : start + chunk_size])

    def _execute(
        self,
        run_ids: list[int],
        workers: int,
        evaluate: Callable,
        op: tuple,
    ) -> dict[int, Any]:
        """Fan chunk tasks over the pool; returns per-run outcomes.

        *evaluate* is the shared-kernel per-run evaluation (used by thread
        workers and for runs process mode cannot ship); *op* is the
        picklable operation descriptor for process tasks.
        """
        store = self.store
        kernels = {run_id: store.spec_kernel(run_id) for run_id in run_ids}
        db_path = store.path
        outcomes: dict[int, Any] = {}
        use_processes = self.mode == "process" and _np is not None
        if use_processes:
            shippable = []
            local = []
            for run_id in run_ids:
                if getattr(kernels[run_id], "dense", False):
                    shippable.append(run_id)
                else:
                    local.append(run_id)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _process_chunk_task,
                        (
                            db_path,
                            chunk,
                            {
                                run_id: (
                                    kernels[run_id].matrix,
                                    kernels[run_id].position_of,
                                )
                                for run_id in chunk
                            },
                            op,
                        ),
                    )
                    for chunk in self._chunks(shippable, workers)
                ]
                # non-dense kernels hold live spec indexes that cannot ship
                # across processes; evaluate them here while the pool works
                for chunk in self._chunks(local):
                    arrays_of = _fetch_chunk_arrays(db_path, chunk)
                    for run_id in chunk:
                        _, answer = evaluate(
                            run_id, kernels[run_id], arrays_of[run_id]
                        )
                        outcomes[run_id] = answer
                for future in futures:
                    outcomes.update(dict(future.result()))
            return outcomes
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_thread_chunk_task, db_path, chunk, kernels, evaluate)
                for chunk in self._chunks(run_ids, workers)
            ]
            for future in futures:
                outcomes.update(dict(future.result()))
        return outcomes

    # ------------------------------------------------------------------
    # the anchored dependency sweep (CrossRunQuery)
    # ------------------------------------------------------------------
    def sweep(
        self, specification: str, anchor: tuple, direction: str = "downstream"
    ) -> tuple[dict[int, list], list[int]]:
        """Sweep every run of *specification*; returns ``(per_run, skipped)``.

        ``per_run`` maps run id to the affected executions (in stored-handle
        order); runs that never executed *anchor* land in ``skipped``.
        """
        downstream = direction == "downstream"
        run_ids = self._run_ids(specification)
        workers = self._parallel_workers(len(run_ids))

        def evaluate(run_id: int, kernel, arrays):
            try:
                anchor_row = arrays.executions.index(anchor)
            except ValueError:
                return run_id, None
            answers = kernel.sweep(
                arrays.q1,
                arrays.q2,
                arrays.q3,
                arrays.origins,
                anchor_row,
                downstream=downstream,
            )
            executions = arrays.executions
            return run_id, [executions[i] for i in _true_positions(answers)]

        if workers <= 1:
            return self._run_sequential(run_ids, evaluate)
        outcomes = self._execute(
            run_ids, workers, evaluate, ("sweep", anchor, downstream)
        )
        return self._split_outcomes(run_ids, outcomes)

    # ------------------------------------------------------------------
    # the generalized pair batch (CrossRunBatchQuery / CrossRunPointQuery)
    # ------------------------------------------------------------------
    def batch(
        self, specification: str, pairs: Sequence[tuple]
    ) -> tuple[dict[int, list], list[int]]:
        """Ask the same *pairs* of every run; returns ``(per_run, skipped)``.

        ``per_run`` maps run id to one boolean per pair, in pair order —
        the rows of the runs x pairs matrix.  Runs missing **any** queried
        endpoint land in ``skipped`` (the cross-run analogue of a sweep
        anchor the run never executed), so a present row is always a
        complete, trustworthy answer vector.
        """
        pairs = list(pairs)
        if not pairs:
            raise QueryPlanError("cross-run batch needs at least one pair")
        run_ids = self._run_ids(specification)
        workers = self._parallel_workers(len(run_ids))

        def evaluate(run_id: int, kernel, arrays):
            row_of = {
                execution: row for row, execution in enumerate(arrays.executions)
            }
            try:
                source_rows = [row_of[source] for source, _ in pairs]
                target_rows = [row_of[target] for _, target in pairs]
            except KeyError:
                return run_id, None
            answers = kernel.pairs(
                arrays.q1,
                arrays.q2,
                arrays.q3,
                arrays.origins,
                source_rows,
                target_rows,
            )
            return run_id, [bool(answer) for answer in answers]

        if workers <= 1:
            return self._run_sequential(run_ids, evaluate)
        outcomes = self._execute(run_ids, workers, evaluate, ("batch", pairs))
        return self._split_outcomes(run_ids, outcomes)

    def _run_sequential(self, run_ids, evaluate) -> tuple[dict[int, Any], list[int]]:
        """The retained PR 3 path: per-run streaming fetch, inline evaluation."""
        store = self.store
        outcomes: dict[int, Any] = {}
        for run_id in run_ids:
            # the kernel is cached per (spec_id, scheme): compiled once for
            # the whole operation, like the parallel paths
            _, answer = evaluate(
                run_id, store.spec_kernel(run_id), store.run_label_arrays(run_id)
            )
            outcomes[run_id] = answer
        return self._split_outcomes(run_ids, outcomes)

    @staticmethod
    def _split_outcomes(run_ids, outcomes) -> tuple[dict[int, Any], list[int]]:
        per_run: dict[int, Any] = {}
        skipped: list[int] = []
        for run_id in run_ids:
            answer = outcomes[run_id]
            if answer is None:
                skipped.append(run_id)
            else:
                per_run[run_id] = answer
        return per_run, skipped
