"""2-hop cover reachability labeling (Cohen, Halperin, Kaplan & Zwick [6]).

The third labeling family from the paper's related work.  Every vertex ``v``
stores two sets of *hop centers*: ``L_out(v)`` (centers reachable from ``v``)
and ``L_in(v)`` (centers that reach ``v``).  Then ``u`` reaches ``v`` iff the
two sets share a center, i.e. some center lies on a path from ``u`` to ``v``.

Constructing a minimum 2-hop cover is NP-hard; this implementation uses the
classical greedy set-cover heuristic restricted to single-center "stars":
repeatedly pick the vertex whose star (ancestors x descendants) covers the
largest number of still-uncovered reachable pairs.  That is O(n * m + n^2)
per round and therefore perfectly fine for workflow *specifications* (at most
a few hundred modules), which is the only place the skeleton framework needs
a DAG labeling.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.exceptions import LabelingError, NotADagError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import topological_sort
from repro.labeling.base import ReachabilityIndex

__all__ = ["TwoHopLabel", "TwoHopIndex"]


class TwoHopLabel(NamedTuple):
    """2-hop label: centers reachable from the vertex and centers reaching it."""

    out_hops: frozenset
    in_hops: frozenset


class TwoHopIndex(ReachabilityIndex):
    """Reachability labeling via a greedy 2-hop cover."""

    scheme_name = "2-hop"
    kernel_hint = "2-hop"
    mutable = True

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        try:
            order = topological_sort(graph)
        except NotADagError as exc:
            raise LabelingError("2-hop labeling requires an acyclic graph") from exc

        index = {vertex: i for i, vertex in enumerate(order)}
        descendants: dict = {}
        for vertex in reversed(order):
            mask = 1 << index[vertex]
            for successor in graph.successors(vertex):
                mask |= descendants[successor]
            descendants[vertex] = mask
        ancestors: dict = {}
        for vertex in order:
            mask = 1 << index[vertex]
            for predecessor in graph.predecessors(vertex):
                mask |= ancestors[predecessor]
            ancestors[vertex] = mask

        # Pairs still in need of a hop center, as one bitmask per source vertex
        # over target indexes (reflexive pairs included for simplicity).
        uncovered = {vertex: descendants[vertex] for vertex in order}
        out_hops: dict = {vertex: set() for vertex in order}
        in_hops: dict = {vertex: set() for vertex in order}

        def star_gain(center) -> int:
            gain = 0
            center_descendants = descendants[center]
            for vertex in order:
                if (ancestors[center] >> index[vertex]) & 1:
                    gain += (uncovered[vertex] & center_descendants).bit_count()
            return gain

        remaining = sum(mask.bit_count() for mask in uncovered.values())
        while remaining > 0:
            center = max(order, key=star_gain)
            gain = star_gain(center)
            if gain == 0:  # pragma: no cover - defensive; cannot happen on DAGs
                raise LabelingError("2-hop construction failed to make progress")
            center_descendants = descendants[center]
            for vertex in order:
                if (ancestors[center] >> index[vertex]) & 1:
                    newly = uncovered[vertex] & center_descendants
                    if newly:
                        uncovered[vertex] &= ~center_descendants
                        out_hops[vertex].add(center)
            for vertex in order:
                if (center_descendants >> index[vertex]) & 1:
                    in_hops[vertex].add(center)
            remaining = sum(mask.bit_count() for mask in uncovered.values())

        self._labels = {
            vertex: TwoHopLabel(
                out_hops=frozenset(out_hops[vertex]), in_hops=frozenset(in_hops[vertex])
            )
            for vertex in order
        }
        self._number_bits = max(1, graph.vertex_count.bit_length())

    # ------------------------------------------------------------------
    # (D, φ, π)
    # ------------------------------------------------------------------
    def label_of(self, vertex) -> TwoHopLabel:
        """Return the 2-hop label of *vertex*."""
        try:
            return self._labels[vertex]
        except KeyError:
            raise LabelingError(f"vertex was not labeled by this index: {vertex!r}") from None

    def reaches_labels(self, source_label: TwoHopLabel, target_label: TwoHopLabel) -> bool:
        """``u`` reaches ``v`` iff some hop center is below ``u`` and above ``v``."""
        return not source_label.out_hops.isdisjoint(target_label.in_hops)

    def reaches_many(self, label_pairs) -> list[bool]:
        """Batch fast path: the disjointness tests inlined into one comprehension."""
        return [
            not source.out_hops.isdisjoint(target.in_hops)
            for source, target in label_pairs
        ]

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def label_length_bits(self, vertex) -> int:
        """``log n`` bits per stored hop center."""
        label = self.label_of(vertex)
        return self._number_bits * (len(label.out_hops) + len(label.in_hops))

    def average_hops(self) -> float:
        """Average number of hop centers per label (index quality metric)."""
        if not self._labels:
            return 0.0
        total = sum(
            len(label.out_hops) + len(label.in_hops) for label in self._labels.values()
        )
        return total / len(self._labels)
