"""Chain-decomposition reachability labeling (Jagadish [10]).

The third classical family of DAG reachability indexes mentioned in the
paper's related work (besides tree cover and 2-hop).  The DAG's vertices are
partitioned into a small number of *chains* (paths); every vertex stores its
chain and position plus, for every chain, the earliest position on that chain
it can reach.  A vertex ``u`` then reaches ``v`` iff ``u``'s entry for ``v``'s
chain is at or before ``v``'s position.

Label size is ``O(k log n)`` where ``k`` is the number of chains, and queries
are a dictionary lookup plus one comparison.  The chains are built greedily
along a topological order, which does not always yield the minimum path
cover but is linear-time and works well on the series-parallel-like shapes of
workflow specifications.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.exceptions import LabelingError, NotADagError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import topological_sort
from repro.labeling.base import ReachabilityIndex

__all__ = ["ChainLabel", "ChainIndex"]

_UNREACHABLE = -1


class ChainLabel(NamedTuple):
    """Chain label: own chain, own position, earliest reachable position per chain.

    ``reach[c]`` is the smallest position on chain ``c`` reachable from the
    vertex (inclusive of itself), or absent when nothing on that chain is
    reachable.
    """

    chain: int
    position: int
    reach: tuple[tuple[int, int], ...]

    def earliest_on(self, chain: int) -> int:
        """Earliest reachable position on *chain*, or -1 when unreachable."""
        for chain_id, position in self.reach:
            if chain_id == chain:
                return position
        return _UNREACHABLE


class ChainIndex(ReachabilityIndex):
    """Reachability labeling via greedy chain decomposition."""

    scheme_name = "chain"
    kernel_hint = "chain"
    pushdown = True
    mutable = True

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        try:
            order = topological_sort(graph)
        except NotADagError as exc:
            raise LabelingError("chain decomposition requires an acyclic graph") from exc

        chain_of, position_of, chain_count = self._decompose(order)
        reach = self._propagate(order, chain_of, position_of, chain_count)

        self._labels: dict = {}
        for vertex in order:
            entries = tuple(sorted(reach[vertex].items()))
            self._labels[vertex] = ChainLabel(
                chain=chain_of[vertex], position=position_of[vertex], reach=entries
            )
        self._chain_count = chain_count
        self._number_bits = max(1, graph.vertex_count.bit_length())

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _decompose(self, order: list) -> tuple[dict, dict, int]:
        """Greedily extend chains along a topological order."""
        chain_of: dict = {}
        position_of: dict = {}
        chain_tails: list = []  # last vertex of each chain
        for vertex in order:
            extended = False
            for predecessor in self._graph.predecessors(vertex):
                chain = chain_of[predecessor]
                if chain_tails[chain] == predecessor:
                    chain_of[vertex] = chain
                    position_of[vertex] = position_of[predecessor] + 1
                    chain_tails[chain] = vertex
                    extended = True
                    break
            if not extended:
                chain_of[vertex] = len(chain_tails)
                position_of[vertex] = 0
                chain_tails.append(vertex)
        return chain_of, position_of, len(chain_tails)

    def _propagate(
        self, order: list, chain_of: dict, position_of: dict, chain_count: int
    ) -> dict:
        """Compute, per vertex, the earliest reachable position on every chain."""
        reach: dict = {}
        for vertex in reversed(order):
            own: dict[int, int] = {chain_of[vertex]: position_of[vertex]}
            for successor in self._graph.successors(vertex):
                for chain, position in reach[successor].items():
                    if chain not in own or position < own[chain]:
                        own[chain] = position
            reach[vertex] = own
        return reach

    # ------------------------------------------------------------------
    # (D, φ, π)
    # ------------------------------------------------------------------
    def label_of(self, vertex) -> ChainLabel:
        """Return the chain label of *vertex*."""
        try:
            return self._labels[vertex]
        except KeyError:
            raise LabelingError(f"vertex was not labeled by this index: {vertex!r}") from None

    def reaches_labels(self, source_label: ChainLabel, target_label: ChainLabel) -> bool:
        """``u`` reaches ``v`` iff ``u`` reaches position <= pos(v) on chain(v)."""
        earliest = source_label.earliest_on(target_label.chain)
        return earliest != _UNREACHABLE and earliest <= target_label.position

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def chain_count(self) -> int:
        """Number of chains in the decomposition (the ``k`` of the analysis)."""
        return self._chain_count

    def label_length_bits(self, vertex) -> int:
        """``2 log n`` for the own coordinates plus ``2 log n`` per reach entry."""
        label = self.label_of(vertex)
        return self._number_bits * (2 + 2 * len(label.reach))
