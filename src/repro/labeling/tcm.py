"""The ``TCM`` labeling scheme: transitive closure matrix rows (Section 7).

``TCM`` precomputes the transitive closure matrix ``M`` of the graph and
assigns the *i*-th row as the label of the *i*-th vertex.  Queries are O(1)
bit tests; the price is ``n`` bits per label and a polynomial construction
time, which is exactly the trade-off the paper's Table 2 and Figures 15–17
explore.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.exceptions import LabelingError
from repro.graphs.digraph import DiGraph
from repro.graphs.transitive_closure import TransitiveClosure, transitive_closure
from repro.labeling.base import ReachabilityIndex

__all__ = ["TCMLabel", "TCMIndex"]


class TCMLabel(NamedTuple):
    """A TCM label: the vertex's column index and its closure row bitset."""

    index: int
    row: int


class TCMIndex(ReachabilityIndex):
    """Transitive-closure-matrix labeling of a directed graph."""

    scheme_name = "tcm"
    kernel_hint = "tcm"
    mutable = True

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        self._closure: TransitiveClosure = transitive_closure(graph)
        self._labels: dict = {
            vertex: TCMLabel(index=self._closure.index[vertex], row=row)
            for vertex, row in zip(self._closure.order, self._closure.rows)
        }

    def _handle_vertices(self):
        # Handle order must match the closure's row order (the packed batch
        # kernel indexes closure rows by handle), which is frozen at build
        # time even if the graph object is mutated afterwards.
        return self._closure.order

    # ------------------------------------------------------------------
    # (D, φ, π)
    # ------------------------------------------------------------------
    def label_of(self, vertex) -> TCMLabel:
        """Return the TCM label of *vertex*."""
        try:
            return self._labels[vertex]
        except KeyError:
            raise LabelingError(f"vertex was not labeled by this index: {vertex!r}") from None

    def reaches_labels(self, source_label: TCMLabel, target_label: TCMLabel) -> bool:
        """Bit-test the source row at the target's column (constant time)."""
        return bool((source_label.row >> target_label.index) & 1)

    def reaches_many(self, label_pairs) -> list[bool]:
        """Batch fast path: the bit tests inlined into one comprehension."""
        return [
            (source.row >> target.index) & 1 == 1
            for source, target in label_pairs
        ]

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def label_length_bits(self, vertex) -> int:
        """One matrix row: ``n`` bits (the column index is bounded by log n)."""
        self.label_of(vertex)
        return self._closure.vertex_count

    @property
    def closure(self) -> TransitiveClosure:
        """The underlying transitive closure (exposed for tests and tooling)."""
        return self._closure
