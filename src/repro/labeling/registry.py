"""Registry of reachability labeling schemes.

The benchmark harness, the CLI and the skeleton labeler all refer to spec
labeling schemes by short names (``"tcm"``, ``"bfs"``, ...); this module maps
those names to index classes and lets downstream users plug in their own
schemes without touching library code.
"""

from __future__ import annotations

from typing import Callable, Type

from repro.exceptions import LabelingError
from repro.labeling.base import ReachabilityIndex
from repro.labeling.bfs import BFSIndex, DFSIndex
from repro.labeling.chain import ChainIndex
from repro.labeling.interval import IntervalTreeIndex
from repro.labeling.tcm import TCMIndex
from repro.labeling.tree_cover import TreeCoverIndex
from repro.labeling.twohop import TwoHopIndex

__all__ = [
    "register_scheme",
    "get_scheme",
    "available_schemes",
    "build_index",
]

_REGISTRY: dict[str, Type[ReachabilityIndex]] = {}


def register_scheme(name: str, index_class: Type[ReachabilityIndex]) -> None:
    """Register *index_class* under *name* (overwrites an existing binding)."""
    if not issubclass(index_class, ReachabilityIndex):
        raise LabelingError(
            f"labeling schemes must subclass ReachabilityIndex, got {index_class!r}"
        )
    _REGISTRY[name.lower()] = index_class


def get_scheme(name: str) -> Type[ReachabilityIndex]:
    """Return the index class registered under *name*."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise LabelingError(
            f"unknown labeling scheme {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_schemes() -> list[str]:
    """Return the names of all registered schemes, sorted."""
    return sorted(_REGISTRY)


def build_index(name: str, graph) -> ReachabilityIndex:
    """Build an index of scheme *name* for *graph*."""
    return get_scheme(name).build(graph)


def scheme_factory(name: str) -> Callable:
    """Return a zero-configuration factory ``graph -> index`` for *name*."""
    index_class = get_scheme(name)
    return index_class.build


# Built-in schemes.
register_scheme("tcm", TCMIndex)
register_scheme("bfs", BFSIndex)
register_scheme("dfs", DFSIndex)
register_scheme("interval", IntervalTreeIndex)
register_scheme("tree-cover", TreeCoverIndex)
register_scheme("chain", ChainIndex)
register_scheme("2-hop", TwoHopIndex)
