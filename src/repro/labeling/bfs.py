"""The ``BFS``/``DFS`` "labeling" schemes: answer queries by graph traversal.

Section 7 describes this as the other extreme of the design space: no index
structure is built at all, so label length and construction time are treated
as zero, while every query costs a traversal of the graph, i.e. O(m + n).
The label of a vertex is simply the vertex itself (the graph stays inside the
index object), mirroring the paper's accounting.
"""

from __future__ import annotations

from repro.exceptions import LabelingError
from repro.graphs.csr import CSRGraph
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import is_reachable
from repro.labeling.base import ReachabilityIndex

__all__ = ["TraversalIndex", "BFSIndex", "DFSIndex"]


class TraversalIndex(ReachabilityIndex):
    """Answer reachability queries by traversing the graph on demand."""

    scheme_name = "traversal"
    #: traversal strategy used by :func:`repro.graphs.traversal.is_reachable`
    method = "bfs"
    #: answers track the live graph, so they must never be memoized
    stable_labels = False
    #: edge updates are free: the graph mutation is the repair
    mutable = True

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        self._vertices = set(graph.vertices())

    def _handle_labels_cacheable(self) -> bool:
        # Labels are the vertex identities themselves, valid exactly as long
        # as the interner is (a vertex-set change raises staleness first),
        # so the handle table need not be rebuilt per query.
        return True

    # ------------------------------------------------------------------
    # (D, φ, π)
    # ------------------------------------------------------------------
    def label_of(self, vertex):
        """The label is the vertex identity itself (no index is stored)."""
        if vertex not in self._vertices:
            raise LabelingError(f"vertex was not labeled by this index: {vertex!r}")
        return vertex

    def reaches_labels(self, source_label, target_label) -> bool:
        """Run a traversal over the stored graph (linear time per query)."""
        return is_reachable(self._graph, source_label, target_label, method=self.method)

    def reaches_many(self, label_pairs) -> list[bool]:
        """Batch fast path: one CSR traversal per *distinct* source.

        The graph is snapshotted into compressed-sparse-row form
        (:class:`~repro.graphs.csr.CSRGraph`) — an O(n + m) pass, the cost
        of a single traversal query — then the pairs are grouped by source
        and each distinct source's reachable set is computed once over the
        flat integer arrays, probed for all of that source's targets, and
        discarded (so peak memory stays O(n) however many sources the batch
        touches).  The snapshot is taken per call rather than cached so
        that, like the per-pair path, the answers always reflect the
        graph's current state.  BFS and DFS visit vertices in different
        orders but decide the same reachable set, so one implementation
        serves both schemes.
        """
        csr = CSRGraph.from_digraph(self._graph)
        id_of = csr.id_of
        positions_by_source: dict[int, list[int]] = {}
        target_ids: list[int] = []
        for position, (source, target) in enumerate(label_pairs):
            positions_by_source.setdefault(id_of(source), []).append(position)
            target_ids.append(id_of(target))
        answers: list[bool] = [False] * len(target_ids)
        for source_id, positions in positions_by_source.items():
            reached = csr.reachable_ids(source_id)
            for position in positions:
                answers[position] = target_ids[position] in reached
        return answers

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def label_length_bits(self, vertex) -> int:
        """Zero, following the paper's accounting for traversal schemes."""
        self.label_of(vertex)
        return 0


class BFSIndex(TraversalIndex):
    """Breadth-first traversal scheme (the paper's ``BFS``)."""

    scheme_name = "bfs"
    method = "bfs"


class DFSIndex(TraversalIndex):
    """Depth-first traversal scheme (the paper's ``DFS``)."""

    scheme_name = "dfs"
    method = "dfs"
