"""The classical interval scheme for trees (Santoro & Khatib [15]).

Every vertex of a rooted tree (edges directed from parent to child) receives
the pair ``(post, low)`` where ``post`` is its postorder number and ``low``
the smallest postorder number in its subtree.  Vertex ``u`` reaches ``v`` iff
``low(u) <= post(v) <= post(u)``.  Labels are two numbers of ``log n`` bits
and queries are two comparisons, which is why the scheme is the reference
point for "optimal" labeling in the paper's introduction.

The scheme only applies to trees and forests; it is used directly for
tree-shaped specifications and as the building block of the tree-cover
scheme for general DAGs (:mod:`repro.labeling.tree_cover`).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.exceptions import GraphError, LabelingError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import is_dag
from repro.labeling.base import ReachabilityIndex

__all__ = ["IntervalLabel", "IntervalTreeIndex", "compute_tree_intervals"]


class IntervalLabel(NamedTuple):
    """Interval label: postorder number and the minimum postorder in the subtree."""

    post: int
    low: int


def compute_tree_intervals(tree: DiGraph) -> dict:
    """Compute ``(post, low)`` interval labels for a forest.

    ``tree`` must be a forest with edges directed from parents to children:
    every vertex has at most one incoming edge and there are no cycles.
    Postorder numbers start at 1 and are assigned with an iterative DFS so
    that very deep trees do not overflow the recursion limit.
    """
    if not is_dag(tree):
        raise GraphError("interval labeling requires an acyclic graph")
    for vertex in tree.vertices():
        if tree.in_degree(vertex) > 1:
            raise GraphError(
                f"interval labeling requires a forest; vertex {vertex!r} has "
                f"{tree.in_degree(vertex)} parents"
            )

    labels: dict = {}
    counter = 0
    roots = [v for v in tree.vertices() if tree.in_degree(v) == 0]
    for root in roots:
        # Iterative postorder: (vertex, expanded) pairs, tracking subtree minima.
        low_of: dict = {}
        stack: list[tuple[object, bool]] = [(root, False)]
        while stack:
            vertex, expanded = stack.pop()
            if not expanded:
                stack.append((vertex, True))
                for child in reversed(tree.successors(vertex)):
                    stack.append((child, False))
                continue
            children = tree.successors(vertex)
            counter += 1
            post = counter
            low = min([low_of[c] for c in children], default=post)
            low = min(low, post)
            low_of[vertex] = low
            labels[vertex] = IntervalLabel(post=post, low=low)
    if len(labels) != tree.vertex_count:
        raise GraphError("interval labeling did not cover every vertex")
    return labels


class IntervalTreeIndex(ReachabilityIndex):
    """Interval labeling of a forest (edges directed parent -> child)."""

    scheme_name = "interval"
    kernel_hint = "interval"
    pushdown = True
    mutable = True

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        self._labels = compute_tree_intervals(graph)
        self._bits = max(1, (graph.vertex_count).bit_length())

    def label_of(self, vertex) -> IntervalLabel:
        """Return the ``(post, low)`` label of *vertex*."""
        try:
            return self._labels[vertex]
        except KeyError:
            raise LabelingError(f"vertex was not labeled by this index: {vertex!r}") from None

    def reaches_labels(self, source_label: IntervalLabel, target_label: IntervalLabel) -> bool:
        """``u`` reaches ``v`` iff ``low(u) <= post(v) <= post(u)``."""
        return source_label.low <= target_label.post <= source_label.post

    def reaches_many(self, label_pairs) -> list[bool]:
        """Batch fast path: the two comparisons inlined into one comprehension."""
        return [
            source.low <= target.post <= source.post
            for source, target in label_pairs
        ]

    def label_length_bits(self, vertex) -> int:
        """Two numbers of ``ceil(log2 n)`` bits each."""
        self.label_of(vertex)
        return 2 * self._bits
