"""The labeling-scheme abstraction ``(D, φ, π)`` (Definition 7).

A reachability labeling scheme assigns every vertex of a directed graph a
label (``φ``) such that a binary predicate over two labels (``π``) decides
reachability.  :class:`ReachabilityIndex` is the concrete form used
throughout this library: an index is *built* for one graph, hands out labels
via :meth:`label_of`, decides reachability from labels via
:meth:`reaches_labels`, and reports its space usage so that the benchmark
harness can reproduce the label-length experiments of Section 8.

The same interface serves both roles the paper distinguishes:

* labeling the *specification* (skeleton labels, Section 7), and
* labeling a *run* directly (the ``TCM`` and ``BFS`` baselines of Figures
  15–17).
"""

from __future__ import annotations

import abc
from collections.abc import Hashable
from typing import Any

from repro.graphs.digraph import DiGraph

__all__ = ["ReachabilityIndex"]

Vertex = Hashable


class ReachabilityIndex(abc.ABC):
    """A reachability labeling scheme instantiated for one fixed graph."""

    #: short scheme name used by the registry and the benchmark reports
    scheme_name: str = "abstract"

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: DiGraph, **options: Any) -> "ReachabilityIndex":
        """Build an index for *graph* (the labeling function ``φ``)."""
        return cls(graph, **options)

    @property
    def graph(self) -> DiGraph:
        """The graph this index was built for."""
        return self._graph

    # ------------------------------------------------------------------
    # the (D, φ, π) interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def label_of(self, vertex: Vertex) -> Any:
        """Return ``φ(v)`` — the reachability label of *vertex*."""

    @abc.abstractmethod
    def reaches_labels(self, source_label: Any, target_label: Any) -> bool:
        """Return ``π(φ(u), φ(v))`` — whether the first label reaches the second.

        Reachability is reflexive: a label always reaches itself.
        """

    def reaches(self, source: Vertex, target: Vertex) -> bool:
        """Convenience wrapper: decide reachability between two vertices."""
        return self.reaches_labels(self.label_of(source), self.label_of(target))

    # ------------------------------------------------------------------
    # quality metrics (Section 8 measurements)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def label_length_bits(self, vertex: Vertex) -> int:
        """Return the length in bits of the label assigned to *vertex*."""

    def max_label_length_bits(self) -> int:
        """Return the maximum label length over all vertices."""
        lengths = [self.label_length_bits(v) for v in self._graph.vertices()]
        return max(lengths, default=0)

    def average_label_length_bits(self) -> float:
        """Return the average label length over all vertices."""
        lengths = [self.label_length_bits(v) for v in self._graph.vertices()]
        if not lengths:
            return 0.0
        return sum(lengths) / len(lengths)

    def total_label_bits(self) -> int:
        """Return the total index size in bits (sum of all label lengths)."""
        return sum(self.label_length_bits(v) for v in self._graph.vertices())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(scheme={self.scheme_name!r}, "
            f"vertices={self._graph.vertex_count})"
        )
