"""The labeling-scheme abstraction ``(D, φ, π)`` (Definition 7).

A reachability labeling scheme assigns every vertex of a directed graph a
label (``φ``) such that a binary predicate over two labels (``π``) decides
reachability.  :class:`ReachabilityIndex` is the concrete form used
throughout this library: an index is *built* for one graph, hands out labels
via :meth:`label_of`, decides reachability from labels via
:meth:`reaches_labels`, and reports its space usage so that the benchmark
harness can reproduce the label-length experiments of Section 8.

The same interface serves both roles the paper distinguishes:

* labeling the *specification* (skeleton labels, Section 7), and
* labeling a *run* directly (the ``TCM`` and ``BFS`` baselines of Figures
  15–17).
"""

from __future__ import annotations

import abc
from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from typing import Any, Optional

from repro.exceptions import LabelingError, VertexNotFoundError
from repro.graphs.digraph import DiGraph
from repro.graphs.handles import VertexInterner, intern_pair_arrays

__all__ = [
    "ReachabilityIndex",
    "VertexHandleAPI",
    "QueryCapabilities",
    "capabilities_of",
]

Vertex = Hashable


@dataclass(frozen=True)
class QueryCapabilities:
    """What a query planner may assume about one query target.

    The session planner (:mod:`repro.api`) and the engine's kernel
    compiler read these *declared* capabilities instead of testing concrete
    classes, so any object with the ``(D, φ, π)`` duck type — an index, a
    labeled run, a stored-run view, an online-run adapter — plugs into the
    same plans by setting the corresponding class attributes.
    """

    #: answers derived from labels stay valid for the target's lifetime;
    #: ``False`` means plans must neither memoize answers nor snapshot labels
    stable_labels: bool
    #: the :class:`VertexHandleAPI` surface (``intern_pairs`` /
    #: ``reaches_many_ids``) is available
    handles: bool
    #: which per-scheme batch-kernel family compiles for this target
    #: (``None`` = only the generic label-table kernel applies)
    kernel_hint: Optional[str]
    #: a ``reaches_many`` batch entry point exists
    batch: bool
    #: the labeled vertex universe can be enumerated (dependency sweeps)
    sweep_domain: bool
    #: the scheme's ``π`` is a range predicate over the persisted label
    #: columns, so stored-run sweeps can be answered by indexed SQL range
    #: scans instead of streaming labels through a kernel
    pushdown: bool
    #: the index accepts ``insert_edge`` / ``delete_edge`` and repairs its
    #: labels in place (per-scheme delta strategy or dirty-region rebuild,
    #: see :mod:`repro.dynamic`); consumers must then track
    #: ``update_version`` to invalidate anything derived from labels
    mutable: bool


def capabilities_of(target: Any) -> QueryCapabilities:
    """Read the declared capability flags of one query target.

    Every flag is an ordinary attribute lookup with a conservative default,
    so duck-typed targets that predate the flags still plan correctly (they
    get the generic kernel and the object-pair paths).
    """
    has_handles = getattr(type(target), "interner", None) is not None
    return QueryCapabilities(
        stable_labels=bool(getattr(target, "stable_labels", True)),
        handles=has_handles,
        kernel_hint=getattr(target, "kernel_hint", None),
        batch=getattr(target, "reaches_many", None) is not None,
        sweep_domain=has_handles,
        pushdown=bool(getattr(target, "pushdown", False)),
        mutable=bool(getattr(target, "mutable", False)),
    )


class VertexHandleAPI:
    """Mixin: the interned integer-handle query surface of a labeling index.

    Hosts must provide ``label_of`` / ``reaches_labels`` / ``reaches_many``
    and a ``stable_labels`` attribute, plus the two template hooks
    :meth:`_handle_vertices` (the labeled vertex universe, in the order
    handles are assigned) and :meth:`_handle_version` (a token that changes
    when that universe changes; ``None`` means it never does).

    The mixin then offers the handle-native counterparts of the object API:
    :meth:`intern` / :meth:`intern_pairs` map vertices to handles **once**
    at the workload boundary, and :meth:`reaches_ids` /
    :meth:`reaches_many_ids` answer queries from handles alone — no
    per-query dictionary lookups.  Handles index a per-index label table, so
    they are only meaningful for the index that issued them.
    """

    _handle_interner: Optional[VertexInterner] = None
    _handle_interner_version: Any = None
    _handle_label_table: Optional[list] = None

    # -- template hooks -------------------------------------------------
    def _handle_vertices(self):
        """The vertex universe handles are assigned over, in handle order."""
        raise NotImplementedError  # pragma: no cover - hosts override

    def _handle_version(self):
        """Staleness token for the vertex universe (``None`` = immutable)."""
        return None

    # -- interning ------------------------------------------------------
    @property
    def interner(self) -> VertexInterner:
        """The vertex <-> handle table of this index (built on first use).

        For indexes that answer from a live graph (``stable_labels`` is
        ``False``) the table is validated against the graph's vertex version
        on every access: handles survive edge mutations but a changed vertex
        *set* raises :class:`~repro.exceptions.LabelingError` rather than
        silently remapping identities.
        """
        if self._handle_interner is None:
            self._handle_interner = VertexInterner(self._handle_vertices())
            self._handle_interner_version = self._handle_version()
        elif not getattr(self, "stable_labels", True):
            if self._handle_version() != self._handle_interner_version:
                raise LabelingError(
                    "vertex handles are stale: the vertex set changed after "
                    "the interner was built; re-intern against a fresh index"
                )
        return self._handle_interner

    def intern(self, vertex: Vertex) -> int:
        """Resolve *vertex* to its integer handle (unknown vertices raise)."""
        try:
            return self.interner.id_of(vertex)
        except VertexNotFoundError:
            raise LabelingError(
                f"vertex was not labeled by this index: {vertex!r}"
            ) from None

    def intern_pairs(self, pairs: Sequence[tuple]):
        """Resolve ``(source, target)`` pairs to two parallel handle arrays.

        This is the one-time boundary conversion: do it once per workload,
        keep the arrays, and replay them through :meth:`reaches_many_ids`
        (or an engine kernel) as often as needed.
        """
        return intern_pair_arrays(self.interner.id_map, pairs)

    # -- handle-native queries ------------------------------------------
    def _handle_labels_cacheable(self) -> bool:
        """Whether the handle-ordered label table may be built once and kept.

        Defaults to ``stable_labels``; hosts whose *labels* are frozen even
        though their *answers* track a live structure override this (e.g. a
        skeleton-labeled run over a traversal-backed spec index: the run
        labels never change, only the fall-through predicate is live).
        """
        return getattr(self, "stable_labels", True)

    def _handle_labels(self) -> list:
        """Labels in handle order (cached when the host's labels are frozen)."""
        interner = self.interner  # staleness check happens here
        if self._handle_labels_cacheable():
            if self._handle_label_table is None:
                label_of = self.label_of
                self._handle_label_table = [label_of(v) for v in interner]
            return self._handle_label_table
        label_of = self.label_of
        return [label_of(v) for v in interner]

    def _check_handle(self, identifier, size: int) -> int:
        if not 0 <= identifier < size:
            raise LabelingError(f"unknown vertex handle: {identifier!r}")
        return identifier

    def reaches_ids(self, source_id: int, target_id: int) -> bool:
        """Handle-native point query: ``π`` applied to two interned handles."""
        labels = self._handle_labels()
        size = len(labels)
        self._check_handle(source_id, size)
        self._check_handle(target_id, size)
        return self.reaches_labels(labels[source_id], labels[target_id])

    def reaches_many_ids(self, source_ids, target_ids) -> list:
        """Handle-native batch query: one answer per ``(source, target)`` handle pair.

        *source_ids* and *target_ids* are parallel integer sequences (the
        shape :meth:`intern_pairs` returns).  Out-of-range handles raise
        :class:`~repro.exceptions.LabelingError`; validation is two O(n)
        reductions, not a per-pair branch.
        """
        if len(source_ids) != len(target_ids):
            raise LabelingError(
                "source_ids and target_ids must have the same length "
                f"({len(source_ids)} != {len(target_ids)})"
            )
        labels = self._handle_labels()
        size = len(labels)
        if len(source_ids):
            for ids in (source_ids, target_ids):
                low, high = min(ids), max(ids)
                if low < 0 or high >= size:
                    self._check_handle(low if low < 0 else high, size)
        label_pairs = [
            (labels[s], labels[t]) for s, t in zip(source_ids, target_ids)
        ]
        return self.reaches_many(label_pairs)


class ReachabilityIndex(VertexHandleAPI, abc.ABC):
    """A reachability labeling scheme instantiated for one fixed graph."""

    #: short scheme name used by the registry and the benchmark reports
    scheme_name: str = "abstract"

    #: which batch-kernel family :func:`repro.engine.kernels.build_kernel`
    #: compiles for this scheme (a declared capability, read through
    #: :func:`capabilities_of`); ``None`` selects the generic label-table
    #: kernel.  Subclasses that change their predicate's semantics must
    #: reset this to ``None`` rather than inherit a kernel that no longer
    #: matches.
    kernel_hint: Optional[str] = None

    #: whether the scheme's predicate ``π`` is a pure range comparison over
    #: the persisted label columns — the property the storage layer's SQL
    #: pushdown needs to answer sweeps as indexed range scans.  True only
    #: for the interval-shaped schemes (interval, tree-cover, chain);
    #: set-intersection (2-hop), matrix (tcm) and traversal schemes stay
    #: kernel-only.  Like ``kernel_hint``, subclasses that change predicate
    #: semantics must reset this to ``False``.
    pushdown: bool = False

    #: whether answers derived from labels stay valid for the index's
    #: lifetime.  True for every label-materializing scheme (labels are
    #: computed at build time); the traversal schemes set it to False
    #: because they answer from the live graph, so consumers (e.g. the
    #: query engine's hot-pair cache) must not memoize their answers.
    stable_labels: bool = True

    #: whether the index supports in-place edge updates through
    #: :meth:`insert_edge` / :meth:`delete_edge`.  ``True`` for every
    #: registered scheme (each has a delta strategy or a dirty-region
    #: fallback in :mod:`repro.dynamic`); duck-typed targets that predate
    #: the update surface — labeled runs, stored-run views — default to
    #: ``False`` and reject updates.
    mutable: bool = False

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph

    # -- vertex-handle template hooks (see VertexHandleAPI) -------------
    def _handle_vertices(self):
        return self._graph.vertices()

    def _handle_version(self):
        return getattr(self._graph, "vertex_version", None)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: DiGraph, **options: Any) -> "ReachabilityIndex":
        """Build an index for *graph* (the labeling function ``φ``)."""
        return cls(graph, **options)

    @property
    def graph(self) -> DiGraph:
        """The graph this index was built for."""
        return self._graph

    # ------------------------------------------------------------------
    # the (D, φ, π) interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def label_of(self, vertex: Vertex) -> Any:
        """Return ``φ(v)`` — the reachability label of *vertex*."""

    @abc.abstractmethod
    def reaches_labels(self, source_label: Any, target_label: Any) -> bool:
        """Return ``π(φ(u), φ(v))`` — whether the first label reaches the second.

        Reachability is reflexive: a label always reaches itself.
        """

    def reaches(self, source: Vertex, target: Vertex) -> bool:
        """Convenience wrapper: decide reachability between two vertices."""
        return self.reaches_labels(self.label_of(source), self.label_of(target))

    # ------------------------------------------------------------------
    # dynamic updates (mutable schemes only; see repro.dynamic)
    # ------------------------------------------------------------------
    @property
    def update_version(self) -> int:
        """Monotone token bumped by every applied edge update.

        The sibling of ``vertex_version`` on the edge axis: it follows the
        underlying graph's :attr:`~repro.graphs.digraph.DiGraph.update_version`
        counter, so anything compiled from this index's labels (engine
        kernels, hot-pair caches, session plans, stored-run views) can
        snapshot the token and recompile when it moves.
        """
        return getattr(self._graph, "update_version", 0)

    @property
    def update_log(self):
        """The :class:`repro.dynamic.UpdateLog` of applied updates.

        Every mutable index gets one lazily on its first update; reading it
        before any update returns an empty log.  Immutable duck-typed
        targets never have one.
        """
        from repro.dynamic.log import UpdateLog

        log = getattr(self, "_dynamic_update_log", None)
        if log is None:
            log = UpdateLog()
            self._dynamic_update_log = log
        return log

    def _require_mutable(self) -> None:
        if not type(self).mutable:
            raise LabelingError(
                f"scheme {self.scheme_name!r} does not support in-place "
                "edge updates; rebuild the index for the mutated graph"
            )

    def insert_edge(self, tail: Vertex, head: Vertex) -> None:
        """Insert ``tail -> head`` into the graph and repair the labels.

        Dispatches to the scheme's delta strategy (:mod:`repro.dynamic`);
        updates the delta cannot handle cheaply fall back to a dirty-region
        partial rebuild recorded in :attr:`update_log`.  Inserting an edge
        that would create a cycle raises
        :class:`~repro.exceptions.GraphError` and leaves the index intact.
        """
        self._require_mutable()
        from repro.dynamic.strategies import apply_insert

        apply_insert(self, tail, head)

    def delete_edge(self, tail: Vertex, head: Vertex) -> None:
        """Remove ``tail -> head`` from the graph and repair the labels.

        Missing edges raise :class:`~repro.exceptions.EdgeNotFoundError`
        and leave the index intact.
        """
        self._require_mutable()
        from repro.dynamic.strategies import apply_delete

        apply_delete(self, tail, head)

    def reaches_many(self, label_pairs: Sequence[tuple[Any, Any]]) -> list[bool]:
        """Batch form of :meth:`reaches_labels`: one answer per label pair.

        The batch query engine (:mod:`repro.engine`) resolves vertices to
        labels once and then calls this method with the whole workload, so
        schemes with a cheap predicate override it with a tight specialized
        loop (see ``tcm``, ``interval``, ``2-hop`` and the traversal
        schemes).  The default evaluates ``π`` pair by pair and is always
        correct.
        """
        reaches_labels = self.reaches_labels
        return [reaches_labels(source, target) for source, target in label_pairs]

    # ------------------------------------------------------------------
    # quality metrics (Section 8 measurements)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def label_length_bits(self, vertex: Vertex) -> int:
        """Return the length in bits of the label assigned to *vertex*."""

    def max_label_length_bits(self) -> int:
        """Return the maximum label length over all vertices."""
        lengths = [self.label_length_bits(v) for v in self._graph.vertices()]
        return max(lengths, default=0)

    def average_label_length_bits(self) -> float:
        """Return the average label length over all vertices."""
        lengths = [self.label_length_bits(v) for v in self._graph.vertices()]
        if not lengths:
            return 0.0
        return sum(lengths) / len(lengths)

    def total_label_bits(self) -> int:
        """Return the total index size in bits (sum of all label lengths)."""
        return sum(self.label_length_bits(v) for v in self._graph.vertices())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(scheme={self.scheme_name!r}, "
            f"vertices={self._graph.vertex_count})"
        )
