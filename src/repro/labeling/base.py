"""The labeling-scheme abstraction ``(D, φ, π)`` (Definition 7).

A reachability labeling scheme assigns every vertex of a directed graph a
label (``φ``) such that a binary predicate over two labels (``π``) decides
reachability.  :class:`ReachabilityIndex` is the concrete form used
throughout this library: an index is *built* for one graph, hands out labels
via :meth:`label_of`, decides reachability from labels via
:meth:`reaches_labels`, and reports its space usage so that the benchmark
harness can reproduce the label-length experiments of Section 8.

The same interface serves both roles the paper distinguishes:

* labeling the *specification* (skeleton labels, Section 7), and
* labeling a *run* directly (the ``TCM`` and ``BFS`` baselines of Figures
  15–17).
"""

from __future__ import annotations

import abc
from collections.abc import Hashable, Sequence
from typing import Any

from repro.graphs.digraph import DiGraph

__all__ = ["ReachabilityIndex"]

Vertex = Hashable


class ReachabilityIndex(abc.ABC):
    """A reachability labeling scheme instantiated for one fixed graph."""

    #: short scheme name used by the registry and the benchmark reports
    scheme_name: str = "abstract"

    #: whether answers derived from labels stay valid for the index's
    #: lifetime.  True for every label-materializing scheme (labels are
    #: computed at build time); the traversal schemes set it to False
    #: because they answer from the live graph, so consumers (e.g. the
    #: query engine's hot-pair cache) must not memoize their answers.
    stable_labels: bool = True

    def __init__(self, graph: DiGraph) -> None:
        self._graph = graph

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: DiGraph, **options: Any) -> "ReachabilityIndex":
        """Build an index for *graph* (the labeling function ``φ``)."""
        return cls(graph, **options)

    @property
    def graph(self) -> DiGraph:
        """The graph this index was built for."""
        return self._graph

    # ------------------------------------------------------------------
    # the (D, φ, π) interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def label_of(self, vertex: Vertex) -> Any:
        """Return ``φ(v)`` — the reachability label of *vertex*."""

    @abc.abstractmethod
    def reaches_labels(self, source_label: Any, target_label: Any) -> bool:
        """Return ``π(φ(u), φ(v))`` — whether the first label reaches the second.

        Reachability is reflexive: a label always reaches itself.
        """

    def reaches(self, source: Vertex, target: Vertex) -> bool:
        """Convenience wrapper: decide reachability between two vertices."""
        return self.reaches_labels(self.label_of(source), self.label_of(target))

    def reaches_many(self, label_pairs: Sequence[tuple[Any, Any]]) -> list[bool]:
        """Batch form of :meth:`reaches_labels`: one answer per label pair.

        The batch query engine (:mod:`repro.engine`) resolves vertices to
        labels once and then calls this method with the whole workload, so
        schemes with a cheap predicate override it with a tight specialized
        loop (see ``tcm``, ``interval``, ``2-hop`` and the traversal
        schemes).  The default evaluates ``π`` pair by pair and is always
        correct.
        """
        reaches_labels = self.reaches_labels
        return [reaches_labels(source, target) for source, target in label_pairs]

    # ------------------------------------------------------------------
    # quality metrics (Section 8 measurements)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def label_length_bits(self, vertex: Vertex) -> int:
        """Return the length in bits of the label assigned to *vertex*."""

    def max_label_length_bits(self) -> int:
        """Return the maximum label length over all vertices."""
        lengths = [self.label_length_bits(v) for v in self._graph.vertices()]
        return max(lengths, default=0)

    def average_label_length_bits(self) -> float:
        """Return the average label length over all vertices."""
        lengths = [self.label_length_bits(v) for v in self._graph.vertices()]
        if not lengths:
            return 0.0
        return sum(lengths) / len(lengths)

    def total_label_bits(self) -> int:
        """Return the total index size in bits (sum of all label lengths)."""
        return sum(self.label_length_bits(v) for v in self._graph.vertices())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(scheme={self.scheme_name!r}, "
            f"vertices={self._graph.vertex_count})"
        )
