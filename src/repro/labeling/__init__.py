"""Reachability labeling schemes for directed graphs."""

from repro.labeling.base import (
    QueryCapabilities,
    ReachabilityIndex,
    VertexHandleAPI,
    capabilities_of,
)
from repro.labeling.bfs import BFSIndex, DFSIndex, TraversalIndex
from repro.labeling.chain import ChainIndex, ChainLabel
from repro.labeling.interval import IntervalLabel, IntervalTreeIndex, compute_tree_intervals
from repro.labeling.registry import (
    available_schemes,
    build_index,
    get_scheme,
    register_scheme,
    scheme_factory,
)
from repro.labeling.tcm import TCMIndex, TCMLabel
from repro.labeling.tree_cover import TreeCoverIndex, TreeCoverLabel, compress_intervals
from repro.labeling.twohop import TwoHopIndex, TwoHopLabel

__all__ = [
    "ReachabilityIndex",
    "VertexHandleAPI",
    "QueryCapabilities",
    "capabilities_of",
    "BFSIndex",
    "DFSIndex",
    "TraversalIndex",
    "ChainIndex",
    "ChainLabel",
    "TwoHopIndex",
    "TwoHopLabel",
    "IntervalLabel",
    "IntervalTreeIndex",
    "compute_tree_intervals",
    "available_schemes",
    "build_index",
    "get_scheme",
    "register_scheme",
    "scheme_factory",
    "TCMIndex",
    "TCMLabel",
    "TreeCoverIndex",
    "TreeCoverLabel",
    "compress_intervals",
]
