"""The tree-cover labeling scheme for DAGs (Agrawal, Borgida & Jagadish [2]).

Section 2 of the paper lists tree cover as one of the standard families of
DAG reachability indexes that can be used to label the *specification*.  The
scheme works as follows:

1. choose a spanning forest of the DAG (here: for every vertex, the first
   predecessor in a fixed topological order becomes its tree parent);
2. assign interval labels ``[low, post]`` over that forest
   (:mod:`repro.labeling.interval`);
3. sweep the vertices in reverse topological order and give every vertex the
   *compressed* union of its own tree interval and the interval sets of its
   direct successors.

``u`` reaches ``v`` iff ``post(v)`` falls inside one of ``u``'s intervals.
Label sizes adapt to the graph: tree-like specifications get near-constant
labels while dense ones degrade gracefully, which makes the scheme a useful
third option (besides TCM and BFS) for the robustness experiments.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.exceptions import LabelingError, NotADagError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import topological_sort
from repro.labeling.base import ReachabilityIndex
from repro.labeling.interval import compute_tree_intervals

__all__ = ["TreeCoverLabel", "TreeCoverIndex", "compress_intervals"]


class TreeCoverLabel(NamedTuple):
    """Tree-cover label: the vertex's tree postorder number and its intervals."""

    post: int
    intervals: tuple[tuple[int, int], ...]


def compress_intervals(intervals: list[tuple[int, int]]) -> tuple[tuple[int, int], ...]:
    """Merge overlapping, adjacent and contained intervals.

    The input is a list of inclusive ``(low, high)`` pairs; the result is the
    minimal sorted tuple of disjoint intervals covering the same points.
    """
    if not intervals:
        return ()
    ordered = sorted(intervals)
    merged: list[list[int]] = [list(ordered[0])]
    for low, high in ordered[1:]:
        last = merged[-1]
        if low <= last[1] + 1:
            last[1] = max(last[1], high)
        else:
            merged.append([low, high])
    return tuple((low, high) for low, high in merged)


class TreeCoverIndex(ReachabilityIndex):
    """Tree-cover reachability labeling of a DAG."""

    scheme_name = "tree-cover"
    kernel_hint = "tree-cover"
    pushdown = True
    mutable = True

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        try:
            order = topological_sort(graph)
        except NotADagError as exc:
            raise LabelingError("tree cover requires an acyclic graph") from exc

        # 1. spanning forest: first predecessor in topological order is the parent
        position = {vertex: i for i, vertex in enumerate(order)}
        forest = DiGraph(vertices=order)
        for vertex in order:
            predecessors = self._graph.predecessors(vertex)
            if predecessors:
                parent = min(predecessors, key=position.__getitem__)
                forest.add_edge(parent, vertex)

        # 2. interval labels over the forest
        tree_labels = compute_tree_intervals(forest)

        # 3. propagate interval sets in reverse topological order
        interval_sets: dict = {}
        for vertex in reversed(order):
            own = tree_labels[vertex]
            gathered: list[tuple[int, int]] = [(own.low, own.post)]
            for successor in self._graph.successors(vertex):
                gathered.extend(interval_sets[successor])
            interval_sets[vertex] = compress_intervals(gathered)

        self._labels: dict = {
            vertex: TreeCoverLabel(
                post=tree_labels[vertex].post, intervals=interval_sets[vertex]
            )
            for vertex in order
        }
        self._number_bits = max(1, graph.vertex_count.bit_length())

    # ------------------------------------------------------------------
    # (D, φ, π)
    # ------------------------------------------------------------------
    def label_of(self, vertex) -> TreeCoverLabel:
        """Return the tree-cover label of *vertex*."""
        try:
            return self._labels[vertex]
        except KeyError:
            raise LabelingError(f"vertex was not labeled by this index: {vertex!r}") from None

    def reaches_labels(self, source_label: TreeCoverLabel, target_label: TreeCoverLabel) -> bool:
        """``u`` reaches ``v`` iff ``post(v)`` lies in one of ``u``'s intervals."""
        post = target_label.post
        for low, high in source_label.intervals:
            if low <= post <= high:
                return True
            if low > post:
                break  # intervals are sorted; no later interval can contain post
        return False

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def label_length_bits(self, vertex) -> int:
        """``log n`` bits for the postorder number plus ``2 log n`` per interval."""
        label = self.label_of(vertex)
        return self._number_bits * (1 + 2 * len(label.intervals))

    def max_intervals(self) -> int:
        """Return the largest interval-set size over all vertices (index quality)."""
        return max((len(l.intervals) for l in self._labels.values()), default=0)
