"""Command-line interface for the provenance labeling library.

The CLI exposes the typical life cycle of the system:

* ``generate-spec`` — create a synthetic specification and write it to disk;
* ``generate-run`` — simulate a run of a specification;
* ``label`` — label a run with the skeleton-based scheme and store it in a
  SQLite provenance database;
* ``query`` — answer a reachability query from the stored labels;
* ``query-batch`` — answer a whole file of reachability queries in one
  batch (text ``source target`` lines, or the zero-parse binary handle
  format via ``--format bin``);
* ``pack-workload`` — resolve a text pair file against a stored run's
  persisted interner and write the binary handle workload;
* ``sweep`` — one dependency sweep across **all** stored runs of a
  specification (the cross-run query; ``--workers`` fans the per-run
  payloads across the parallel executor);
* ``cross-batch`` — the same pair workload asked of **every** stored run
  of a specification (a runs x pairs matrix, parallel like ``sweep``);
* ``serve`` — put a provenance database behind a TCP socket (the binary
  wire protocol of :mod:`repro.server`);
* ``health`` — probe a running server for shard reachability, pool
  liveness and inflight depth (exit 0 on ``ok``, 1 on ``degraded``);
* ``experiments`` — regenerate the paper's tables and figures;
* ``info`` — show a specification's characteristics (the Table 1 columns).

Every query command routes through the one declarative surface,
:class:`repro.api.ProvenanceSession` — and every query command accepts a
``repro://host:port/`` URL for ``--database``, in which case it runs
against a remote ``serve`` daemon instead of a local file.

Example::

    repro-provenance generate-spec --modules 100 --edges 200 --regions 10 \\
        --depth 4 --output spec.json
    repro-provenance generate-run --spec spec.json --size 10000 --output run.json
    repro-provenance label --spec spec.json --run run.json --database prov.db
    repro-provenance query --database prov.db --run-id 1 --source m0003:1 --target m0090:2
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.api.plans import HANDLE_PATH_MIN_PAIRS as _HANDLE_PATH_MIN_PAIRS
from repro.api.queries import (
    BatchQuery,
    CrossRunBatchQuery,
    CrossRunQuery,
    PointQuery,
)
from repro.api.workload import decode_pair_workload, write_pair_workload
from repro.bench.experiments import all_experiments
from repro.bench.reporting import write_report
from repro.datasets.reallife import load_real_workflow, real_workflow_names
from repro.datasets.synthetic import SyntheticSpecConfig, generate_specification
from repro.exceptions import LabelingError, ReproError, StorageError
from repro.server.client import RemoteStore, is_remote_target
from repro.server.daemon import (
    INGEST_FLUSH_AFTER_DEFAULT,
    MAX_INFLIGHT_DEFAULT,
    ProvenanceServer,
)
from repro.server.protocol import DEFAULT_PORT
from repro.skeleton.skl import SkeletonLabeler
from repro.storage.sharded import MAX_SHARDS, open_store
from repro.workflow.execution import generate_run_with_size
from repro.workflow.serialization import (
    read_run,
    read_specification,
    write_run,
    write_specification,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-provenance`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-provenance",
        description="Skeleton-based reachability labeling for workflow provenance",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    spec_parser = subparsers.add_parser(
        "generate-spec", help="generate a synthetic workflow specification"
    )
    spec_parser.add_argument("--modules", type=int, required=True, help="nG")
    spec_parser.add_argument("--edges", type=int, required=True, help="mG")
    spec_parser.add_argument("--regions", type=int, required=True, help="|TG| (forks+loops+1)")
    spec_parser.add_argument("--depth", type=int, required=True, help="[TG]")
    spec_parser.add_argument("--seed", type=int, default=0)
    spec_parser.add_argument("--name", default="synthetic")
    spec_parser.add_argument("--output", type=Path, required=True, help=".json or .xml path")

    run_parser = subparsers.add_parser("generate-run", help="simulate a run of a specification")
    run_parser.add_argument("--spec", type=Path, required=True)
    run_parser.add_argument("--size", type=int, required=True, help="target number of vertices")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--name", default="run")
    run_parser.add_argument("--output", type=Path, required=True, help=".json or .xml path")

    label_parser = subparsers.add_parser(
        "label", help="label a run with SKL and store it in a provenance database"
    )
    label_parser.add_argument("--spec", type=Path, required=True)
    label_parser.add_argument("--run", type=Path, required=True)
    label_parser.add_argument("--scheme", default="tcm", help="spec labeling scheme")
    label_parser.add_argument(
        "--database",
        required=True,
        help="database path, or repro://host:port/ of a running server",
    )
    label_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard the provenance database across N SQLite files "
        f"(1-{MAX_SHARDS}; --database then names a directory).  Omit to "
        "use a single-file store, or to reuse the layout of an existing "
        "database",
    )

    query_parser = subparsers.add_parser(
        "query", help="answer a reachability query from stored labels"
    )
    query_parser.add_argument(
        "--database",
        required=True,
        help="database path, or repro://host:port/ of a running server",
    )
    query_parser.add_argument("--run-id", type=int, required=True)
    query_parser.add_argument("--source", required=True, help="module:instance, e.g. m0003:1")
    query_parser.add_argument("--target", required=True, help="module:instance, e.g. m0090:2")

    batch_parser = subparsers.add_parser(
        "query-batch",
        help="answer many reachability queries in one batch (labels fetched once)",
    )
    batch_parser.add_argument(
        "--database",
        required=True,
        help="database path, or repro://host:port/ of a running server",
    )
    batch_parser.add_argument("--run-id", type=int, required=True)
    batch_parser.add_argument(
        "--pairs",
        required=True,
        help="file of 'source target' lines (module:instance each), or - for stdin",
    )
    batch_parser.add_argument(
        "--format",
        choices=("text", "bin"),
        default="text",
        help="text lines, or the binary handle workload written by pack-workload",
    )
    batch_parser.add_argument(
        "--summary-only",
        action="store_true",
        help="print only the summary line, not one line per pair",
    )

    pack_parser = subparsers.add_parser(
        "pack-workload",
        help="resolve a text pair file against a run's persisted interner "
        "and write the zero-parse binary workload",
    )
    pack_parser.add_argument(
        "--database",
        required=True,
        help="database path (pack-workload needs the on-disk interner)",
    )
    pack_parser.add_argument("--run-id", type=int, required=True)
    pack_parser.add_argument(
        "--pairs",
        required=True,
        help="text file of 'source target' lines, or - for stdin",
    )
    pack_parser.add_argument(
        "--output", type=Path, required=True, help="binary workload path"
    )

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="one dependency sweep across ALL stored runs of a specification",
    )
    sweep_parser.add_argument(
        "--database",
        required=True,
        help="database path, or repro://host:port/ of a running server",
    )
    sweep_parser.add_argument("--spec", required=True, help="specification name")
    sweep_parser.add_argument(
        "--source", required=True, help="anchor execution, module:instance"
    )
    sweep_parser.add_argument(
        "--direction", choices=("downstream", "upstream"), default="downstream"
    )
    sweep_parser.add_argument(
        "--summary-only",
        action="store_true",
        help="print only per-run counts, not the affected executions",
    )
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel workers for the per-run payloads (default: auto-sized "
        "from the CPU count; 1 forces the sequential path)",
    )
    sweep_parser.add_argument(
        "--pushdown",
        choices=("auto", "always", "never"),
        default="auto",
        help="answer the sweep as indexed SQL range scans inside the store "
        "('always' errors on schemes without the capability; default: auto)",
    )

    cross_batch_parser = subparsers.add_parser(
        "cross-batch",
        help="answer the same pair workload against EVERY stored run of a "
        "specification (a runs x pairs matrix)",
    )
    cross_batch_parser.add_argument(
        "--database",
        required=True,
        help="database path, or repro://host:port/ of a running server",
    )
    cross_batch_parser.add_argument(
        "--spec", required=True, help="specification name"
    )
    cross_batch_parser.add_argument(
        "--pairs",
        required=True,
        help="file of 'source target' lines (module:instance each), or - for stdin",
    )
    cross_batch_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parallel workers for the per-run payloads (default: auto)",
    )
    cross_batch_parser.add_argument(
        "--summary-only",
        action="store_true",
        help="print only per-run reachable counts, not one line per pair",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve a provenance database over TCP (the repro:// protocol)",
    )
    serve_parser.add_argument("--database", type=Path, required=True)
    serve_parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard a NEW database across N SQLite files (existing "
        "databases keep their layout)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port (default {DEFAULT_PORT}; 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=MAX_INFLIGHT_DEFAULT,
        help="queued requests per connection before the server stops "
        "reading that socket (backpressure bound)",
    )
    serve_parser.add_argument(
        "--ingest-flush-after",
        type=int,
        default=INGEST_FLUSH_AFTER_DEFAULT,
        help="buffered ingest entries per connection before an automatic "
        "flush through the batch commit path",
    )

    health_parser = subparsers.add_parser(
        "health",
        help="probe a running provenance server (shard reachability, "
        "pool liveness, inflight depth)",
    )
    health_parser.add_argument(
        "--database",
        required=True,
        help="repro://host:port/ URL of the server to probe",
    )

    stats_parser = subparsers.add_parser(
        "stats",
        help="show a store's cache statistics and per-shard skew table",
    )
    stats_parser.add_argument(
        "--database",
        required=True,
        help="database directory/file, or a repro://host:port/ URL",
    )
    stats_parser.add_argument(
        "--json", action="store_true", help="emit the raw statistics as JSON"
    )

    rebalance_parser = subparsers.add_parser(
        "rebalance",
        help="migrate a hot specification's runs onto their own shard "
        "(online; readers keep answering throughout)",
    )
    rebalance_parser.add_argument(
        "--database",
        required=True,
        help="sharded database directory, or a repro://host:port/ URL",
    )
    rebalance_parser.add_argument("--spec", required=True, help="specification name")
    rebalance_parser.add_argument(
        "--shard",
        type=int,
        default=None,
        help="target shard index (default: the least-loaded shard)",
    )

    replicate_parser = subparsers.add_parser(
        "replicate",
        help="attach read replicas of a hot specification's owning shard",
    )
    replicate_parser.add_argument(
        "--database",
        required=True,
        help="sharded database directory, or a repro://host:port/ URL",
    )
    replicate_parser.add_argument("--spec", required=True, help="specification name")
    replicate_parser.add_argument(
        "--copies", type=int, default=1, help="replica count (default 1)"
    )

    routing_parser = subparsers.add_parser(
        "routing",
        help="show the shard routing table (overrides, routed runs, replicas)",
    )
    routing_parser.add_argument(
        "--database",
        required=True,
        help="sharded database directory, or a repro://host:port/ URL",
    )
    routing_parser.add_argument(
        "--json", action="store_true", help="emit the raw table as JSON"
    )

    verify_parser = subparsers.add_parser(
        "verify", help="check that a run conforms to a specification"
    )
    verify_parser.add_argument("--spec", type=Path, required=True)
    verify_parser.add_argument("--run", type=Path, required=True)

    info_parser = subparsers.add_parser("info", help="show a specification's characteristics")
    info_group = info_parser.add_mutually_exclusive_group(required=True)
    info_group.add_argument("--spec", type=Path, help="specification file")
    info_group.add_argument(
        "--catalog", choices=real_workflow_names(), help="one of the Table 1 workflows"
    )

    experiments_parser = subparsers.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments_parser.add_argument(
        "--scale", choices=("smoke", "default", "paper"), default="default"
    )
    experiments_parser.add_argument("--seed", type=int, default=0)
    experiments_parser.add_argument(
        "--output-dir", type=Path, default=None, help="also write one report file per experiment"
    )
    return parser


def _parse_execution(text: str) -> tuple[str, int]:
    module, _, instance = text.rpartition(":")
    if not module:
        raise ReproError(
            f"executions must be written as module:instance, got {text!r}"
        )
    try:
        return module, int(instance)
    except ValueError:
        raise ReproError(f"instance must be an integer in {text!r}") from None


def _open_database(target: str, *, shards: Optional[int] = None):
    """Open a ``--database`` argument: a path on disk, or a server URL.

    Both shapes come back as context managers with the store surface the
    query commands use (``session()``, ``list_runs``, ``add_labeled_run``),
    so the commands themselves never branch on where the store lives.
    """
    if is_remote_target(target):
        if shards is not None:
            raise ReproError(
                "--shards configures the on-disk layout; the server that "
                f"owns {target} already chose one"
            )
        return RemoteStore(target)
    return open_store(Path(target), shards=shards)


def _command_generate_spec(args: argparse.Namespace) -> int:
    spec = generate_specification(
        SyntheticSpecConfig(
            n_modules=args.modules,
            n_edges=args.edges,
            hierarchy_size=args.regions,
            hierarchy_depth=args.depth,
            name=args.name,
            seed=args.seed,
        )
    )
    write_specification(spec, args.output)
    print(
        f"wrote specification {spec.name!r}: nG={spec.vertex_count} mG={spec.edge_count} "
        f"|TG|={spec.hierarchy.size} [TG]={spec.hierarchy.depth} -> {args.output}"
    )
    return 0


def _command_generate_run(args: argparse.Namespace) -> int:
    spec = read_specification(args.spec)
    generated = generate_run_with_size(spec, args.size, seed=args.seed, name=args.name)
    write_run(generated.run, args.output)
    print(
        f"wrote run {generated.run.name!r}: nR={generated.run.vertex_count} "
        f"mR={generated.run.edge_count} -> {args.output}"
    )
    return 0


def _command_label(args: argparse.Namespace) -> int:
    spec = read_specification(args.spec)
    run = read_run(args.run, spec)
    labeler = SkeletonLabeler(spec, args.scheme)
    labeled = labeler.label_run(run)
    with _open_database(args.database, shards=args.shards) as store:
        run_id = store.add_labeled_run(labeled)
        if hasattr(store, "shard_path_of"):
            layout = f"shard {store.shard_path_of(run_id).name} of {store.shard_count}"
        elif is_remote_target(args.database):
            layout = "sharded, via server" if store.sharded else "single file, via server"
        else:
            layout = "single file"
    print(
        f"labeled run {run.name!r} ({run.vertex_count} vertices) with "
        f"{args.scheme}+skl; stored as run_id={run_id} in {args.database} "
        f"({layout})"
    )
    print(
        f"max label length: {labeled.max_label_length_bits()} bits; "
        f"construction: {labeled.timings.total_seconds * 1e3:.2f} ms"
    )
    return 0


def _command_query(args: argparse.Namespace) -> int:
    source = _parse_execution(args.source)
    target = _parse_execution(args.target)
    with _open_database(args.database) as store:
        answer = store.session().run(
            PointQuery(source, target, run_id=args.run_id)
        )
    print(
        f"{args.source} {'reaches' if answer else 'does not reach'} {args.target} "
        f"in run {args.run_id}"
    )
    return 0 if answer else 1


def _parse_pair_lines(text: str):
    """Parse 'source target' lines; blank lines and ``#`` comments are skipped.

    Returns the pairs plus a parallel list of ``(line_number, source_token,
    target_token)`` records, so errors discovered later (e.g. an execution
    absent from the queried run) can point back into the input file.
    """
    pairs = []
    origins = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ReproError(
                f"line {line_number}: expected 'source target', got {line!r}"
            )
        pairs.append((_parse_execution(parts[0]), _parse_execution(parts[1])))
        origins.append((line_number, parts[0], parts[1]))
    return pairs, origins


def _read_pairs_source(pairs_argument: str) -> tuple[str, str]:
    """Read the text behind ``--pairs`` (a path or ``-``); returns (text, label)."""
    if pairs_argument == "-":
        return sys.stdin.read(), "<stdin>"
    pairs_path = Path(pairs_argument)
    if not pairs_path.exists():
        raise ReproError(f"pairs file not found: {pairs_path}")
    return pairs_path.read_text(), str(pairs_path)


def _raise_unknown_execution(
    store,
    run_id: int,
    pairs,
    origins,
    source_label: str,
    original: Exception,
) -> None:
    """Re-raise an unknown-execution failure with file/line/token context."""
    engine_of = getattr(store, "query_engine", None)
    if engine_of is None:
        # a remote store has no local interner to pinpoint the bad token;
        # the server's message already names the offending execution
        raise ReproError(str(original)) from None
    try:
        id_map = engine_of(run_id).interner.id_map
    except ReproError:
        raise ReproError(str(original)) from None
    for (source, target), (line_number, source_token, target_token) in zip(
        pairs, origins
    ):
        for execution, token in ((source, source_token), (target, target_token)):
            if execution not in id_map:
                raise ReproError(
                    f"{source_label}, line {line_number}: unknown execution "
                    f"{token!r} in run {run_id}"
                ) from None
    raise ReproError(str(original)) from None


def _command_query_batch(args: argparse.Namespace) -> int:
    import time

    with _open_database(args.database) as store:
        session = store.session()
        if args.format == "bin":
            if args.pairs == "-":
                payload = sys.stdin.buffer.read()
            else:
                pairs_path = Path(args.pairs)
                if not pairs_path.exists():
                    raise ReproError(f"pairs file not found: {pairs_path}")
                payload = pairs_path.read_bytes()
            _, source_ids, target_ids = decode_pair_workload(
                payload, expect_run_id=args.run_id
            )
            if not len(source_ids):
                raise ReproError("no query pairs given")
            started = time.perf_counter()
            try:
                answers = session.run(
                    BatchQuery(
                        source_ids=source_ids,
                        target_ids=target_ids,
                        run_id=args.run_id,
                    )
                )
            except LabelingError as exc:
                raise ReproError(f"run {args.run_id}: {exc}") from None
            elapsed = time.perf_counter() - started
            if args.summary_only:
                # the whole point of the binary format is the zero-parse
                # replay; only resolve handles back to names when printing
                pairs = source_ids
            elif hasattr(store, "query_engine"):
                vertex_at = store.query_engine(args.run_id).interner.vertex_at
                pairs = [
                    (vertex_at(int(source_id)), vertex_at(int(target_id)))
                    for source_id, target_id in zip(source_ids, target_ids)
                ]
            else:
                # a remote store keeps the interner server-side; print the
                # persisted handles the workload was packed with
                pairs = [
                    (("handle", int(source_id)), ("handle", int(target_id)))
                    for source_id, target_id in zip(source_ids, target_ids)
                ]
        else:
            text, source_label = _read_pairs_source(args.pairs)
            pairs, origins = _parse_pair_lines(text)
            if not pairs:
                raise ReproError("no query pairs given")
            started = time.perf_counter()
            try:
                answers = session.run(
                    BatchQuery(pairs=pairs, run_id=args.run_id)
                )
            except (StorageError, LabelingError) as exc:
                _raise_unknown_execution(
                    store, args.run_id, pairs, origins, source_label, exc
                )
            elapsed = time.perf_counter() - started
    if not args.summary_only:
        for (source, target), answer in zip(pairs, answers):
            verdict = "reaches" if answer else "does-not-reach"
            print(
                f"{source[0]}:{source[1]} {verdict} {target[0]}:{target[1]}"
            )
    reachable = sum(map(bool, answers))
    rate = len(pairs) / elapsed if elapsed > 0 else float("inf")
    print(
        f"answered {len(pairs)} queries in {elapsed * 1e3:.2f} ms "
        f"({rate:,.0f} queries/s); {reachable} reachable"
    )
    return 0


def _command_pack_workload(args: argparse.Namespace) -> int:
    if is_remote_target(args.database):
        raise ReproError(
            "pack-workload resolves pairs against the run's on-disk "
            "interner; pack next to the database, then replay the file "
            "remotely with query-batch --format bin"
        )
    text, source_label = _read_pairs_source(args.pairs)
    pairs, origins = _parse_pair_lines(text)
    if not pairs:
        raise ReproError("no query pairs given")
    with open_store(Path(args.database)) as store:
        engine = store.query_engine(args.run_id)
        try:
            source_ids, target_ids = engine.intern_pairs(pairs)
        except LabelingError as exc:
            _raise_unknown_execution(
                store, args.run_id, pairs, origins, source_label, exc
            )
    count = write_pair_workload(
        args.output, source_ids, target_ids, run_id=args.run_id
    )
    print(
        f"packed {count} pairs -> {args.output} ({16 + count * 16} bytes; "
        f"persisted handles of run {args.run_id})"
    )
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    import time

    anchor = _parse_execution(args.source)
    with _open_database(args.database) as store:
        started = time.perf_counter()
        result = store.session().run(
            CrossRunQuery(
                args.spec,
                anchor,
                args.direction,
                workers=args.workers,
                pushdown=args.pushdown,
            )
        )
        elapsed = time.perf_counter() - started
        names = {row["run_id"]: row["name"] for row in store.list_runs(args.spec)}
    relation = "downstream of" if args.direction == "downstream" else "upstream of"
    for run_id, affected in sorted(result.per_run.items()):
        print(
            f"run {run_id} ({names.get(run_id, '?')}): "
            f"{len(affected)} executions {relation} {args.source}"
        )
        if not args.summary_only:
            for module, instance in affected:
                print(f"  {module}:{instance}")
    for run_id in result.skipped_runs:
        print(
            f"run {run_id} ({names.get(run_id, '?')}): "
            f"never executed {args.source} (skipped)"
        )
    print(
        f"swept {result.run_count} runs of {args.spec!r} in "
        f"{elapsed * 1e3:.2f} ms; {result.affected_count} affected executions"
    )
    return 0


def _command_cross_batch(args: argparse.Namespace) -> int:
    import time

    text, _ = _read_pairs_source(args.pairs)
    pairs, _ = _parse_pair_lines(text)
    if not pairs:
        raise ReproError("no query pairs given")
    with _open_database(args.database) as store:
        started = time.perf_counter()
        result = store.session().run(
            CrossRunBatchQuery(args.spec, pairs, workers=args.workers)
        )
        elapsed = time.perf_counter() - started
        names = {row["run_id"]: row["name"] for row in store.list_runs(args.spec)}
    for run_id in result.run_ids:
        answers = result.per_run[run_id]
        reachable = sum(answers)
        print(
            f"run {run_id} ({names.get(run_id, '?')}): "
            f"{reachable}/{len(answers)} pairs reachable"
        )
        if not args.summary_only:
            for (source, target), answer in zip(result.pairs, answers):
                verdict = "reaches" if answer else "does-not-reach"
                print(
                    f"  {source[0]}:{source[1]} {verdict} {target[0]}:{target[1]}"
                )
    for run_id in result.skipped_runs:
        print(
            f"run {run_id} ({names.get(run_id, '?')}): "
            "missing a queried execution (skipped)"
        )
    answered = result.run_count * len(pairs)
    rate = answered / elapsed if elapsed > 0 else float("inf")
    print(
        f"answered {len(pairs)} pairs x {result.run_count} runs of "
        f"{args.spec!r} in {elapsed * 1e3:.2f} ms ({rate:,.0f} answers/s); "
        f"{len(result.skipped_runs)} runs skipped"
    )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    server = ProvenanceServer(
        path=args.database,
        shards=args.shards,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        ingest_flush_after=args.ingest_flush_after,
    )

    async def _serve() -> None:
        host, port = await server.start()
        print(
            f"serving {args.database} at repro://{host}:{port}/ "
            "(Ctrl-C to stop)",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        # serve_forever's finally already drained and closed the store
        pass
    return 0


def _command_health(args: argparse.Namespace) -> int:
    import json

    if not is_remote_target(args.database):
        raise ReproError(
            f"health expects a repro://host:port/ URL, got {args.database!r}"
        )
    client = RemoteStore(args.database, retries=0)
    try:
        report = client.health()
    finally:
        client.close()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report.get("status") == "ok" else 1


def _require_routing(store: Any, command: str) -> None:
    """Routing maintenance needs a sharded store (local or via server)."""
    if not hasattr(store, "rebalance"):
        raise ReproError(
            f"{command} needs a sharded database; "
            f"{getattr(store, 'path', store)!r} is a single SQLite file"
        )


def _print_skew_table(shards: dict) -> None:
    """Render ``cache_stats()['shards']`` as the operator's skew table."""
    header = (
        f"{'shard':>5}  {'file':<14} {'specs':>5} {'runs':>6} "
        f"{'file_bytes':>11} {'sweeps sql':>10} {'kernel':>6} "
        f"{'replicas':>8} {'routed':>6}"
    )
    print(header)
    for row in shards.get("per_shard", []):
        sweeps = row.get("sweeps", {})
        print(
            f"{row['shard']:>5}  {row['file']:<14} {row['specs']:>5} "
            f"{row['runs']:>6} {row['file_bytes']:>11} "
            f"{sweeps.get('sql', 0):>10} {sweeps.get('kernel', 0):>6} "
            f"{row['replicas']:>8} {row['routed_specs']:>6}"
        )


def _command_stats(args: argparse.Namespace) -> int:
    import json

    with _open_database(args.database) as store:
        stats = store.cache_stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True, default=str))
        return 0
    shards = stats.get("shards")
    if isinstance(shards, dict):
        print(f"{args.database}: {shards.get('count')} shards")
        _print_skew_table(shards)
    else:
        print(f"{args.database}: single-file store")
    for key in sorted(stats):
        if key == "shards":
            continue
        value = stats[key]
        if isinstance(value, (dict, list)):
            value = json.dumps(value, sort_keys=True, default=str)
        print(f"  {key}: {value}")
    return 0


def _command_rebalance(args: argparse.Namespace) -> int:
    with _open_database(args.database) as store:
        _require_routing(store, "rebalance")
        summary = store.rebalance(args.spec, args.shard)
    print(
        f"moved {summary['moved_runs']} runs of {summary['specification']!r} "
        f"from shard {summary['source']} to shard {summary['target']}"
    )
    return 0


def _command_replicate(args: argparse.Namespace) -> int:
    with _open_database(args.database) as store:
        _require_routing(store, "replicate")
        replicas = store.replicate(args.spec, args.copies)
    print(f"attached {len(replicas)} replica(s) for {args.spec!r}:")
    for path in replicas:
        print(f"  {path}")
    return 0


def _command_routing(args: argparse.Namespace) -> int:
    import json

    with _open_database(args.database) as store:
        _require_routing(store, "routing")
        table = store.routing_table()
    if args.json:
        print(json.dumps(table, indent=2, sort_keys=True))
        return 0
    print(f"{args.database}: {table['shards']} shards")
    specs = table.get("specs", {})
    if specs:
        print("routed specifications:")
        for name in sorted(specs):
            entry = specs[name]
            note = (
                ""
                if entry["shard"] == entry["hash_shard"]
                else f" (hash would place it on {entry['hash_shard']})"
            )
            print(f"  {name}: shard {entry['shard']}{note}")
    else:
        print("routed specifications: (none — every spec is hash-placed)")
    print(f"routed runs: {table.get('routed_runs', 0)}")
    replicas = table.get("replicas", {})
    if replicas:
        for shard in sorted(replicas, key=int):
            print(f"replicas of shard {shard}: {replicas[shard]}")
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    from repro.skeleton.construct import construct_plan

    spec = read_specification(args.spec)
    run = read_run(args.run, spec)
    try:
        result = construct_plan(spec, run)
    except ReproError as exc:
        print(f"run {run.name!r} does NOT conform to specification {spec.name!r}: {exc}")
        return 1
    copies = result.plan.copies_per_region()
    print(f"run {run.name!r} conforms to specification {spec.name!r}")
    print(f"  executions : {run.vertex_count} modules, {run.edge_count} channels")
    print(f"  plan size  : {len(result.plan)} nodes")
    for region, count in sorted(copies.items()):
        print(f"  {region:12s}: {count} copies")
    return 0


def _command_info(args: argparse.Namespace) -> int:
    spec = (
        load_real_workflow(args.catalog)
        if args.catalog is not None
        else read_specification(args.spec)
    )
    print(f"specification : {spec.name}")
    print(f"nG (modules)  : {spec.vertex_count}")
    print(f"mG (edges)    : {spec.edge_count}")
    print(f"|TG|          : {spec.hierarchy.size}")
    print(f"[TG]          : {spec.hierarchy.depth}")
    print(f"forks         : {', '.join(sorted(r.name for r in spec.forks)) or '(none)'}")
    print(f"loops         : {', '.join(sorted(r.name for r in spec.loops)) or '(none)'}")
    return 0


def _command_experiments(args: argparse.Namespace) -> int:
    results = all_experiments(args.scale, seed=args.seed)
    for result in results:
        print(result.to_text())
        print()
        if args.output_dir is not None:
            write_report(result, args.output_dir)
    if args.output_dir is not None:
        print(f"reports written to {args.output_dir}")
    return 0


_COMMANDS = {
    "generate-spec": _command_generate_spec,
    "generate-run": _command_generate_run,
    "label": _command_label,
    "query": _command_query,
    "query-batch": _command_query_batch,
    "pack-workload": _command_pack_workload,
    "sweep": _command_sweep,
    "cross-batch": _command_cross_batch,
    "serve": _command_serve,
    "health": _command_health,
    "stats": _command_stats,
    "rebalance": _command_rebalance,
    "replicate": _command_replicate,
    "routing": _command_routing,
    "verify": _command_verify,
    "info": _command_info,
    "experiments": _command_experiments,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
