"""The fork and loop hierarchy ``TG`` (Section 4.1, Figure 6).

All fork and loop subgraphs of a specification are well nested, so they can
be arranged in an unordered tree: the root corresponds to the whole
specification graph ``G`` and every other node to one fork or loop region.
A region's parent is the smallest region that properly contains it (by the
edge-set containment of Definition 2), or the root if no region does.

The hierarchy drives both the run generator (regions are expanded copy by
copy following the tree) and ``ConstructPlan`` (regions are recovered from a
run bottom-up following the tree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from repro.exceptions import SpecificationError
from repro.workflow.subgraphs import ResolvedRegion

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.workflow.specification import WorkflowSpecification

__all__ = ["HierarchyNode", "ForkLoopHierarchy"]

ROOT_NAME = "__root__"


@dataclass
class HierarchyNode:
    """One node of ``TG``: the root or a single fork/loop region.

    Attributes
    ----------
    name:
        Region name, or ``"__root__"`` for the root.
    region:
        The resolved region, or ``None`` for the root.
    parent:
        Name of the parent node (``None`` for the root).
    children:
        Names of child regions, in insertion order.
    depth:
        Distance from the root plus one (the root has depth 1, matching the
        ``[TG]`` convention of Table 1).
    """

    name: str
    region: Optional[ResolvedRegion]
    parent: Optional[str]
    children: list[str] = field(default_factory=list)
    depth: int = 1

    @property
    def is_root(self) -> bool:
        """``True`` for the node representing the whole specification."""
        return self.region is None

    @property
    def is_fork(self) -> bool:
        """``True`` if the node is a fork region."""
        return self.region is not None and self.region.is_fork

    @property
    def is_loop(self) -> bool:
        """``True`` if the node is a loop region."""
        return self.region is not None and self.region.is_loop


class ForkLoopHierarchy:
    """The unordered tree ``TG`` over a specification's fork/loop regions."""

    def __init__(self, nodes: dict[str, HierarchyNode], root: str = ROOT_NAME) -> None:
        self._nodes = nodes
        self._root = root

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_specification(cls, spec: "WorkflowSpecification") -> "ForkLoopHierarchy":
        """Build ``TG`` from the validated regions of *spec*.

        The parent of a region is the region with the smallest edge set that
        strictly contains it; regions contained in no other region become
        children of the root.
        """
        regions = list(spec.regions.values())
        nodes: dict[str, HierarchyNode] = {
            ROOT_NAME: HierarchyNode(name=ROOT_NAME, region=None, parent=None, depth=1)
        }

        def strictly_contains(outer: ResolvedRegion, inner: ResolvedRegion) -> bool:
            contained = inner.edges <= outer.edges and inner.dom_set <= outer.dom_set
            strict = inner.edges < outer.edges or inner.dom_set < outer.dom_set
            return contained and strict

        for region in regions:
            candidates = [
                other
                for other in regions
                if other.name != region.name and strictly_contains(other, region)
            ]
            if candidates:
                parent = min(
                    candidates, key=lambda other: (len(other.edges), len(other.dom_set))
                )
                parent_name = parent.name
            else:
                parent_name = ROOT_NAME
            nodes[region.name] = HierarchyNode(
                name=region.name, region=region, parent=parent_name
            )

        # Wire children and compute depths by walking down from the root.
        for node in nodes.values():
            if node.parent is not None:
                nodes[node.parent].children.append(node.name)
        hierarchy = cls(nodes)
        for node in hierarchy.iter_preorder():
            if node.parent is not None:
                node.depth = nodes[node.parent].depth + 1
        return hierarchy

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> HierarchyNode:
        """The root node, standing for the whole specification graph."""
        return self._nodes[self._root]

    def node(self, name: str) -> HierarchyNode:
        """Return the node called *name* (``"__root__"`` for the root)."""
        try:
            return self._nodes[name]
        except KeyError:
            raise SpecificationError(f"unknown hierarchy node: {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        """``|TG|``: number of regions plus one (the root)."""
        return len(self._nodes)

    @property
    def size(self) -> int:
        """``|TG|`` as reported in Table 1."""
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """``[TG]``: the maximum node depth (root has depth 1)."""
        return max(node.depth for node in self._nodes.values())

    def children(self, name: str) -> list[HierarchyNode]:
        """Return the child nodes of *name*."""
        return [self._nodes[child] for child in self.node(name).children]

    def parent(self, name: str) -> Optional[HierarchyNode]:
        """Return the parent node of *name*, or ``None`` for the root."""
        parent_name = self.node(name).parent
        return None if parent_name is None else self._nodes[parent_name]

    def region_nodes(self) -> list[HierarchyNode]:
        """All non-root nodes (one per fork/loop region)."""
        return [node for node in self._nodes.values() if not node.is_root]

    def levels(self) -> dict[int, list[HierarchyNode]]:
        """Group nodes by depth: ``{1: [root], 2: [...], ...}``."""
        grouped: dict[int, list[HierarchyNode]] = {}
        for node in self._nodes.values():
            grouped.setdefault(node.depth, []).append(node)
        return grouped

    # ------------------------------------------------------------------
    # traversals
    # ------------------------------------------------------------------
    def iter_preorder(self) -> Iterator[HierarchyNode]:
        """Yield nodes root-first (parents before children)."""
        stack = [self._root]
        while stack:
            name = stack.pop()
            node = self._nodes[name]
            yield node
            stack.extend(reversed(node.children))

    def iter_postorder(self) -> Iterator[HierarchyNode]:
        """Yield nodes children-first (every region before its parent)."""
        order: list[HierarchyNode] = []

        def visit(name: str) -> None:
            node = self._nodes[name]
            for child in node.children:
                visit(child)
            order.append(node)

        visit(self._root)
        return iter(order)

    def ancestors(self, name: str) -> list[HierarchyNode]:
        """Return the chain of ancestors of *name*, nearest first."""
        chain: list[HierarchyNode] = []
        current = self.parent(name)
        while current is not None:
            chain.append(current)
            current = self.parent(current.name)
        return chain

    def descendants(self, name: str) -> list[HierarchyNode]:
        """Return every node strictly below *name*."""
        result: list[HierarchyNode] = []
        stack = list(self.node(name).children)
        while stack:
            child = stack.pop()
            node = self._nodes[child]
            result.append(node)
            stack.extend(node.children)
        return result

    def to_dict(self) -> dict:
        """Return a JSON-friendly parent/children description of ``TG``."""
        return {
            name: {
                "parent": node.parent,
                "children": list(node.children),
                "depth": node.depth,
                "kind": None if node.is_root else node.region.kind.value,
            }
            for name, node in self._nodes.items()
        }
