"""Workflow runs: executions of a specification (Definition 6, Figure 3).

A run is a labeled acyclic flow network whose vertices carry module names
from the underlying specification.  Module names are generally *not* unique
in a run — forks and loops replicate modules — so each run vertex pairs its
module name with an instance number (``b1`` is ``RunVertex("b", 1)``).

The *origin* of a run vertex (Definition 8) is simply its module name, which
identifies a unique specification vertex.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import NamedTuple, Optional

from repro.exceptions import FlowNetworkError, RunConformanceError
from repro.graphs.digraph import DiGraph
from repro.graphs.flow_network import validate_flow_network
from repro.workflow.specification import WorkflowSpecification

__all__ = ["RunVertex", "WorkflowRun"]


class RunVertex(NamedTuple):
    """A single module execution within a run.

    ``module`` is the specification vertex (the origin, Definition 8) and
    ``instance`` distinguishes repeated executions of the same module.
    """

    module: str
    instance: int

    def __str__(self) -> str:
        return f"{self.module}{self.instance}"

    @property
    def origin(self) -> str:
        """The specification vertex this execution originates from."""
        return self.module


class WorkflowRun:
    """A run ``R`` of a workflow specification.

    Parameters
    ----------
    specification:
        The specification the run conforms to.
    graph:
        The run graph over :class:`RunVertex` vertices.
    name:
        Optional human-readable name.
    validate:
        When ``True`` (the default) the constructor checks that the run is an
        acyclic flow network, that every origin exists in the specification,
        and that the run's terminals originate from the specification's
        terminals.
    """

    def __init__(
        self,
        specification: WorkflowSpecification,
        graph: DiGraph,
        *,
        name: str = "run",
        validate: bool = True,
    ) -> None:
        self.specification = specification
        self.graph = graph
        self.name = name
        if validate:
            self._validate()
            self.source, self.sink = validate_flow_network(self.graph)
        else:
            # Partial runs (online labeling snapshots) may not yet form a
            # single-source/single-sink network; keep best-effort terminals.
            try:
                self.source, self.sink = validate_flow_network(self.graph)
            except FlowNetworkError:
                self.source = None
                self.sink = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        """``nR`` — number of module executions in the run."""
        return self.graph.vertex_count

    @property
    def edge_count(self) -> int:
        """``mR`` — number of data channels in the run."""
        return self.graph.edge_count

    def vertices(self) -> list[RunVertex]:
        """All run vertices in insertion order."""
        return self.graph.vertices()

    def edges(self) -> list[tuple[RunVertex, RunVertex]]:
        """All run edges."""
        return self.graph.edges()

    def origin(self, vertex: RunVertex) -> str:
        """Return ``Orig(v)``: the specification module this vertex executes."""
        return vertex.module

    def vertex(self, module: str, instance: int) -> RunVertex:
        """Return the run vertex for ``module``/``instance`` (must exist)."""
        candidate = RunVertex(module, instance)
        if not self.graph.has_vertex(candidate):
            raise RunConformanceError(f"run has no vertex {candidate!r}")
        return candidate

    def instances_of(self, module: str) -> list[RunVertex]:
        """Return every execution of *module* in the run."""
        return [v for v in self.graph.vertices() if v.module == module]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkflowRun(name={self.name!r}, spec={self.specification.name!r}, "
            f"nR={self.vertex_count}, mR={self.edge_count})"
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        spec_graph = self.specification.graph
        for vertex in self.graph.vertices():
            if not isinstance(vertex, RunVertex):
                raise RunConformanceError(
                    f"run vertices must be RunVertex instances, got {vertex!r}"
                )
            if not spec_graph.has_vertex(vertex.module):
                raise RunConformanceError(
                    f"run vertex {vertex!r} has no origin in the specification"
                )
        source, sink = validate_flow_network(self.graph)
        if source.module != self.specification.source:
            raise RunConformanceError(
                f"run source {source!r} does not originate from the specification "
                f"source {self.specification.source!r}"
            )
        if sink.module != self.specification.sink:
            raise RunConformanceError(
                f"run sink {sink!r} does not originate from the specification "
                f"sink {self.specification.sink!r}"
            )
        # Every run edge must follow an edge that exists in the specification,
        # a loop-back edge (sink of a loop to its source), or the boundary of
        # a replicated region; the cheap necessary condition we enforce here
        # is that both endpoints' origins are specification modules, which the
        # loop above already guarantees.  Full conformance is established by
        # ConstructPlan, which fails on non-conforming runs.

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        specification: WorkflowSpecification,
        edges: Iterable[tuple[tuple[str, int], tuple[str, int]]],
        *,
        name: str = "run",
        validate: bool = True,
    ) -> "WorkflowRun":
        """Build a run from ``((module, instance), (module, instance))`` pairs."""
        graph = DiGraph()
        for (tail_module, tail_instance), (head_module, head_instance) in edges:
            graph.add_edge(
                RunVertex(tail_module, tail_instance),
                RunVertex(head_module, head_instance),
            )
        return cls(specification, graph, name=name, validate=validate)

    @classmethod
    def identity_run(
        cls, specification: WorkflowSpecification, *, name: Optional[str] = None
    ) -> "WorkflowRun":
        """Return the trivial run that executes every region exactly once.

        The resulting run graph is isomorphic to the specification graph with
        every module executed as instance 1.
        """
        graph = DiGraph()
        for module in specification.graph.vertices():
            graph.add_vertex(RunVertex(module, 1))
        for tail, head in specification.graph.iter_edges():
            graph.add_edge(RunVertex(tail, 1), RunVertex(head, 1))
        return cls(
            specification,
            graph,
            name=name or f"{specification.name}-identity",
        )

    def to_dict(self) -> dict:
        """Return a JSON-friendly description of the run."""
        return {
            "name": self.name,
            "specification": self.specification.name,
            "vertices": [[v.module, v.instance] for v in self.graph.vertices()],
            "edges": [
                [[t.module, t.instance], [h.module, h.instance]]
                for t, h in self.graph.iter_edges()
            ],
        }
