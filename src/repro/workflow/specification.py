"""Workflow specifications: ``(G, F, L)`` triples (Definition 3).

A :class:`WorkflowSpecification` bundles an acyclic flow network whose
vertices are unique module names with a set of fork regions and a set of loop
regions forming a well-nested fork and loop system (Definition 2).  The class
validates the model at construction time and exposes the derived structures
the rest of the library needs: resolved regions, the fork/loop hierarchy and
reachability over the specification graph.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.exceptions import FlowNetworkError, SpecificationError, WellNestednessError
from repro.graphs.digraph import DiGraph
from repro.graphs.flow_network import validate_flow_network
from repro.workflow.subgraphs import (
    Region,
    RegionKind,
    ResolvedRegion,
    resolve_fork,
    resolve_loop,
)

__all__ = ["WorkflowSpecification"]


class WorkflowSpecification:
    """A validated workflow specification ``(G, F, L)``.

    Parameters
    ----------
    graph:
        The specification graph ``G``; vertices are module names (any
        hashable, typically strings) and must therefore be unique.
    forks:
        Fork regions, each given by its internal vertex set.
    loops:
        Loop regions, each given by its full vertex set.
    name:
        Optional human-readable name (used by the dataset catalog and the
        provenance store).

    Raises
    ------
    SpecificationError
        If the graph is not an acyclic flow network, a region is invalid, or
        region names collide.
    WellNestednessError
        If the fork/loop system violates Definition 2.
    """

    def __init__(
        self,
        graph: DiGraph,
        forks: Iterable[Region] = (),
        loops: Iterable[Region] = (),
        *,
        name: str = "workflow",
    ) -> None:
        self.name = name
        self.graph = graph.copy()
        try:
            self.source, self.sink = validate_flow_network(self.graph)
        except FlowNetworkError as exc:
            raise SpecificationError(
                f"specification graph is not an acyclic flow network: {exc}"
            ) from exc

        fork_regions = list(forks)
        loop_regions = list(loops)
        for region in fork_regions:
            if not region.is_fork:
                raise SpecificationError(
                    f"region {region.name!r} passed as a fork but has kind {region.kind}"
                )
        for region in loop_regions:
            if not region.is_loop:
                raise SpecificationError(
                    f"region {region.name!r} passed as a loop but has kind {region.kind}"
                )

        names = [r.name for r in fork_regions + loop_regions]
        if len(set(names)) != len(names):
            raise SpecificationError(f"region names must be unique, got {names!r}")

        self._regions: dict[str, ResolvedRegion] = {}
        for region in fork_regions:
            self._regions[region.name] = resolve_fork(self.graph, region)
        for region in loop_regions:
            self._regions[region.name] = resolve_loop(self.graph, region)

        self._check_well_nested()
        self._hierarchy = None  # built lazily to avoid import cycles

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        """``nG`` — number of modules in the specification."""
        return self.graph.vertex_count

    @property
    def edge_count(self) -> int:
        """``mG`` — number of data channels in the specification."""
        return self.graph.edge_count

    @property
    def modules(self) -> list:
        """All module names, in insertion order."""
        return self.graph.vertices()

    @property
    def regions(self) -> dict[str, ResolvedRegion]:
        """Mapping from region name to its resolved form."""
        return dict(self._regions)

    @property
    def forks(self) -> list[ResolvedRegion]:
        """All fork regions."""
        return [r for r in self._regions.values() if r.is_fork]

    @property
    def loops(self) -> list[ResolvedRegion]:
        """All loop regions."""
        return [r for r in self._regions.values() if r.is_loop]

    def region(self, name: str) -> ResolvedRegion:
        """Return the resolved region called *name*."""
        try:
            return self._regions[name]
        except KeyError:
            raise SpecificationError(f"unknown region: {name!r}") from None

    def has_module(self, module) -> bool:
        """Return ``True`` if *module* is a vertex of the specification graph."""
        return self.graph.has_vertex(module)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkflowSpecification(name={self.name!r}, nG={self.vertex_count}, "
            f"mG={self.edge_count}, forks={len(self.forks)}, loops={len(self.loops)})"
        )

    # ------------------------------------------------------------------
    # hierarchy
    # ------------------------------------------------------------------
    @property
    def hierarchy(self):
        """The fork/loop hierarchy ``TG`` (built lazily)."""
        if self._hierarchy is None:
            from repro.workflow.hierarchy import ForkLoopHierarchy

            self._hierarchy = ForkLoopHierarchy.from_specification(self)
        return self._hierarchy

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _check_well_nested(self) -> None:
        """Check Definition 2 on every pair of regions."""
        regions = list(self._regions.values())
        for i, first in enumerate(regions):
            for second in regions[i + 1:]:
                if not _well_nested_pair(first, second):
                    raise WellNestednessError(
                        f"regions {first.name!r} and {second.name!r} are neither "
                        "nested nor disjoint (Definition 2 violated)"
                    )

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Sequence[tuple],
        forks: Iterable[tuple[str, Iterable]] = (),
        loops: Iterable[tuple[str, Iterable]] = (),
        *,
        name: str = "workflow",
    ) -> "WorkflowSpecification":
        """Build a specification from an edge list and simple region tuples.

        ``forks`` and ``loops`` are iterables of ``(region_name, vertices)``
        pairs, matching the semantics of :class:`Region` (internal vertices
        for forks, full span for loops).
        """
        graph = DiGraph(edges=edges)
        fork_regions = [
            Region(RegionKind.FORK, region_name, frozenset(vertices))
            for region_name, vertices in forks
        ]
        loop_regions = [
            Region(RegionKind.LOOP, region_name, frozenset(vertices))
            for region_name, vertices in loops
        ]
        return cls(graph, fork_regions, loop_regions, name=name)

    def to_dict(self) -> dict:
        """Return a JSON-friendly description of the specification."""
        return {
            "name": self.name,
            "graph": self.graph.to_dict(),
            "forks": [
                {"name": r.name, "vertices": sorted(map(str, r.internal))}
                for r in self.forks
            ],
            "loops": [
                {"name": r.name, "vertices": sorted(map(str, r.span))}
                for r in self.loops
            ],
        }


def _well_nested_pair(first: ResolvedRegion, second: ResolvedRegion) -> bool:
    """Return ``True`` if the two regions satisfy exactly one Definition 2 case.

    Definition 2 asks for strict edge containment; we additionally accept the
    boundary case where the edge sets coincide but the dominating sets are
    strictly nested (a fork filling a whole loop body, as in the paper's own
    running example where fork ``F2`` spans loop ``L1``'s only branch).
    """
    dom_first, dom_second = first.dom_set, second.dom_set
    edges_first, edges_second = first.edges, second.edges

    def nested(dom_inner, edges_inner, dom_outer, edges_outer) -> bool:
        contained = dom_inner <= dom_outer and edges_inner <= edges_outer
        strict = dom_inner < dom_outer or edges_inner < edges_outer
        return contained and strict

    nested_first_in_second = nested(dom_first, edges_first, dom_second, edges_second)
    nested_second_in_first = nested(dom_second, edges_second, dom_first, edges_first)
    disjoint = not (dom_first & dom_second) and not (edges_first & edges_second)

    return sum((nested_first_in_second, nested_second_in_first, disjoint)) == 1
