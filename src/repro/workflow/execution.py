"""Run generation: simulating fork and loop executions (Definition 6).

This module turns a :class:`~repro.workflow.specification.WorkflowSpecification`
into concrete :class:`~repro.workflow.run.WorkflowRun` objects.  Generation is
split into two phases:

1. *Plan building* — decide how many copies every fork and loop gets, producing
   an :class:`~repro.workflow.plan.ExecutionPlan`.  Copy counts come either
   from an :class:`ExecutionProfile` (fixed / random counts per region) or from
   :func:`grow_plan_to_size`, which keeps adding copies until the materialized
   run would reach a target number of vertices — the knob the paper's
   experiments sweep (runs from 0.1K to 102.4K vertices).
2. *Materialization* — expand the plan into the run graph.  The expansion
   follows Lemma 4.1: a ``F-`` node is the parallel composition of its copies,
   an ``L-`` node the serial composition, and a ``+`` node is its
   specification subgraph with every child region replaced by the child's
   expansion.

Because generation follows the plan, the ground-truth plan and the
ground-truth context function come for free; they are returned alongside the
run so that tests can validate the independent ``ConstructPlan`` algorithm of
Section 5 and so the Figure 13 "run given with its execution plan and
context" setting can skip reconstruction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import DatasetError, SpecificationError
from repro.graphs.digraph import DiGraph
from repro.workflow.hierarchy import ROOT_NAME, ForkLoopHierarchy, HierarchyNode
from repro.workflow.plan import ExecutionPlan, PlanNodeKind
from repro.workflow.run import RunVertex, WorkflowRun
from repro.workflow.specification import WorkflowSpecification

__all__ = [
    "ExecutionProfile",
    "ConstantProfile",
    "RangeProfile",
    "PerRegionProfile",
    "GeneratedRun",
    "owned_vertices",
    "own_edges",
    "minimal_expansion_sizes",
    "build_plan",
    "grow_plan_to_size",
    "materialize_plan",
    "generate_run",
    "generate_run_with_size",
]


# ----------------------------------------------------------------------
# execution profiles: how many copies does each region execution get?
# ----------------------------------------------------------------------
class ExecutionProfile:
    """Decides how many copies a region gets each time it is executed."""

    def copies(self, region_name: str, rng: random.Random) -> int:
        """Return the number of copies (>= 1) for one execution of the region."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantProfile(ExecutionProfile):
    """Every region execution produces exactly *count* copies."""

    count: int = 1

    def copies(self, region_name: str, rng: random.Random) -> int:
        if self.count < 1:
            raise DatasetError("copy counts must be at least 1")
        return self.count


@dataclass(frozen=True)
class RangeProfile(ExecutionProfile):
    """Each region execution draws a copy count uniformly from [low, high]."""

    low: int = 1
    high: int = 3

    def copies(self, region_name: str, rng: random.Random) -> int:
        if self.low < 1 or self.high < self.low:
            raise DatasetError(
                f"invalid copy range [{self.low}, {self.high}]; need 1 <= low <= high"
            )
        return rng.randint(self.low, self.high)


@dataclass(frozen=True)
class PerRegionProfile(ExecutionProfile):
    """Fixed copy counts per region name, with a default for the rest."""

    counts: dict
    default: int = 1

    def copies(self, region_name: str, rng: random.Random) -> int:
        count = self.counts.get(region_name, self.default)
        if count < 1:
            raise DatasetError(
                f"copy count for region {region_name!r} must be >= 1, got {count}"
            )
        return count


# ----------------------------------------------------------------------
# structural helpers shared by plan building and materialization
# ----------------------------------------------------------------------
def owned_vertices(spec: WorkflowSpecification) -> dict[str, frozenset]:
    """Map each hierarchy node to the specification vertices it *owns*.

    A node owns the vertices of its dominating set that are not dominated by
    any of its child regions; the root owns every vertex not dominated by a
    top-level region.  Owned vertices are exactly the ones whose run copies
    receive this node's ``+`` copy as their context (Definition 9).
    """
    hierarchy = spec.hierarchy
    owned: dict[str, frozenset] = {}
    for node in hierarchy.iter_preorder():
        if node.is_root:
            base = set(spec.graph.vertices())
        else:
            base = set(node.region.dom_set)
        for child in hierarchy.children(node.name):
            base -= child.region.dom_set
        owned[node.name] = frozenset(base)
    return owned


def own_edges(spec: WorkflowSpecification) -> dict[str, frozenset]:
    """Map each hierarchy node to the specification edges it owns.

    A node owns the edges of its region (all edges for the root) that do not
    belong to any child region.  Materialization adds exactly these edges for
    every ``+`` copy of the node.
    """
    hierarchy = spec.hierarchy
    edges: dict[str, frozenset] = {}
    for node in hierarchy.iter_preorder():
        if node.is_root:
            base = set(spec.graph.iter_edges())
        else:
            base = set(node.region.edges)
        for child in hierarchy.children(node.name):
            base -= child.region.edges
        edges[node.name] = frozenset(base)
    return edges


def minimal_expansion_sizes(spec: WorkflowSpecification) -> dict[str, int]:
    """Vertices added by one extra copy of each region with all descendants run once."""
    hierarchy = spec.hierarchy
    owned = owned_vertices(spec)
    sizes: dict[str, int] = {}
    for node in hierarchy.iter_postorder():
        total = len(owned[node.name])
        for child in hierarchy.children(node.name):
            total += sizes[child.name]
        sizes[node.name] = total
    return sizes


# ----------------------------------------------------------------------
# plan building
# ----------------------------------------------------------------------
def build_plan(
    spec: WorkflowSpecification,
    profile: ExecutionProfile | None = None,
    rng: random.Random | None = None,
) -> ExecutionPlan:
    """Build an execution plan by asking *profile* for copy counts.

    Every region that appears inside a ``+`` copy of its parent is executed
    exactly once (one ``-`` group) with ``profile.copies()`` copies, matching
    Definition 6 where every specification subgraph occurs in every run.
    """
    profile = profile or ConstantProfile(1)
    rng = rng or random.Random(0)
    hierarchy = spec.hierarchy

    plan = ExecutionPlan()
    root_id = plan.add_root()

    def expand(hnode: HierarchyNode, plus_id: int) -> None:
        for child in hierarchy.children(hnode.name):
            group_kind = (
                PlanNodeKind.FORK_GROUP if child.is_fork else PlanNodeKind.LOOP_GROUP
            )
            copy_kind = (
                PlanNodeKind.FORK_COPY if child.is_fork else PlanNodeKind.LOOP_COPY
            )
            group_id = plan.add_node(group_kind, child.name, parent=plus_id)
            count = profile.copies(child.name, rng)
            if count < 1:
                raise DatasetError(
                    f"profile returned {count} copies for region {child.name!r}"
                )
            for _ in range(count):
                copy_id = plan.add_node(copy_kind, child.name, parent=group_id)
                expand(child, copy_id)

    expand(hierarchy.root, root_id)
    return plan


def grow_plan_to_size(
    spec: WorkflowSpecification,
    target_vertices: int,
    rng: random.Random | None = None,
) -> ExecutionPlan:
    """Grow a plan until the materialized run reaches *target_vertices*.

    Starting from the minimal plan (every region executed once, so the run
    equals the specification), the function repeatedly picks a random ``-``
    group and adds one more copy of its region (with all nested regions
    executed once inside the new copy) until the predicted run size reaches
    the target.  The final size is therefore within one minimal region
    expansion of the target.
    """
    if target_vertices < spec.vertex_count:
        raise DatasetError(
            f"target size {target_vertices} is smaller than the specification "
            f"({spec.vertex_count} vertices); runs can only grow"
        )
    rng = rng or random.Random(0)
    hierarchy = spec.hierarchy
    expansion_sizes = minimal_expansion_sizes(spec)

    plan = ExecutionPlan()
    root_id = plan.add_root()
    groups: list[tuple[int, str]] = []  # (group node id, region name)

    def add_minimal_copy(region_name: str, group_id: int) -> None:
        child = hierarchy.node(region_name)
        copy_kind = (
            PlanNodeKind.FORK_COPY if child.is_fork else PlanNodeKind.LOOP_COPY
        )
        copy_id = plan.add_node(copy_kind, region_name, parent=group_id)
        expand_minimal(child, copy_id)

    def expand_minimal(hnode: HierarchyNode, plus_id: int) -> None:
        for child in hierarchy.children(hnode.name):
            group_kind = (
                PlanNodeKind.FORK_GROUP if child.is_fork else PlanNodeKind.LOOP_GROUP
            )
            group_id = plan.add_node(group_kind, child.name, parent=plus_id)
            groups.append((group_id, child.name))
            add_minimal_copy(child.name, group_id)

    expand_minimal(hierarchy.root, root_id)
    size = spec.vertex_count

    if not groups and target_vertices > size:
        raise DatasetError(
            "specification has no forks or loops; runs cannot grow beyond the "
            "specification size"
        )

    while size < target_vertices:
        group_id, region_name = groups[rng.randrange(len(groups))]
        add_minimal_copy(region_name, group_id)
        size += expansion_sizes[region_name]
    return plan


# ----------------------------------------------------------------------
# materialization
# ----------------------------------------------------------------------
@dataclass
class GeneratedRun:
    """A generated run together with its ground-truth plan and context."""

    run: WorkflowRun
    plan: ExecutionPlan
    context: dict[RunVertex, int]


def materialize_plan(
    spec: WorkflowSpecification,
    plan: ExecutionPlan,
    *,
    name: str = "run",
    validate: bool = False,
) -> GeneratedRun:
    """Expand *plan* into a concrete run of *spec* (Lemma 4.1 semantics).

    Returns the run, the plan itself and the ground-truth context assignment
    from run vertices to plan ``+`` nodes.
    """
    hierarchy = spec.hierarchy
    owned = owned_vertices(spec)
    edges_owned = own_edges(spec)
    regions = spec.regions

    graph = DiGraph()
    context: dict[RunVertex, int] = {}
    counters: dict[str, int] = {}

    def fresh(module: str) -> RunVertex:
        counters[module] = counters.get(module, 0) + 1
        vertex = RunVertex(module, counters[module])
        graph.add_vertex(vertex)
        return vertex

    def materialize_plus(plus_id: int, boundary: dict) -> dict:
        """Expand one ``+`` node; returns the map from spec vertices to run vertices."""
        node = plan.node(plus_id)
        hname = ROOT_NAME if node.region is None else node.region
        local: dict = dict(boundary)

        for spec_vertex in owned[hname]:
            run_vertex = fresh(spec_vertex)
            local[spec_vertex] = run_vertex
            context[run_vertex] = plus_id

        group_children = plan.children(plus_id)
        loop_groups = [g for g in group_children if g.kind is PlanNodeKind.LOOP_GROUP]
        fork_groups = [g for g in group_children if g.kind is PlanNodeKind.FORK_GROUP]

        # Loop groups first: their terminals may serve as boundary vertices of
        # sibling forks and as endpoints of the parent's own edges.
        for group in loop_groups:
            region = regions[group.region]
            copies = plan.children(group.node_id)
            if not copies:
                raise SpecificationError(
                    f"plan group {group.node_id} for loop {group.region!r} is empty"
                )
            copy_maps = [materialize_plus(copy.node_id, {}) for copy in copies]
            for previous, current in zip(copy_maps, copy_maps[1:]):
                graph.add_edge(previous[region.sink], current[region.source])
            local[region.source] = copy_maps[0][region.source]
            local[region.sink] = copy_maps[-1][region.sink]

        for group in fork_groups:
            region = regions[group.region]
            copies = plan.children(group.node_id)
            if not copies:
                raise SpecificationError(
                    f"plan group {group.node_id} for fork {group.region!r} is empty"
                )
            try:
                fork_boundary = {
                    region.source: local[region.source],
                    region.sink: local[region.sink],
                }
            except KeyError as exc:
                raise SpecificationError(
                    f"fork {group.region!r} boundary vertex {exc.args[0]!r} is not "
                    "available while materializing its parent copy"
                ) from None
            for copy in copies:
                materialize_plus(copy.node_id, fork_boundary)

        for tail, head in edges_owned[hname]:
            try:
                graph.add_edge(local[tail], local[head])
            except KeyError as exc:
                raise SpecificationError(
                    f"edge ({tail!r}, {head!r}) of region {hname!r} references a "
                    f"vertex not materialized yet: {exc.args[0]!r}"
                ) from None
        return local

    materialize_plus(plan.root_id, {})
    run = WorkflowRun(spec, graph, name=name, validate=validate)
    return GeneratedRun(run=run, plan=plan, context=context)


# ----------------------------------------------------------------------
# one-call convenience wrappers
# ----------------------------------------------------------------------
def generate_run(
    spec: WorkflowSpecification,
    profile: ExecutionProfile | None = None,
    *,
    rng: random.Random | None = None,
    seed: Optional[int] = None,
    name: str = "run",
) -> GeneratedRun:
    """Generate a run by drawing copy counts from *profile*."""
    if rng is None:
        rng = random.Random(seed if seed is not None else 0)
    plan = build_plan(spec, profile, rng)
    return materialize_plan(spec, plan, name=name)


def generate_run_with_size(
    spec: WorkflowSpecification,
    target_vertices: int,
    *,
    rng: random.Random | None = None,
    seed: Optional[int] = None,
    name: str = "run",
) -> GeneratedRun:
    """Generate a run whose vertex count is approximately *target_vertices*."""
    if rng is None:
        rng = random.Random(seed if seed is not None else 0)
    plan = grow_plan_to_size(spec, target_vertices, rng)
    return materialize_plan(spec, plan, name=name)
