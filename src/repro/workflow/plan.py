"""Execution plans ``TR`` (Section 4.1, Figure 7).

An execution plan is a semi-ordered tree describing how many times each fork
and loop of a specification was executed in a run, and how those executions
nest.  Node kinds follow the paper's notation:

* the root ``G+`` node corresponds to the whole run;
* an ``F+``/``L+`` node corresponds to a *single* fork/loop copy;
* an ``F-``/``L-`` node groups *all* copies created by one execution of the
  fork (parallel composition) or loop (serial composition).

Children of an ``L-`` node are ordered (serial order); the children of every
other node are unordered, but the plan stores them in a fixed list so the
three preorder traversals of Algorithm 1 can rely on a stable base order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.exceptions import PlanConstructionError

__all__ = ["PlanNodeKind", "PlanNode", "ExecutionPlan"]


class PlanNodeKind(enum.Enum):
    """Node kinds of the execution plan tree."""

    ROOT = "G+"
    FORK_GROUP = "F-"
    FORK_COPY = "F+"
    LOOP_GROUP = "L-"
    LOOP_COPY = "L+"

    @property
    def is_plus(self) -> bool:
        """``True`` for ``G+``, ``F+`` and ``L+`` nodes."""
        return self in (PlanNodeKind.ROOT, PlanNodeKind.FORK_COPY, PlanNodeKind.LOOP_COPY)

    @property
    def is_minus(self) -> bool:
        """``True`` for ``F-`` and ``L-`` nodes."""
        return self in (PlanNodeKind.FORK_GROUP, PlanNodeKind.LOOP_GROUP)


@dataclass
class PlanNode:
    """A single node of the execution plan tree.

    Attributes
    ----------
    node_id:
        Integer identifier, unique within the plan.
    kind:
        One of the five :class:`PlanNodeKind` values.
    region:
        Name of the fork/loop region this node belongs to (``None`` for the
        root).
    parent:
        Identifier of the parent node (``None`` for the root).
    children:
        Identifiers of child nodes; the list order is the serial order for
        ``L-`` nodes and an arbitrary but fixed order otherwise.
    """

    node_id: int
    kind: PlanNodeKind
    region: Optional[str]
    parent: Optional[int]
    children: list[int] = field(default_factory=list)

    @property
    def is_plus(self) -> bool:
        """``True`` for ``+`` nodes (single copies and the root)."""
        return self.kind.is_plus

    @property
    def is_minus(self) -> bool:
        """``True`` for ``-`` nodes (groups of copies)."""
        return self.kind.is_minus


class ExecutionPlan:
    """The execution plan tree ``TR`` of a workflow run."""

    def __init__(self) -> None:
        self._nodes: dict[int, PlanNode] = {}
        self._root: Optional[int] = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_root(self) -> int:
        """Create the ``G+`` root node and return its identifier."""
        if self._root is not None:
            raise PlanConstructionError("execution plan already has a root")
        root_id = self._allocate(PlanNodeKind.ROOT, region=None, parent=None)
        self._root = root_id
        return root_id

    def add_node(
        self,
        kind: PlanNodeKind,
        region: str,
        parent: Optional[int] = None,
    ) -> int:
        """Create a non-root node; *parent* may be attached later via :meth:`attach`."""
        if kind is PlanNodeKind.ROOT:
            raise PlanConstructionError("use add_root() to create the root node")
        node_id = self._allocate(kind, region=region, parent=parent)
        if parent is not None:
            self._nodes[parent].children.append(node_id)
        return node_id

    def attach(self, child: int, parent: int) -> None:
        """Attach an orphan node *child* under *parent*."""
        child_node = self.node(child)
        if child_node.parent is not None:
            raise PlanConstructionError(f"plan node {child} already has a parent")
        child_node.parent = parent
        self.node(parent).children.append(child)

    def _allocate(
        self, kind: PlanNodeKind, region: Optional[str], parent: Optional[int]
    ) -> int:
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = PlanNode(
            node_id=node_id, kind=kind, region=region, parent=parent
        )
        return node_id

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def root_id(self) -> int:
        """Identifier of the ``G+`` root node."""
        if self._root is None:
            raise PlanConstructionError("execution plan has no root")
        return self._root

    @property
    def root(self) -> PlanNode:
        """The ``G+`` root node."""
        return self._nodes[self.root_id]

    def node(self, node_id: int) -> PlanNode:
        """Return the node with identifier *node_id*."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise PlanConstructionError(f"unknown plan node: {node_id}") from None

    def __len__(self) -> int:
        """``|V(TR)|`` — total number of plan nodes."""
        return len(self._nodes)

    def __contains__(self, node_id: object) -> bool:
        return node_id in self._nodes

    def nodes(self) -> list[PlanNode]:
        """All nodes in creation order."""
        return list(self._nodes.values())

    def children(self, node_id: int) -> list[PlanNode]:
        """Return child nodes of *node_id* in stored order."""
        return [self._nodes[c] for c in self.node(node_id).children]

    def parent(self, node_id: int) -> Optional[PlanNode]:
        """Return the parent node, or ``None`` for the root."""
        parent_id = self.node(node_id).parent
        return None if parent_id is None else self._nodes[parent_id]

    def plus_nodes(self) -> list[PlanNode]:
        """All ``+`` nodes (root and single copies)."""
        return [n for n in self._nodes.values() if n.is_plus]

    def minus_nodes(self) -> list[PlanNode]:
        """All ``-`` nodes (copy groups)."""
        return [n for n in self._nodes.values() if n.is_minus]

    def depth(self) -> int:
        """Height of the plan tree (root counts as level 1)."""
        depths = {self.root_id: 1}
        deepest = 1
        for node in self.iter_preorder():
            if node.node_id == self.root_id:
                continue
            depths[node.node_id] = depths[node.parent] + 1
            deepest = max(deepest, depths[node.node_id])
        return deepest

    def copies_per_region(self) -> dict[str, int]:
        """Return how many ``+`` copies each region has in this plan."""
        counts: dict[str, int] = {}
        for node in self._nodes.values():
            if node.is_plus and node.region is not None:
                counts[node.region] = counts.get(node.region, 0) + 1
        return counts

    def groups_per_region(self) -> dict[str, int]:
        """Return how many ``-`` groups each region has in this plan."""
        counts: dict[str, int] = {}
        for node in self._nodes.values():
            if node.is_minus and node.region is not None:
                counts[node.region] = counts.get(node.region, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def iter_preorder(
        self,
        child_order: Optional[Callable[[PlanNode], list[int]]] = None,
    ) -> Iterator[PlanNode]:
        """Yield nodes in preorder (parents before children).

        *child_order*, when given, maps a node to the order in which its
        children should be visited; this is the hook used by the three
        traversals of Algorithm 1.
        """
        if self._root is None:
            return
        stack = [self._root]
        while stack:
            node = self._nodes[stack.pop()]
            yield node
            ordered_children = (
                node.children if child_order is None else child_order(node)
            )
            stack.extend(reversed(ordered_children))

    def iter_postorder(self) -> Iterator[PlanNode]:
        """Yield nodes in postorder (children before parents)."""
        if self._root is None:
            return
        order: list[PlanNode] = []
        stack: list[tuple[int, bool]] = [(self._root, False)]
        while stack:
            node_id, expanded = stack.pop()
            node = self._nodes[node_id]
            if expanded:
                order.append(node)
                continue
            stack.append((node_id, True))
            for child in reversed(node.children):
                stack.append((child, False))
        yield from order

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants of the plan tree.

        ``+`` nodes may only have ``-`` children; ``-`` nodes may only have
        ``+`` children of the same region, and must have at least one child;
        every non-root node must be attached; node kinds must match their
        region role (groups and copies of the same region agree).
        """
        if self._root is None:
            raise PlanConstructionError("execution plan has no root")
        seen_from_root = set()
        for node in self.iter_preorder():
            seen_from_root.add(node.node_id)
        if seen_from_root != set(self._nodes):
            orphans = sorted(set(self._nodes) - seen_from_root)
            raise PlanConstructionError(f"plan has unattached nodes: {orphans}")

        for node in self._nodes.values():
            children = self.children(node.node_id)
            if node.is_plus:
                bad = [c.node_id for c in children if not c.is_minus]
                if bad:
                    raise PlanConstructionError(
                        f"+ node {node.node_id} has non-group children: {bad}"
                    )
            else:
                if not children:
                    raise PlanConstructionError(
                        f"- node {node.node_id} ({node.region}) has no copies"
                    )
                bad = [
                    c.node_id
                    for c in children
                    if not c.is_plus or c.region != node.region
                ]
                if bad:
                    raise PlanConstructionError(
                        f"- node {node.node_id} ({node.region}) has invalid children: {bad}"
                    )
                expected_child_kind = (
                    PlanNodeKind.FORK_COPY
                    if node.kind is PlanNodeKind.FORK_GROUP
                    else PlanNodeKind.LOOP_COPY
                )
                if any(c.kind is not expected_child_kind for c in children):
                    raise PlanConstructionError(
                        f"- node {node.node_id} mixes fork and loop copies"
                    )

    # ------------------------------------------------------------------
    # structural summaries (used to compare plans from different sources)
    # ------------------------------------------------------------------
    def signature(self) -> tuple:
        """Return an order-insensitive structural fingerprint of the plan.

        Two plans describing the same run have equal signatures regardless of
        node identifiers or of the (arbitrary) order of unordered children.
        """

        def canonical(node_id: int) -> tuple:
            node = self._nodes[node_id]
            child_forms = [canonical(c) for c in node.children]
            if node.kind is not PlanNodeKind.LOOP_GROUP:
                child_forms.sort()
            return (node.kind.value, node.region, tuple(child_forms))

        return canonical(self.root_id)

    def to_dict(self) -> dict:
        """Return a JSON-friendly description of the plan."""
        return {
            "root": self.root_id,
            "nodes": [
                {
                    "id": node.node_id,
                    "kind": node.kind.value,
                    "region": node.region,
                    "parent": node.parent,
                    "children": list(node.children),
                }
                for node in self._nodes.values()
            ],
        }
