"""Serialization of specifications and runs to XML and JSON.

The paper stores both specifications and runs as XML files (Section 8); this
module provides round-trip readers and writers in that spirit, plus JSON
variants which are friendlier for the SQLite provenance store.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Union

from repro.exceptions import SerializationError
from repro.graphs.digraph import DiGraph
from repro.workflow.run import RunVertex, WorkflowRun
from repro.workflow.specification import WorkflowSpecification
from repro.workflow.subgraphs import Region, RegionKind

__all__ = [
    "specification_to_xml",
    "specification_from_xml",
    "run_to_xml",
    "run_from_xml",
    "specification_to_json",
    "specification_from_json",
    "run_to_json",
    "run_from_json",
    "write_specification",
    "read_specification",
    "write_run",
    "read_run",
]

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# XML: specifications
# ----------------------------------------------------------------------
def specification_to_xml(spec: WorkflowSpecification) -> str:
    """Serialize a specification to an XML document string."""
    root = ET.Element("specification", {"name": spec.name})
    modules = ET.SubElement(root, "modules")
    for module in spec.graph.vertices():
        ET.SubElement(modules, "module", {"name": str(module)})
    edges = ET.SubElement(root, "edges")
    for tail, head in spec.graph.iter_edges():
        ET.SubElement(edges, "edge", {"from": str(tail), "to": str(head)})
    regions = ET.SubElement(root, "regions")
    for region in spec.forks:
        element = ET.SubElement(regions, "fork", {"name": region.name})
        for vertex in sorted(map(str, region.internal)):
            ET.SubElement(element, "member", {"module": vertex})
    for region in spec.loops:
        element = ET.SubElement(regions, "loop", {"name": region.name})
        for vertex in sorted(map(str, region.span)):
            ET.SubElement(element, "member", {"module": vertex})
    return ET.tostring(root, encoding="unicode")


def specification_from_xml(document: str) -> WorkflowSpecification:
    """Parse a specification from an XML document string."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise SerializationError(f"invalid specification XML: {exc}") from exc
    if root.tag != "specification":
        raise SerializationError(
            f"expected a <specification> document, got <{root.tag}>"
        )
    name = root.get("name", "workflow")

    graph = DiGraph()
    modules = root.find("modules")
    if modules is not None:
        for module in modules.findall("module"):
            module_name = module.get("name")
            if module_name is None:
                raise SerializationError("<module> element is missing its name")
            graph.add_vertex(module_name)
    edges = root.find("edges")
    if edges is not None:
        for edge in edges.findall("edge"):
            tail, head = edge.get("from"), edge.get("to")
            if tail is None or head is None:
                raise SerializationError("<edge> element is missing from/to")
            graph.add_edge(tail, head)

    forks: list[Region] = []
    loops: list[Region] = []
    regions = root.find("regions")
    if regions is not None:
        for element in regions:
            members = frozenset(
                member.get("module")
                for member in element.findall("member")
            )
            if None in members:
                raise SerializationError("<member> element is missing its module")
            region_name = element.get("name")
            if region_name is None:
                raise SerializationError(f"<{element.tag}> element is missing its name")
            if element.tag == "fork":
                forks.append(Region(RegionKind.FORK, region_name, members))
            elif element.tag == "loop":
                loops.append(Region(RegionKind.LOOP, region_name, members))
            else:
                raise SerializationError(f"unknown region kind <{element.tag}>")
    return WorkflowSpecification(graph, forks, loops, name=name)


# ----------------------------------------------------------------------
# XML: runs
# ----------------------------------------------------------------------
def run_to_xml(run: WorkflowRun) -> str:
    """Serialize a run to an XML document string."""
    root = ET.Element(
        "run", {"name": run.name, "specification": run.specification.name}
    )
    vertices = ET.SubElement(root, "executions")
    for vertex in run.graph.vertices():
        ET.SubElement(
            vertices,
            "execution",
            {"module": str(vertex.module), "instance": str(vertex.instance)},
        )
    edges = ET.SubElement(root, "edges")
    for tail, head in run.graph.iter_edges():
        ET.SubElement(
            edges,
            "edge",
            {
                "from_module": str(tail.module),
                "from_instance": str(tail.instance),
                "to_module": str(head.module),
                "to_instance": str(head.instance),
            },
        )
    return ET.tostring(root, encoding="unicode")


def run_from_xml(document: str, spec: WorkflowSpecification) -> WorkflowRun:
    """Parse a run of *spec* from an XML document string."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise SerializationError(f"invalid run XML: {exc}") from exc
    if root.tag != "run":
        raise SerializationError(f"expected a <run> document, got <{root.tag}>")
    name = root.get("name", "run")

    graph = DiGraph()
    vertices = root.find("executions")
    if vertices is not None:
        for vertex in vertices.findall("execution"):
            module, instance = vertex.get("module"), vertex.get("instance")
            if module is None or instance is None:
                raise SerializationError("<execution> element is missing attributes")
            graph.add_vertex(RunVertex(module, int(instance)))
    edges = root.find("edges")
    if edges is not None:
        for edge in edges.findall("edge"):
            attributes = [
                edge.get("from_module"),
                edge.get("from_instance"),
                edge.get("to_module"),
                edge.get("to_instance"),
            ]
            if any(value is None for value in attributes):
                raise SerializationError("<edge> element is missing attributes")
            graph.add_edge(
                RunVertex(attributes[0], int(attributes[1])),
                RunVertex(attributes[2], int(attributes[3])),
            )
    return WorkflowRun(spec, graph, name=name)


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def specification_to_json(spec: WorkflowSpecification) -> str:
    """Serialize a specification to a JSON string."""
    return json.dumps(spec.to_dict(), sort_keys=True)


def specification_from_json(document: str) -> WorkflowSpecification:
    """Parse a specification from a JSON string."""
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid specification JSON: {exc}") from exc
    try:
        graph = DiGraph.from_dict(payload["graph"])
        forks = [
            Region(RegionKind.FORK, item["name"], frozenset(item["vertices"]))
            for item in payload.get("forks", [])
        ]
        loops = [
            Region(RegionKind.LOOP, item["name"], frozenset(item["vertices"]))
            for item in payload.get("loops", [])
        ]
        name = payload.get("name", "workflow")
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed specification JSON: {exc!r}") from exc
    return WorkflowSpecification(graph, forks, loops, name=name)


def run_to_json(run: WorkflowRun) -> str:
    """Serialize a run to a JSON string."""
    return json.dumps(run.to_dict(), sort_keys=True)


def run_from_json(document: str, spec: WorkflowSpecification) -> WorkflowRun:
    """Parse a run of *spec* from a JSON string."""
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid run JSON: {exc}") from exc
    graph = DiGraph()
    try:
        for module, instance in payload.get("vertices", []):
            graph.add_vertex(RunVertex(module, int(instance)))
        for (tail_module, tail_instance), (head_module, head_instance) in payload["edges"]:
            graph.add_edge(
                RunVertex(tail_module, int(tail_instance)),
                RunVertex(head_module, int(head_instance)),
            )
        name = payload.get("name", "run")
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed run JSON: {exc!r}") from exc
    return WorkflowRun(spec, graph, name=name)


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------
def _format_from_path(path: Path) -> str:
    suffix = path.suffix.lower()
    if suffix in (".xml",):
        return "xml"
    if suffix in (".json",):
        return "json"
    raise SerializationError(f"cannot infer format from file extension: {path.name!r}")


def write_specification(spec: WorkflowSpecification, path: PathLike) -> None:
    """Write a specification to *path* (format chosen by extension)."""
    path = Path(path)
    document = (
        specification_to_xml(spec)
        if _format_from_path(path) == "xml"
        else specification_to_json(spec)
    )
    path.write_text(document, encoding="utf-8")


def read_specification(path: PathLike) -> WorkflowSpecification:
    """Read a specification from *path* (format chosen by extension)."""
    path = Path(path)
    document = path.read_text(encoding="utf-8")
    if _format_from_path(path) == "xml":
        return specification_from_xml(document)
    return specification_from_json(document)


def write_run(run: WorkflowRun, path: PathLike) -> None:
    """Write a run to *path* (format chosen by extension)."""
    path = Path(path)
    document = run_to_xml(run) if _format_from_path(path) == "xml" else run_to_json(run)
    path.write_text(document, encoding="utf-8")


def read_run(path: PathLike, spec: WorkflowSpecification) -> WorkflowRun:
    """Read a run of *spec* from *path* (format chosen by extension)."""
    path = Path(path)
    document = path.read_text(encoding="utf-8")
    if _format_from_path(path) == "xml":
        return run_from_xml(document, spec)
    return run_from_json(document, spec)
