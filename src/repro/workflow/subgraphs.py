"""Self-contained subgraph machinery (Definition 1 of the paper).

A *self-contained* subgraph ``H`` of an acyclic flow network ``G`` connects to
the rest of the graph only through its single source and single sink.  Forks
must additionally be *atomic* (a single branch between source and sink) and
loops must be *complete* (they contain every branch between their source and
sink, and every edge entering the sink or leaving the source).

This module defines :class:`Region` — the user-facing description of a fork or
loop — and :class:`ResolvedRegion`, the validated form with its source, sink,
dominating set and edge set computed against a concrete specification graph.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import SpecificationError
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import (
    bfs_reachable,
    ancestors,
    weakly_connected_components,
)

__all__ = [
    "RegionKind",
    "Region",
    "ResolvedRegion",
    "resolve_fork",
    "resolve_loop",
    "is_self_contained",
    "is_atomic_fork",
    "is_complete_loop",
]


class RegionKind(enum.Enum):
    """Kind of a repeatable region: parallel fork or serial loop."""

    FORK = "fork"
    LOOP = "loop"


@dataclass(frozen=True)
class Region:
    """User-level description of a fork or loop subgraph.

    Parameters
    ----------
    kind:
        :class:`RegionKind.FORK` or :class:`RegionKind.LOOP`.
    name:
        Unique identifier, e.g. ``"F1"`` or ``"L2"``.
    vertices:
        For a fork, the set of *internal* vertices (the dotted oval of the
        paper's figures); the source and sink are inferred from the graph.
        For a loop, the *full* vertex set including its source and sink.
    """

    kind: RegionKind
    name: str
    vertices: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.vertices:
            raise SpecificationError(f"region {self.name!r} has an empty vertex set")
        object.__setattr__(self, "vertices", frozenset(self.vertices))

    @property
    def is_fork(self) -> bool:
        """``True`` when this region is a fork."""
        return self.kind is RegionKind.FORK

    @property
    def is_loop(self) -> bool:
        """``True`` when this region is a loop."""
        return self.kind is RegionKind.LOOP


@dataclass(frozen=True)
class ResolvedRegion:
    """A fork or loop region resolved against a specification graph.

    Attributes
    ----------
    kind, name:
        As in :class:`Region`.
    source, sink:
        The subgraph's source and sink vertices ``s(H)`` and ``t(H)``.
    internal:
        ``V*(H)`` — all vertices of ``H`` except the source and sink.
    span:
        ``V(H)`` — internal vertices plus source and sink.
    dom_set:
        The dominating set of Definition 2: ``V*(H)`` for forks and ``V(H)``
        for loops.
    edges:
        ``E(H)``.  For forks this excludes a direct ``(source, sink)`` edge of
        the surrounding graph (Definition 1, condition 3); for loops it is the
        full induced edge set.
    """

    kind: RegionKind
    name: str
    source: object
    sink: object
    internal: frozenset
    span: frozenset
    dom_set: frozenset
    edges: frozenset

    @property
    def is_fork(self) -> bool:
        """``True`` when this region is a fork."""
        return self.kind is RegionKind.FORK

    @property
    def is_loop(self) -> bool:
        """``True`` when this region is a loop."""
        return self.kind is RegionKind.LOOP

    def to_region(self) -> Region:
        """Return the user-level :class:`Region` describing this subgraph."""
        vertices = self.internal if self.is_fork else self.span
        return Region(kind=self.kind, name=self.name, vertices=frozenset(vertices))


def _induced_edges(graph: DiGraph, vertices: frozenset) -> set[tuple]:
    """Return the edges of *graph* with both endpoints in *vertices*."""
    return {
        (tail, head)
        for tail, head in graph.iter_edges()
        if tail in vertices and head in vertices
    }


def _require_vertices_exist(graph: DiGraph, region: Region) -> None:
    missing = [v for v in region.vertices if not graph.has_vertex(v)]
    if missing:
        raise SpecificationError(
            f"region {region.name!r} references unknown vertices: {sorted(map(repr, missing))}"
        )


def _check_internal_connectivity(graph: DiGraph, region_name: str, span: frozenset, source, sink) -> None:
    """Every vertex of the subgraph must lie on a source->sink path within it."""
    sub = graph.subgraph(span)
    reachable_from_source = bfs_reachable(sub, source)
    reaching_sink = ancestors(sub, sink) | {sink}
    for vertex in span:
        if vertex not in reachable_from_source or vertex not in reaching_sink:
            raise SpecificationError(
                f"region {region_name!r}: vertex {vertex!r} is not on a path from "
                f"{source!r} to {sink!r} within the subgraph"
            )


def resolve_fork(graph: DiGraph, region: Region) -> ResolvedRegion:
    """Resolve and validate a fork region against *graph*.

    The fork is given by its internal vertices; the source is the unique
    outside predecessor of the internals and the sink the unique outside
    successor.  The function checks Definition 1 (self-containment) and
    atomicity; violations raise :class:`SpecificationError`.
    """
    if not region.is_fork:
        raise SpecificationError(f"region {region.name!r} is not a fork")
    _require_vertices_exist(graph, region)
    internal = frozenset(region.vertices)

    outside_preds: set = set()
    outside_succs: set = set()
    for vertex in internal:
        for pred in graph.predecessors(vertex):
            if pred not in internal:
                outside_preds.add(pred)
        for succ in graph.successors(vertex):
            if succ not in internal:
                outside_succs.add(succ)

    if len(outside_preds) != 1:
        raise SpecificationError(
            f"fork {region.name!r} must have exactly one outside predecessor "
            f"(its source); found {sorted(map(repr, outside_preds))}"
        )
    if len(outside_succs) != 1:
        raise SpecificationError(
            f"fork {region.name!r} must have exactly one outside successor "
            f"(its sink); found {sorted(map(repr, outside_succs))}"
        )
    source = next(iter(outside_preds))
    sink = next(iter(outside_succs))
    if source == sink:
        raise SpecificationError(
            f"fork {region.name!r}: source and sink must be distinct, got {source!r}"
        )
    if source in internal or sink in internal:
        raise SpecificationError(
            f"fork {region.name!r}: the source/sink must not be internal vertices"
        )

    span = internal | {source, sink}
    edges = _induced_edges(graph, frozenset(span))
    edges.discard((source, sink))  # Definition 1 condition (3): the direct edge is not part of the fork
    if not edges:
        raise SpecificationError(f"fork {region.name!r} has no edges")

    # Atomicity: the internals must form a single weakly connected branch.
    internal_components = weakly_connected_components(graph.subgraph(internal))
    if len(internal_components) != 1:
        raise SpecificationError(
            f"fork {region.name!r} is not atomic: its internal vertices split into "
            f"{len(internal_components)} parallel branches"
        )
    _check_internal_connectivity(graph, region.name, frozenset(span), source, sink)

    return ResolvedRegion(
        kind=RegionKind.FORK,
        name=region.name,
        source=source,
        sink=sink,
        internal=internal,
        span=frozenset(span),
        dom_set=internal,
        edges=frozenset(edges),
    )


def resolve_loop(graph: DiGraph, region: Region) -> ResolvedRegion:
    """Resolve and validate a loop region against *graph*.

    The loop is given by its full vertex set.  Its source/sink are the unique
    source/sink of the induced subgraph.  The function checks self-containment
    and completeness (Definition 1); violations raise
    :class:`SpecificationError`.
    """
    if not region.is_loop:
        raise SpecificationError(f"region {region.name!r} is not a loop")
    _require_vertices_exist(graph, region)
    span = frozenset(region.vertices)
    if len(span) < 2:
        raise SpecificationError(
            f"loop {region.name!r} must contain at least two vertices (source != sink)"
        )

    sub = graph.subgraph(span)
    sources = sub.sources()
    sinks = sub.sinks()
    if len(sources) != 1 or len(sinks) != 1:
        raise SpecificationError(
            f"loop {region.name!r} must have a single source and sink within its "
            f"induced subgraph; found sources={sorted(map(repr, sources))}, "
            f"sinks={sorted(map(repr, sinks))}"
        )
    source = sources[0]
    sink = sinks[0]
    if source == sink:
        raise SpecificationError(f"loop {region.name!r}: source equals sink")

    internal = span - {source, sink}
    # Self-containment condition (2): internal vertices have no outside edges.
    for vertex in internal:
        for neighbor in graph.neighbors(vertex):
            if neighbor not in span:
                raise SpecificationError(
                    f"loop {region.name!r} is not self-contained: internal vertex "
                    f"{vertex!r} connects to outside vertex {neighbor!r}"
                )
    # Completeness: no edge leaves the source for the outside, none enters the
    # sink from the outside.
    for succ in graph.successors(source):
        if succ not in span:
            raise SpecificationError(
                f"loop {region.name!r} is not complete: source {source!r} has an "
                f"outgoing edge to outside vertex {succ!r}"
            )
    for pred in graph.predecessors(sink):
        if pred not in span:
            raise SpecificationError(
                f"loop {region.name!r} is not complete: sink {sink!r} has an "
                f"incoming edge from outside vertex {pred!r}"
            )
    _check_internal_connectivity(graph, region.name, span, source, sink)

    edges = frozenset(_induced_edges(graph, span))
    if not edges:
        raise SpecificationError(f"loop {region.name!r} has no edges")

    return ResolvedRegion(
        kind=RegionKind.LOOP,
        name=region.name,
        source=source,
        sink=sink,
        internal=frozenset(internal),
        span=span,
        dom_set=span,
        edges=edges,
    )


def is_self_contained(graph: DiGraph, span: frozenset, source, sink) -> bool:
    """Check Definition 1 for an arbitrary candidate subgraph.

    ``span`` is the candidate's vertex set, ``source``/``sink`` its claimed
    terminals.  The check covers conditions (1) and (2) of the definition
    (single terminals, no outside edges through internal vertices).
    """
    if source == sink or source not in span or sink not in span:
        return False
    internal = set(span) - {source, sink}
    for vertex in internal:
        for neighbor in graph.neighbors(vertex):
            if neighbor not in span:
                return False
    sub = graph.subgraph(span)
    return sub.sources() == [source] and sub.sinks() == [sink]


def is_atomic_fork(graph: DiGraph, internal: frozenset) -> bool:
    """Return ``True`` if *internal* describes an atomic fork in *graph*."""
    try:
        resolve_fork(graph, Region(RegionKind.FORK, "_probe", frozenset(internal)))
    except SpecificationError:
        return False
    return True


def is_complete_loop(graph: DiGraph, span: frozenset) -> bool:
    """Return ``True`` if *span* describes a complete loop subgraph in *graph*."""
    try:
        resolve_loop(graph, Region(RegionKind.LOOP, "_probe", frozenset(span)))
    except SpecificationError:
        return False
    return True
